//! Specialised f32 kernels — the "generated code" of the CPU backend.
//!
//! A real MDH implementation emits OpenCL/CUDA for the scalar function and
//! schedule. Our documented substitution recognises the structural
//! patterns the case studies exhibit ([`SfPattern`]) and executes them
//! through tight, autovectorisable Rust loops:
//!
//! * [`Contraction`] — `out = Σ_red Π_j in_j[affine]` with `pw(add)`
//!   reductions (Dot, MatVec, MatMul and variants, CCSD(T), MCC and
//!   variants),
//! * [`MapKernel`] — `out = Σ_j w_j · in_j[affine]` with no reduction
//!   dimensions (Jacobi, Gaussian and other stencils; plain copies).
//!
//! Everything else runs through the register-VM path (`vm_exec`).

use crate::offsets::{linearize_view, LinearAccess};
use mdh_core::buffer::Buffer;
use mdh_core::combine::CombineOp;
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};
use mdh_core::expr::SfPattern;
use mdh_core::shape::MdRange;
use mdh_core::types::BasicType;

/// Shared mutable f32 slice for provably-disjoint parallel writes.
///
/// Safety contract: callers must guarantee that no two concurrent tasks
/// write the same element. The map kernel enforces this by only writing
/// through an output access proven injective and task ranges that are
/// disjoint by construction.
pub struct SyncSlice {
    ptr: *mut f32,
    len: usize,
}

unsafe impl Send for SyncSlice {}
unsafe impl Sync for SyncSlice {}

impl SyncSlice {
    pub fn new(s: &mut [f32]) -> SyncSlice {
        SyncSlice {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    /// # Safety
    /// `i < len` and no concurrent writer targets the same `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: f32) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = v };
    }
}

/// A rectangular f32 partial result over the preserved dims of one task.
#[derive(Debug, Clone)]
pub struct PartialF32 {
    pub extents: Vec<usize>,
    pub data: Vec<f32>,
}

impl PartialF32 {
    fn zeros(extents: Vec<usize>) -> PartialF32 {
        let n: usize = extents.iter().product::<usize>().max(1);
        PartialF32 {
            extents,
            data: vec![0.0; n],
        }
    }

    pub fn add_assign(&mut self, other: &PartialF32) {
        debug_assert_eq!(self.extents, other.extents);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }
}

/// Recognised contraction structure (pattern only; linearisation against
/// actual buffer shapes happens at run time).
#[derive(Debug, Clone)]
pub struct Contraction {
    /// Param slot per product factor (slots may repeat, e.g. `x[i]*x[i]`).
    pub factor_slots: Vec<usize>,
    pub preserved: Vec<usize>,
    pub reduced: Vec<usize>,
}

impl Contraction {
    /// Check the preconditions and build the kernel descriptor.
    pub fn try_build(prog: &DslProgram) -> Option<Contraction> {
        if prog.out_view.accesses.len() != 1 {
            return None;
        }
        if prog.out_view.buffers[prog.out_view.accesses[0].buffer].ty != BasicType::F32 {
            return None;
        }
        if prog.inp_view.buffers.iter().any(|b| b.ty != BasicType::F32) {
            return None;
        }
        let SfPattern::ProductOfParams(slots) = prog.md_hom.sf.recognize() else {
            return None;
        };
        for op in &prog.md_hom.combine_ops {
            match op {
                CombineOp::Cc => {}
                CombineOp::Pw(f) => {
                    if f.as_builtin() != Some(mdh_core::combine::BuiltinReduce::Add) {
                        return None;
                    }
                }
                CombineOp::Ps(_) | CombineOp::Rbi(_) => return None,
            }
        }
        // accesses must all be affine
        if prog
            .inp_view
            .accesses
            .iter()
            .any(|a| a.index_fn.as_affine().is_none())
            || prog.out_view.accesses[0].index_fn.as_affine().is_none()
        {
            return None;
        }
        Some(Contraction {
            factor_slots: slots,
            preserved: prog.md_hom.preserved_dims(),
            reduced: prog.md_hom.collapsed_dims(),
        })
    }

    /// Execute one task with cache blocking: the range is strip-mined by
    /// `inner_tiles` (the schedule's cache-tile sizes) and each block runs
    /// through the tight kernel, accumulating into one task partial. For
    /// all-ones tiles this is exactly [`Contraction::run_task`].
    pub fn run_task_tiled(
        &self,
        ins: &[&[f32]],
        in_acc: &[LinearAccess],
        range: &MdRange,
        inner_tiles: &[usize],
    ) -> PartialF32 {
        if inner_tiles.iter().all(|&t| t <= 1) {
            return self.run_task(ins, in_acc, range);
        }
        // strip-mining only pays when each cache block amortises its
        // bookkeeping; degenerate blockings (e.g. 64-element strips of a
        // 1-D reduction) would drown the tight loop in per-block overhead
        let block_points: usize = (0..range.rank())
            .map(|d| {
                let t = inner_tiles[d].max(1);
                if t > 1 {
                    t.min(range.extent(d)).max(1)
                } else {
                    range.extent(d).max(1)
                }
            })
            .product();
        if block_points < 4096 && block_points < range.len() {
            return self.run_task(ins, in_acc, range);
        }
        let pres_ext: Vec<usize> = self.preserved.iter().map(|&d| range.extent(d)).collect();
        let mut partial = PartialF32::zeros(pres_ext.clone());
        let pres_shape = mdh_core::shape::Shape::new(pres_ext);
        // enumerate cache blocks: cartesian tiling of every dimension
        let mut blocks = vec![range.clone()];
        for d in 0..range.rank() {
            let t = inner_tiles[d].max(1);
            if t > 1 && t < range.extent(d) {
                blocks = blocks.into_iter().flat_map(|b| b.tile_dim(d, t)).collect();
            }
        }
        for block in &blocks {
            if block.is_empty() {
                continue;
            }
            let sub = self.run_task(ins, in_acc, block);
            // accumulate the block's partial into the task partial at its
            // preserved-coordinate offset (legal: pw(add) commutes)
            let sub_ext: Vec<usize> = self.preserved.iter().map(|&d| block.extent(d)).collect();
            let sub_shape = mdh_core::shape::Shape::new(sub_ext);
            for idx in sub_shape.iter() {
                let mut abs = Vec::with_capacity(idx.len());
                for (pp, &d) in self.preserved.iter().enumerate() {
                    abs.push(block.lo[d] - range.lo[d] + idx[pp]);
                }
                partial.data[pres_shape.linearize(&abs)] += sub.data[sub_shape.linearize(&idx)];
            }
        }
        partial
    }

    /// Execute one task: produce the f32 partial over its preserved dims.
    pub fn run_task(&self, ins: &[&[f32]], in_acc: &[LinearAccess], range: &MdRange) -> PartialF32 {
        let pres_ext: Vec<usize> = self.preserved.iter().map(|&d| range.extent(d)).collect();
        let mut partial = PartialF32::zeros(pres_ext.clone());

        // choose the vector dim: last preserved dim with out-independent
        // strides 0/1 in all factor accesses and a worthwhile extent
        let vector_dim = self.preserved.last().copied().filter(|&jd| {
            range.extent(jd) >= 8
                && self
                    .factor_slots
                    .iter()
                    .all(|&s| matches!(in_acc[s].coeffs[jd], 0 | 1))
        });

        let mut idx = range.lo.clone();
        match vector_dim {
            Some(jd) => self.run_row_vector(ins, in_acc, range, jd, &mut idx, &mut partial),
            None => self.run_scalar_acc(ins, in_acc, range, &mut idx, &mut partial),
        }
        partial
    }

    /// Scalar-accumulator mode: one accumulator per preserved point,
    /// reduction loop innermost with incremental offsets.
    fn run_scalar_acc(
        &self,
        ins: &[&[f32]],
        in_acc: &[LinearAccess],
        range: &MdRange,
        idx: &mut [usize],
        partial: &mut PartialF32,
    ) {
        let pres = &self.preserved;
        let red = &self.reduced;
        let nf = self.factor_slots.len();
        let inner = red.last().copied();
        let mut offs = vec![0i64; nf];
        let mut plin = 0usize;
        // odometer over preserved coords
        'pres: loop {
            // reduction fold
            let mut acc = 0f32;
            for (d, l) in red.iter().zip(red.iter().map(|&d| range.lo[d])) {
                idx[*d] = l;
            }
            if red.iter().any(|&d| range.extent(d) == 0) {
                partial.data[plin] = 0.0;
            } else {
                'red: loop {
                    // (re)compute base offsets at current reduced coords
                    for (f, &slot) in self.factor_slots.iter().enumerate() {
                        offs[f] = in_acc[slot].offset(idx);
                    }
                    if let Some(ind) = inner {
                        // run the innermost reduced dim as a tight loop
                        let n = range.hi[ind] - idx[ind];
                        let steps: Vec<i64> = self
                            .factor_slots
                            .iter()
                            .map(|&s| in_acc[s].coeffs[ind])
                            .collect();
                        if nf == 2 {
                            let (s0, s1) = (steps[0], steps[1]);
                            let (a0, a1) = (ins[self.factor_slots[0]], ins[self.factor_slots[1]]);
                            let (mut o0, mut o1) = (offs[0], offs[1]);
                            if s0 == 1 && s1 == 1 {
                                let x = &a0[o0 as usize..o0 as usize + n];
                                let y = &a1[o1 as usize..o1 as usize + n];
                                acc += x.iter().zip(y).map(|(p, q)| p * q).sum::<f32>();
                            } else {
                                for _ in 0..n {
                                    acc += a0[o0 as usize] * a1[o1 as usize];
                                    o0 += s0;
                                    o1 += s1;
                                }
                            }
                        } else {
                            for step in 0..n {
                                let mut prod = 1f32;
                                for (f, &slot) in self.factor_slots.iter().enumerate() {
                                    prod *= ins[slot][(offs[f] + steps[f] * step as i64) as usize];
                                }
                                acc += prod;
                            }
                        }
                        idx[ind] = range.hi[ind] - 1; // position at end for odometer
                    } else {
                        let mut prod = 1f32;
                        for (f, &slot) in self.factor_slots.iter().enumerate() {
                            prod *= ins[slot][offs[f] as usize];
                        }
                        acc += prod;
                    }
                    // advance the outer reduced dims (innermost handled above)
                    let outer_red = &red[..red.len().saturating_sub(1)];
                    let mut k = outer_red.len();
                    loop {
                        if k == 0 {
                            break 'red;
                        }
                        k -= 1;
                        let d = outer_red[k];
                        idx[d] += 1;
                        if idx[d] < range.hi[d] {
                            break;
                        }
                        idx[d] = range.lo[d];
                    }
                    if let Some(ind) = inner {
                        idx[ind] = range.lo[ind];
                    }
                    if outer_red.is_empty() {
                        break 'red;
                    }
                }
                partial.data[plin] = acc;
            }
            plin += 1;
            // advance preserved odometer
            let mut k = pres.len();
            loop {
                if k == 0 {
                    break 'pres;
                }
                k -= 1;
                let d = pres[k];
                idx[d] += 1;
                if idx[d] < range.hi[d] {
                    break;
                }
                idx[d] = range.lo[d];
            }
            if pres.is_empty() {
                break 'pres;
            }
        }
    }

    /// Row-vector mode (the classic `ikj` structure): the last preserved
    /// dim becomes the vector axis; each reduction step streams a row.
    fn run_row_vector(
        &self,
        ins: &[&[f32]],
        in_acc: &[LinearAccess],
        range: &MdRange,
        jd: usize,
        idx: &mut [usize],
        partial: &mut PartialF32,
    ) {
        let outer_pres: Vec<usize> = self
            .preserved
            .iter()
            .copied()
            .filter(|&d| d != jd)
            .collect();
        let red = &self.reduced;
        let ext_j = range.extent(jd);
        let nf = self.factor_slots.len();
        let mut row_base = 0usize;
        idx[jd] = range.lo[jd];
        'outer: loop {
            let row = &mut partial.data[row_base..row_base + ext_j];
            row.fill(0.0);
            if !red.iter().any(|&d| range.extent(d) == 0) {
                for (d, l) in red.iter().zip(red.iter().map(|&d| range.lo[d])) {
                    idx[*d] = l;
                }
                'red: loop {
                    idx[jd] = range.lo[jd];
                    // factor bases at jj = 0
                    let mut bases = vec![0i64; nf];
                    for (f, &slot) in self.factor_slots.iter().enumerate() {
                        bases[f] = in_acc[slot].offset(idx);
                    }
                    if nf == 2 {
                        let (s0, s1) = (
                            in_acc[self.factor_slots[0]].coeffs[jd],
                            in_acc[self.factor_slots[1]].coeffs[jd],
                        );
                        let a0 = ins[self.factor_slots[0]];
                        let a1 = ins[self.factor_slots[1]];
                        match (s0, s1) {
                            (0, 1) => {
                                let a = a0[bases[0] as usize];
                                let b = &a1[bases[1] as usize..bases[1] as usize + ext_j];
                                for (r, &bv) in row.iter_mut().zip(b) {
                                    *r += a * bv;
                                }
                            }
                            (1, 0) => {
                                let b = a1[bases[1] as usize];
                                let a = &a0[bases[0] as usize..bases[0] as usize + ext_j];
                                for (r, &av) in row.iter_mut().zip(a) {
                                    *r += av * b;
                                }
                            }
                            (1, 1) => {
                                let a = &a0[bases[0] as usize..bases[0] as usize + ext_j];
                                let b = &a1[bases[1] as usize..bases[1] as usize + ext_j];
                                for ((r, &av), &bv) in row.iter_mut().zip(a).zip(b) {
                                    *r += av * bv;
                                }
                            }
                            (0, 0) => {
                                let v = a0[bases[0] as usize] * a1[bases[1] as usize];
                                for r in row.iter_mut() {
                                    *r += v;
                                }
                            }
                            _ => unreachable!("vector_dim preconditions"),
                        }
                    } else {
                        for (jj, r) in row.iter_mut().enumerate() {
                            let mut prod = 1f32;
                            for (f, &slot) in self.factor_slots.iter().enumerate() {
                                let s = in_acc[slot].coeffs[jd];
                                prod *= ins[slot][(bases[f] + s * jj as i64) as usize];
                            }
                            *r += prod;
                        }
                    }
                    // advance reduced odometer
                    let mut k = red.len();
                    loop {
                        if k == 0 {
                            break 'red;
                        }
                        k -= 1;
                        let d = red[k];
                        idx[d] += 1;
                        if idx[d] < range.hi[d] {
                            break;
                        }
                        idx[d] = range.lo[d];
                    }
                    if red.is_empty() {
                        break 'red;
                    }
                }
            }
            row_base += ext_j;
            // advance outer preserved odometer
            let mut k = outer_pres.len();
            loop {
                if k == 0 {
                    break 'outer;
                }
                k -= 1;
                let d = outer_pres[k];
                idx[d] += 1;
                if idx[d] < range.hi[d] {
                    break;
                }
                idx[d] = range.lo[d];
            }
            if outer_pres.is_empty() {
                break 'outer;
            }
        }
    }
}

/// Recognised map/stencil structure.
#[derive(Debug, Clone)]
pub struct MapKernel {
    /// `(param slot, weight)` terms of the weighted sum.
    pub terms: Vec<(usize, f64)>,
}

impl MapKernel {
    pub fn try_build(prog: &DslProgram) -> Option<MapKernel> {
        if prog.out_view.accesses.len() != 1 {
            return None;
        }
        if !prog.md_hom.reduction_dims().is_empty() {
            return None;
        }
        if prog.out_view.buffers[prog.out_view.accesses[0].buffer].ty != BasicType::F32 {
            return None;
        }
        if prog.inp_view.buffers.iter().any(|b| b.ty != BasicType::F32) {
            return None;
        }
        if prog
            .inp_view
            .accesses
            .iter()
            .any(|a| a.index_fn.as_affine().is_none())
            || prog.out_view.accesses[0].index_fn.as_affine().is_none()
        {
            return None;
        }
        let terms = match prog.md_hom.sf.recognize() {
            SfPattern::WeightedSum(t) => t,
            SfPattern::Identity(p) => vec![(p, 1.0)],
            _ => return None,
        };
        // the direct-write path requires a provably injective output access
        let full = prog.md_hom.full_range();
        if prog.out_view.accesses[0]
            .index_fn
            .is_injective_over(&full, 1 << 14)
            != Some(true)
        {
            return None;
        }
        Some(MapKernel { terms })
    }

    /// Execute one task, writing directly into the shared output.
    ///
    /// Safety: task ranges are disjoint and the output access is injective
    /// (checked in [`MapKernel::try_build`]), so writes never collide.
    pub fn run_task(
        &self,
        ins: &[&[f32]],
        in_acc: &[LinearAccess],
        out_acc: &LinearAccess,
        range: &MdRange,
        out: &SyncSlice,
    ) {
        let rank = range.rank();
        if range.is_empty() {
            return;
        }
        let last = rank - 1;
        let n_last = range.extent(last);
        let w: Vec<f32> = self.terms.iter().map(|&(_, w)| w as f32).collect();
        let mut idx = range.lo.clone();
        'rows: loop {
            idx[last] = range.lo[last];
            let mut ioffs: Vec<i64> = self
                .terms
                .iter()
                .map(|&(slot, _)| in_acc[slot].offset(&idx))
                .collect();
            let isteps: Vec<i64> = self
                .terms
                .iter()
                .map(|&(slot, _)| in_acc[slot].coeffs[last])
                .collect();
            let mut ooff = out_acc.offset(&idx);
            let ostep = out_acc.coeffs[last];
            for _ in 0..n_last {
                let mut v = 0f32;
                for (t, &(slot, _)) in self.terms.iter().enumerate() {
                    v += w[t] * ins[slot][ioffs[t] as usize];
                }
                // SAFETY: see method docs — disjoint injective writes
                unsafe { out.write(ooff as usize, v) };
                for (o, s) in ioffs.iter_mut().zip(&isteps) {
                    *o += s;
                }
                ooff += ostep;
            }
            // advance all dims but the last
            let mut k = last;
            loop {
                if k == 0 {
                    break 'rows;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < range.hi[k] {
                    break;
                }
                idx[k] = range.lo[k];
            }
            if last == 0 {
                break 'rows;
            }
        }
    }
}

/// Linearise the input and output views against actual buffer shapes.
pub fn linearize_for(
    prog: &DslProgram,
    inputs: &[Buffer],
    outputs: &[Buffer],
) -> Result<(Vec<LinearAccess>, Vec<LinearAccess>)> {
    let rank = prog.rank();
    let in_shapes: Vec<Vec<usize>> = inputs.iter().map(|b| b.shape.dims().to_vec()).collect();
    let out_shapes: Vec<Vec<usize>> = outputs.iter().map(|b| b.shape.dims().to_vec()).collect();
    let ia = linearize_view(&prog.inp_view, &in_shapes, rank)?;
    let oa = linearize_view(&prog.out_view, &out_shapes, rank)?;
    Ok((ia, oa))
}

/// Collect f32 slices for all input buffers.
pub fn f32_inputs<'a>(prog: &DslProgram, inputs: &'a [Buffer]) -> Result<Vec<&'a [f32]>> {
    // one slice per *access* (so kernels index by param slot directly)
    prog.inp_view
        .accesses
        .iter()
        .map(|a| {
            inputs[a.buffer]
                .as_f32()
                .ok_or_else(|| MdhError::Type("expected f32 input".into()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::{AffineExpr, IndexFn};
    use mdh_core::shape::Shape;
    use mdh_core::types::ScalarKind;

    fn matmul_prog(i: usize, j: usize, k: usize) -> DslProgram {
        DslBuilder::new("matmul", vec![i, j, k])
            .out_buffer("C", BasicType::F32)
            .out_access("C", IndexFn::select(3, &[0, 1]))
            .inp_buffer("A", BasicType::F32)
            .inp_access("A", IndexFn::select(3, &[0, 2]))
            .inp_buffer("B", BasicType::F32)
            .inp_access("B", IndexFn::select(3, &[2, 1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    #[test]
    fn contraction_recognised() {
        let p = matmul_prog(4, 5, 6);
        let c = Contraction::try_build(&p).unwrap();
        assert_eq!(c.preserved, vec![0, 1]);
        assert_eq!(c.reduced, vec![2]);
        assert_eq!(c.factor_slots, vec![0, 1]);
    }

    #[test]
    fn contraction_task_matches_reference() {
        let (i, j, k) = (5, 9, 7);
        let p = matmul_prog(i, j, k);
        let mut a = Buffer::zeros("A", BasicType::F32, Shape::new(vec![i, k]));
        a.fill_with(|f| ((f * 13) % 7) as f64 - 3.0);
        let mut b = Buffer::zeros("B", BasicType::F32, Shape::new(vec![k, j]));
        b.fill_with(|f| ((f * 11) % 5) as f64 * 0.5);
        let inputs = vec![a, b];
        let c = Contraction::try_build(&p).unwrap();
        let outs = mdh_core::eval::alloc_outputs(&p).unwrap();
        let (ia, _oa) = linearize_for(&p, &inputs, &outs).unwrap();
        let ins = f32_inputs(&p, &inputs).unwrap();
        // full-range task (exercises row-vector mode: j >= 8)
        let range = p.md_hom.full_range();
        let partial = c.run_task(&ins, &ia, &range);
        assert_eq!(partial.extents, vec![i, j]);
        let af = inputs[0].as_f32().unwrap();
        let bf = inputs[1].as_f32().unwrap();
        for ii in 0..i {
            for jj in 0..j {
                let expect: f32 = (0..k).map(|kk| af[ii * k + kk] * bf[kk * j + jj]).sum();
                assert!(
                    (partial.data[ii * j + jj] - expect).abs() < 1e-4,
                    "C[{ii},{jj}]"
                );
            }
        }
    }

    #[test]
    fn contraction_subrange_task() {
        let (i, j, k) = (6, 4, 8);
        let p = matmul_prog(i, j, k);
        let mut a = Buffer::zeros("A", BasicType::F32, Shape::new(vec![i, k]));
        a.fill_with(|f| f as f64);
        let mut b = Buffer::zeros("B", BasicType::F32, Shape::new(vec![k, j]));
        b.fill_with(|f| (f % 3) as f64);
        let inputs = vec![a, b];
        let c = Contraction::try_build(&p).unwrap();
        let outs = mdh_core::eval::alloc_outputs(&p).unwrap();
        let (ia, _) = linearize_for(&p, &inputs, &outs).unwrap();
        let ins = f32_inputs(&p, &inputs).unwrap();
        // a strict sub-range including a partial reduction (scalar mode: j ext < 8)
        let range = MdRange::new(vec![1, 1, 2], vec![4, 3, 6]);
        let partial = c.run_task(&ins, &ia, &range);
        assert_eq!(partial.extents, vec![3, 2]);
        let af = inputs[0].as_f32().unwrap();
        let bf = inputs[1].as_f32().unwrap();
        for (pi, ii) in (1..4).enumerate() {
            for (pj, jj) in (1..3).enumerate() {
                let expect: f32 = (2..6).map(|kk| af[ii * k + kk] * bf[kk * j + jj]).sum();
                assert!((partial.data[pi * 2 + pj] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn tiled_task_matches_untiled() {
        let (i, j, k) = (9, 11, 13);
        let p = matmul_prog(i, j, k);
        let mut a = Buffer::zeros("A", BasicType::F32, Shape::new(vec![i, k]));
        a.fill_with(|f| ((f * 29) % 17) as f64 - 8.0);
        let mut b = Buffer::zeros("B", BasicType::F32, Shape::new(vec![k, j]));
        b.fill_with(|f| ((f * 23) % 13) as f64 * 0.125);
        let inputs = vec![a, b];
        let c = Contraction::try_build(&p).unwrap();
        let outs = mdh_core::eval::alloc_outputs(&p).unwrap();
        let (ia, _) = linearize_for(&p, &inputs, &outs).unwrap();
        let ins = f32_inputs(&p, &inputs).unwrap();
        let range = p.md_hom.full_range();
        let base = c.run_task(&ins, &ia, &range);
        for tiles in [[1usize, 1, 1], [4, 4, 4], [2, 8, 3], [16, 1, 5]] {
            let tiled = c.run_task_tiled(&ins, &ia, &range, &tiles);
            assert_eq!(tiled.extents, base.extents);
            for (x, y) in tiled.data.iter().zip(&base.data) {
                assert!((x - y).abs() < 1e-3, "tiles {tiles:?}");
            }
        }
    }

    #[test]
    fn dot_pure_reduction_task() {
        let n = 100;
        let p = DslBuilder::new("dot", vec![n])
            .out_buffer("res", BasicType::F32)
            .out_access("res", IndexFn::affine(vec![AffineExpr::constant(1, 0)]))
            .inp_buffer("x", BasicType::F32)
            .inp_access("x", IndexFn::identity(1, 1))
            .inp_buffer("y", BasicType::F32)
            .inp_access("y", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::mul2("f", ScalarKind::F32))
            .combine_ops(vec![CombineOp::pw_add()])
            .build()
            .unwrap();
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![n]));
        x.fill_with(|f| f as f64);
        let mut y = Buffer::zeros("y", BasicType::F32, Shape::new(vec![n]));
        y.fill_with(|_| 2.0);
        let inputs = vec![x, y];
        let c = Contraction::try_build(&p).unwrap();
        assert!(c.preserved.is_empty());
        let outs = mdh_core::eval::alloc_outputs(&p).unwrap();
        let (ia, _) = linearize_for(&p, &inputs, &outs).unwrap();
        let ins = f32_inputs(&p, &inputs).unwrap();
        let partial = c.run_task(&ins, &ia, &p.md_hom.full_range());
        let expect: f32 = (0..n).map(|f| f as f32 * 2.0).sum();
        assert_eq!(partial.data, vec![expect]);
    }

    #[test]
    fn map_kernel_stencil() {
        // y[i] = 0.25*x[i] + 0.5*x[i+1] + 0.25*x[i+2]
        let n = 10;
        let p = DslBuilder::new("jac", vec![n])
            .out_buffer("y", BasicType::F32)
            .out_access("y", IndexFn::identity(1, 1))
            .inp_buffer("x", BasicType::F32)
            .inp_access("x", IndexFn::affine(vec![AffineExpr::new(vec![1], 0)]))
            .inp_access("x", IndexFn::affine(vec![AffineExpr::new(vec![1], 1)]))
            .inp_access("x", IndexFn::affine(vec![AffineExpr::new(vec![1], 2)]))
            .scalar_function(ScalarFunction::weighted_sum(
                "w",
                ScalarKind::F32,
                &[0.25, 0.5, 0.25],
            ))
            .combine_ops(vec![CombineOp::cc()])
            .build()
            .unwrap();
        let mk = MapKernel::try_build(&p).unwrap();
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![n + 2]));
        x.fill_with(|f| f as f64);
        let inputs = vec![x];
        let mut outs = mdh_core::eval::alloc_outputs(&p).unwrap();
        let (ia, oa) = linearize_for(&p, &inputs, &outs).unwrap();
        let ins = f32_inputs(&p, &inputs).unwrap();
        {
            let out_slice = SyncSlice::new(outs[0].as_f32_mut().unwrap());
            mk.run_task(&ins, &ia, &oa[0], &p.md_hom.full_range(), &out_slice);
        }
        let y = outs[0].as_f32().unwrap();
        for i in 0..n {
            let expect = 0.25 * i as f32 + 0.5 * (i + 1) as f32 + 0.25 * (i + 2) as f32;
            assert!((y[i] - expect).abs() < 1e-5, "y[{i}]");
        }
    }

    #[test]
    fn map_kernel_rejects_reductions() {
        let p = matmul_prog(4, 4, 4);
        assert!(MapKernel::try_build(&p).is_none());
    }

    /// The safety contract behind [`SyncSlice`]: the map path may write
    /// through a shared `&[f32]` without synchronisation only because
    /// (a) the plan's task ranges partition the iteration space and
    /// (b) the output access is injective over it. This property test
    /// builds arbitrary affine output accesses, and checks that every
    /// provably-injective one yields pairwise-disjoint per-task write
    /// sets, while every non-injective one is rejected by both
    /// `MapKernel::try_build` and `fast::classify`.
    mod sync_slice_disjointness {
        use super::*;
        use crate::fast;
        use mdh_lowering::plan::ExecutionPlan;
        use mdh_lowering::schedule::Schedule;
        use mdh_lowering::DeviceKind;
        use proptest::prelude::*;
        use std::collections::HashSet;

        const MAX_RANK: usize = 3;

        #[derive(Debug, Clone)]
        struct Case {
            sizes: Vec<usize>,
            // one (coeffs, constant) affine expr per output-buffer dim
            exprs: Vec<(Vec<i64>, i64)>,
            chunks: Vec<usize>,
        }

        fn case() -> impl Strategy<Value = Case> {
            (
                1usize..=MAX_RANK,
                proptest::collection::vec(2usize..=6, MAX_RANK),
                proptest::collection::vec(
                    (proptest::collection::vec(0i64..3, MAX_RANK), 0i64..3),
                    1..=2,
                ),
                proptest::collection::vec(1usize..=3, MAX_RANK),
            )
                .prop_map(|(rank, sizes, exprs, chunks)| Case {
                    sizes: sizes[..rank].to_vec(),
                    exprs: exprs
                        .into_iter()
                        .map(|(c, k)| (c[..rank].to_vec(), k))
                        .collect(),
                    chunks: chunks[..rank]
                        .iter()
                        .zip(&sizes)
                        .map(|(&c, &s)| c.min(s))
                        .collect(),
                })
        }

        fn build_prog(case: &Case) -> DslProgram {
            let rank = case.sizes.len();
            let out_shape: Vec<usize> = case
                .exprs
                .iter()
                .map(|(c, k)| {
                    let mx: i64 = c
                        .iter()
                        .zip(&case.sizes)
                        .map(|(&ci, &s)| ci * (s as i64 - 1))
                        .sum::<i64>()
                        + k;
                    mx as usize + 1
                })
                .collect();
            let out_fn = IndexFn::affine(
                case.exprs
                    .iter()
                    .map(|(c, k)| AffineExpr::new(c.clone(), *k))
                    .collect(),
            );
            DslBuilder::new("disjoint", case.sizes.clone())
                .out_buffer_with_shape("y", BasicType::F32, out_shape)
                .out_access("y", out_fn)
                .inp_buffer("x", BasicType::F32)
                .inp_access("x", IndexFn::identity(rank, rank))
                .scalar_function(ScalarFunction::weighted_sum("w", ScalarKind::F32, &[1.0]))
                .combine_ops(vec![CombineOp::cc(); rank])
                .build()
                .unwrap()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn task_write_sets_disjoint_iff_injective(case in case()) {
                let prog = build_prog(&case);
                let full = prog.md_hom.full_range();
                let injective = prog.out_view.accesses[0]
                    .index_fn
                    .is_injective_over(&full, 1 << 14);
                // ranks <= 3 with sizes <= 6 stay under the sample budget,
                // so injectivity is always decided
                prop_assert!(injective.is_some());
                if injective != Some(true) {
                    // rejected everywhere that writes through SyncSlice
                    prop_assert!(MapKernel::try_build(&prog).is_none());
                    prop_assert!(fast::classify(&prog).is_err());
                    return Ok(());
                }
                prop_assert!(MapKernel::try_build(&prog).is_some());

                let mut s = Schedule::sequential(prog.rank(), DeviceKind::Cpu);
                s.par_chunks = case.chunks.clone();
                s.validate(&prog, 1 << 24).unwrap();
                let plan = ExecutionPlan::build(&prog, &s).unwrap();

                let inputs = vec![Buffer::zeros(
                    "x",
                    BasicType::F32,
                    Shape::new(case.sizes.clone()),
                )];
                let outs = mdh_core::eval::alloc_outputs(&prog).unwrap();
                let (_, oa) = linearize_for(&prog, &inputs, &outs).unwrap();
                let out_len = outs[0].len();

                let mut seen: HashSet<i64> = HashSet::new();
                for task in &plan.tasks {
                    let r = &task.range;
                    if r.is_empty() {
                        continue;
                    }
                    let mut idx = r.lo.clone();
                    'points: loop {
                        let off = oa[0].offset(&idx);
                        prop_assert!(off >= 0 && (off as usize) < out_len);
                        // a collision within a task would also break the
                        // deterministic-output contract, so assert global
                        // uniqueness, not just cross-task disjointness
                        prop_assert!(
                            seen.insert(off),
                            "offset {off} written twice (task ranges {:?})",
                            plan.tasks.iter().map(|t| &t.range).collect::<Vec<_>>()
                        );
                        let mut d = idx.len();
                        loop {
                            if d == 0 {
                                break 'points;
                            }
                            d -= 1;
                            idx[d] += 1;
                            if idx[d] < r.hi[d] {
                                break;
                            }
                            idx[d] = r.lo[d];
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn contraction_rejects_f64() {
        let p = DslBuilder::new("m", vec![4, 4, 4])
            .out_buffer("C", BasicType::F64)
            .out_access("C", IndexFn::select(3, &[0, 1]))
            .inp_buffer("A", BasicType::F64)
            .inp_access("A", IndexFn::select(3, &[0, 2]))
            .inp_buffer("B", BasicType::F64)
            .inp_access("B", IndexFn::select(3, &[2, 1]))
            .scalar_function(ScalarFunction::mul2("f", ScalarKind::F64))
            .combine_ops(vec![CombineOp::cc(), CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap();
        assert!(Contraction::try_build(&p).is_none());
    }
}
