//! Generic parallel execution through the register VM.
//!
//! Handles every program the specialised kernels don't: custom combine
//! operators (PRL's `prl_max` over a 3-tuple of outputs), record inputs,
//! prefix sums (`ps`), arbitrary scalar functions — as long as accesses
//! are affine and outputs are scalar-typed. Two modes:
//!
//! * **fold mode** — no `ps` dimension; all `pw` dimensions share one
//!   combine function. Each task folds its collapsed sub-range into
//!   per-result partial columns; split-reduction groups combine partials
//!   with the same function.
//! * **scan mode** — one `ps` dimension (ordered before any `pw` dims so
//!   the scan is applied last, matching the nested semantics); `pw` dims
//!   must not be split across tasks. Tasks scan locally; split scan chunks
//!   are stitched sequentially with the offset rule of Listing 17.

use crate::offsets::{linearize_view, store_result, Loader};
use crate::vm::{compile_sf, CompiledSf, ParamLoad, Reg};
use mdh_core::buffer::Buffer;
use mdh_core::combine::{BuiltinReduce, CombineOp, PwFunc, PwKind};
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};
use mdh_core::shape::{MdRange, Shape};
use mdh_core::types::ScalarKind;
use mdh_lowering::plan::ExecutionPlan;

/// Typed partial column per result.
#[derive(Debug, Clone, PartialEq)]
pub enum ColBank {
    F(Vec<f64>),
    I(Vec<i64>),
}

impl ColBank {
    fn zeros(kind: ScalarKind, n: usize) -> ColBank {
        if kind.is_float() {
            ColBank::F(vec![0.0; n])
        } else {
            ColBank::I(vec![0; n])
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            ColBank::F(v) => v.len(),
            ColBank::I(v) => v.len(),
        }
    }
}

/// How tuples are combined in the hot loop.
#[allow(clippy::large_enum_variant)]
enum Combiner {
    Builtin(BuiltinReduce),
    Vm {
        cf: CompiledSf,
        /// registers of the lhs tuple params, then the rhs tuple params
        /// (`None` for params the combine function never reads)
        lhs_regs: Vec<Option<Reg>>,
        rhs_regs: Vec<Option<Reg>>,
    },
}

impl Combiner {
    fn build(f: &PwFunc, width: usize) -> Result<Combiner> {
        match &f.kind {
            PwKind::Builtin(b) => Ok(Combiner::Builtin(*b)),
            PwKind::Custom(sf) => {
                if sf.results.len() != width {
                    return Err(MdhError::Validation(
                        "combine-function width mismatch".into(),
                    ));
                }
                let cf = compile_sf(sf)?;
                let mut regs = Vec::with_capacity(2 * width);
                for pl in &cf.param_loads {
                    match pl {
                        ParamLoad::Scalar(r) => regs.push(Some(*r)),
                        ParamLoad::Unused => regs.push(None),
                        ParamLoad::Record(_) => {
                            return Err(MdhError::Validation(
                                "record-typed combine params unsupported".into(),
                            ))
                        }
                    }
                }
                let rhs_regs = regs.split_off(width);
                Ok(Combiner::Vm {
                    cf,
                    lhs_regs: regs,
                    rhs_regs,
                })
            }
        }
    }

    /// acc (lhs) ⊗ new (rhs) → acc, tuple-wide.
    #[inline]
    #[allow(clippy::too_many_arguments)] // hot-loop combine: banks passed flat
    fn combine(
        &self,
        accf: &mut [f64],
        acci: &mut [i64],
        newf: &[f64],
        newi: &[i64],
        kinds: &[ScalarKind],
        scratch_f: &mut [f64],
        scratch_i: &mut [i64],
    ) {
        match self {
            Combiner::Builtin(b) => {
                for (r, k) in kinds.iter().enumerate() {
                    if k.is_float() {
                        accf[r] = b.apply_f64(accf[r], newf[r]);
                    } else {
                        acci[r] = b.apply_i64(acci[r], newi[r]);
                    }
                }
            }
            Combiner::Vm {
                cf,
                lhs_regs,
                rhs_regs,
            } => {
                for r in 0..kinds.len() {
                    match lhs_regs[r] {
                        Some(Reg::F(d)) => scratch_f[d] = accf[r],
                        Some(Reg::I(d)) => scratch_i[d] = acci[r],
                        None => {}
                    }
                    match rhs_regs[r] {
                        Some(Reg::F(d)) => scratch_f[d] = newf[r],
                        Some(Reg::I(d)) => scratch_i[d] = newi[r],
                        None => {}
                    }
                }
                cf.run(scratch_f, scratch_i);
                for (r, reg) in cf.result_regs.iter().enumerate() {
                    match reg {
                        Reg::F(d) => accf[r] = scratch_f[*d],
                        Reg::I(d) => acci[r] = scratch_i[*d],
                    }
                }
            }
        }
    }
}

/// Execution mode derived from the combine operators.
enum Mode {
    Fold(Option<PwFunc>),
    Scan {
        scan_dim: usize,
        scan_fn: PwFunc,
        fold_fn: Option<PwFunc>,
    },
}

fn derive_mode(prog: &DslProgram) -> Result<Mode> {
    let mut ps_dims = Vec::new();
    let mut pw_fn: Option<PwFunc> = None;
    for (d, op) in prog.md_hom.combine_ops.iter().enumerate() {
        match op {
            CombineOp::Cc => {}
            CombineOp::Rbi(_) => {
                return Err(MdhError::Validation(
                    "VM path does not execute rbi programs; use the scatter path".into(),
                ))
            }
            CombineOp::Ps(f) => ps_dims.push((d, f.clone())),
            CombineOp::Pw(f) => match &pw_fn {
                None => pw_fn = Some(f.clone()),
                Some(g) => {
                    if g.name != f.name {
                        return Err(MdhError::Validation(
                            "VM path requires a single pw combine function".into(),
                        ));
                    }
                }
            },
        }
    }
    match ps_dims.len() {
        0 => Ok(Mode::Fold(pw_fn)),
        1 => {
            let (sd, sf) = ps_dims.pop().unwrap();
            // scan must be applied after every pw fold, i.e. the ps dim
            // must come before all pw dims in ⊗_1..⊗_D order
            for (d, op) in prog.md_hom.combine_ops.iter().enumerate() {
                if matches!(op, CombineOp::Pw(_)) && d < sd {
                    return Err(MdhError::Validation(
                        "VM path requires the ps dimension to precede pw dimensions".into(),
                    ));
                }
            }
            Ok(Mode::Scan {
                scan_dim: sd,
                scan_fn: sf,
                fold_fn: pw_fn,
            })
        }
        _ => Err(MdhError::Validation(
            "VM path supports at most one ps dimension".into(),
        )),
    }
}

/// Whether this program can run through the VM path at all.
pub fn vm_applicable(prog: &DslProgram) -> bool {
    if prog
        .out_view
        .buffers
        .iter()
        .any(|b| b.ty.as_scalar().is_none())
    {
        return false;
    }
    if prog
        .inp_view
        .accesses
        .iter()
        .any(|a| a.index_fn.as_affine().is_none())
        || prog
            .out_view
            .accesses
            .iter()
            .any(|a| a.index_fn.as_affine().is_none())
    {
        return false;
    }
    derive_mode(prog).is_ok() && compile_sf(&prog.md_hom.sf).is_ok()
}

/// A task's partial result: one column per result over its preserved dims.
pub struct Partial {
    pub extents: Vec<usize>,
    pub cols: Vec<ColBank>,
}

/// Run the program on the given plan using the thread pool.
pub fn run(
    prog: &DslProgram,
    plan: &ExecutionPlan,
    inputs: &[Buffer],
    pool: &rayon::ThreadPool,
) -> Result<Vec<Buffer>> {
    let mode = derive_mode(prog)?;
    let sf = compile_sf(&prog.md_hom.sf)?;
    let kinds = sf.result_kinds.clone();
    let width = kinds.len();
    let fold_combiner = match &mode {
        Mode::Fold(f) | Mode::Scan { fold_fn: f, .. } => match f {
            Some(f) => Some(Combiner::build(f, width)?),
            None => None,
        },
    };
    // scan-mode restriction: pw dims must not be split across tasks
    if let Mode::Scan { scan_dim, .. } = &mode {
        for &d in &plan.split_dims {
            if d != *scan_dim {
                return Err(MdhError::Validation(
                    "scan mode cannot split pw dimensions across tasks".into(),
                ));
            }
        }
    }

    let mut outputs = mdh_core::eval::alloc_outputs(prog)?;
    mdh_core::eval::check_inputs(prog, inputs)?;
    let rank = prog.rank();
    let in_shapes: Vec<Vec<usize>> = inputs.iter().map(|b| b.shape.dims().to_vec()).collect();
    let out_shapes: Vec<Vec<usize>> = outputs.iter().map(|b| b.shape.dims().to_vec()).collect();
    let in_acc = linearize_view(&prog.inp_view, &in_shapes, rank)?;
    let out_acc = linearize_view(&prog.out_view, &out_shapes, rank)?;
    let loaders = Loader::build_all(prog, inputs, &sf.param_loads)?;

    let preserved = prog.md_hom.preserved_dims();
    let collapsed = prog.md_hom.collapsed_dims();

    // --- per-task local computation, in parallel ------------------------
    let scan_dim_opt = match &mode {
        Mode::Scan { scan_dim, .. } => Some(*scan_dim),
        Mode::Fold(_) => None,
    };
    let scan_combiner = match &mode {
        Mode::Scan { scan_fn, .. } => Some(Combiner::build(scan_fn, width)?),
        Mode::Fold(_) => None,
    };

    let mut partials: Vec<Option<Partial>> = Vec::new();
    pool.install(|| {
        use rayon::prelude::*;
        plan.tasks
            .par_iter()
            .map(|task| {
                run_task(
                    &sf,
                    fold_combiner.as_ref(),
                    scan_combiner.as_ref(),
                    scan_dim_opt,
                    &kinds,
                    &loaders,
                    &in_acc,
                    &preserved,
                    &collapsed,
                    &task.range,
                )
            })
            .collect_into_vec(&mut partials);
    });

    // --- combine split-reduction groups ---------------------------------
    let write_jobs: Vec<(usize, Partial)> = if plan.split_dims.is_empty() {
        partials
            .into_iter()
            .enumerate()
            .map(|(t, p)| (t, p.expect("task partial")))
            .collect()
    } else {
        let mut partials: Vec<Option<Partial>> = partials;
        let mut jobs = Vec::with_capacity(plan.groups.len());
        for g in &plan.groups {
            let owner = g.task_ids[0];
            let mut acc = partials[owner].take().expect("group owner partial");
            match &mode {
                Mode::Fold(Some(f)) => {
                    let comb = Combiner::build(f, width)?;
                    for &tid in &g.task_ids[1..] {
                        let rhs = partials[tid].take().expect("group member");
                        combine_partials_elementwise(&mut acc, &rhs, &comb, &kinds)?;
                    }
                }
                Mode::Fold(None) => unreachable!("split dims without pw fn"),
                Mode::Scan {
                    scan_dim, scan_fn, ..
                } => {
                    let comb = Combiner::build(scan_fn, width)?;
                    // stitch chunks in order along the scan dim
                    let sd_pos = preserved
                        .iter()
                        .position(|&d| d == *scan_dim)
                        .expect("scan dim is preserved");
                    for &tid in &g.task_ids[1..] {
                        let rhs = partials[tid].take().expect("group member");
                        acc = stitch_scan(acc, rhs, sd_pos, &comb, &kinds)?;
                    }
                }
            }
            jobs.push((owner, acc));
        }
        jobs
    };

    // --- write phase ----------------------------------------------------
    for (owner, partial) in write_jobs {
        let range = &plan.tasks[owner].range;
        write_partial(
            prog,
            &partial,
            range,
            &preserved,
            &out_acc,
            &kinds,
            &mut outputs,
            plan,
            owner,
        )?;
    }
    Ok(outputs)
}

#[allow(clippy::too_many_arguments)]
fn run_task(
    sf: &CompiledSf,
    fold: Option<&Combiner>,
    scan: Option<&Combiner>,
    scan_dim: Option<usize>,
    kinds: &[ScalarKind],
    loaders: &[Loader],
    in_acc: &[crate::offsets::LinearAccess],
    preserved: &[usize],
    collapsed: &[usize],
    range: &MdRange,
) -> Option<Partial> {
    let width = kinds.len();
    let extents: Vec<usize> = preserved.iter().map(|&d| range.extent(d)).collect();
    let n = extents.iter().product::<usize>().max(1);
    let mut cols: Vec<ColBank> = kinds.iter().map(|&k| ColBank::zeros(k, n)).collect();
    if range.is_empty() {
        return Some(Partial { extents, cols });
    }

    let (mut fbank, mut ibank) = sf.banks();
    // scratch banks for the combiner VM (sized at build time)
    let (mut cf_f, mut cf_i) = match fold.or(scan) {
        Some(Combiner::Vm { cf, .. }) => cf.banks(),
        _ => (Vec::new(), Vec::new()),
    };
    // also ensure scan combiner scratch fits (use the larger)
    if let Some(Combiner::Vm { cf, .. }) = scan {
        let (f2, i2) = cf.banks();
        if f2.len() > cf_f.len() {
            cf_f = f2;
        }
        if i2.len() > cf_i.len() {
            cf_i = i2;
        }
    }

    let mut accf = vec![0f64; width];
    let mut acci = vec![0i64; width];
    let mut newf = vec![0f64; width];
    let mut newi = vec![0i64; width];

    // --- strength reduction --------------------------------------------
    // The innermost collapsed dimension advances fastest, and every
    // input access is affine, so along that dimension each access's
    // linear offset moves by a fixed per-access stride. Hoist those
    // strides out of the odometer: the hot loop bumps integer offsets
    // incrementally and pays the full rank-length `offset(&idx)` dot
    // product only once per innermost run. Offsets are exact integers,
    // so incremental and recomputed forms are identical bit-for-bit.
    let inner_d = collapsed.last().copied();
    let inner_n = inner_d.map_or(1, |d| range.extent(d));
    let outer_collapsed = &collapsed[..collapsed.len().saturating_sub(1)];
    let steps: Vec<i64> = in_acc
        .iter()
        .map(|a| inner_d.map_or(0, |d| a.coeffs[d]))
        .collect();
    let mut offs: Vec<i64> = vec![0; in_acc.len()];

    let mut idx = range.lo.clone();
    let mut plin = 0usize;
    'pres: loop {
        // fold over collapsed dims
        for &d in collapsed {
            idx[d] = range.lo[d];
        }
        let mut first = true;
        'red: loop {
            // base offsets for this innermost run (idx holds the run's
            // start; the inner loop never touches idx[inner_d])
            for (o, a) in offs.iter_mut().zip(in_acc) {
                *o = a.offset(&idx);
            }
            for _ in 0..inner_n {
                for (l, &o) in loaders.iter().zip(&offs) {
                    l.load(o as usize, &mut fbank, &mut ibank);
                }
                sf.run(&mut fbank, &mut ibank);
                for (r, reg) in sf.result_regs.iter().enumerate() {
                    match reg {
                        Reg::F(d) => newf[r] = fbank[*d],
                        Reg::I(d) => newi[r] = ibank[*d],
                    }
                }
                if first {
                    accf.copy_from_slice(&newf);
                    acci.copy_from_slice(&newi);
                    first = false;
                } else if let Some(c) = fold {
                    c.combine(
                        &mut accf, &mut acci, &newf, &newi, kinds, &mut cf_f, &mut cf_i,
                    );
                }
                for (o, &s) in offs.iter_mut().zip(&steps) {
                    *o += s;
                }
            }
            // advance the outer collapsed odometer (the innermost dim
            // was consumed by the linear loop above)
            let mut k = outer_collapsed.len();
            loop {
                if k == 0 {
                    break 'red;
                }
                k -= 1;
                let d = outer_collapsed[k];
                idx[d] += 1;
                if idx[d] < range.hi[d] {
                    break;
                }
                idx[d] = range.lo[d];
            }
        }
        // store acc into columns
        for (r, col) in cols.iter_mut().enumerate() {
            match col {
                ColBank::F(v) => v[plin] = accf[r],
                ColBank::I(v) => v[plin] = acci[r],
            }
        }
        plin += 1;
        // advance preserved odometer
        let mut k = preserved.len();
        loop {
            if k == 0 {
                break 'pres;
            }
            k -= 1;
            let d = preserved[k];
            idx[d] += 1;
            if idx[d] < range.hi[d] {
                break;
            }
            idx[d] = range.lo[d];
        }
        if preserved.is_empty() {
            break 'pres;
        }
    }

    // local scan along the ps dim
    if let (Some(sd), Some(c)) = (scan_dim, scan) {
        let sd_pos = preserved.iter().position(|&d| d == sd)?;
        scan_in_place(&mut cols, &extents, sd_pos, c, kinds, &mut cf_f, &mut cf_i);
    }

    Some(Partial { extents, cols })
}

/// In-place inclusive scan of partial columns along preserved-axis
/// `sd_pos`.
fn scan_in_place(
    cols: &mut [ColBank],
    extents: &[usize],
    sd_pos: usize,
    c: &Combiner,
    kinds: &[ScalarKind],
    cf_f: &mut [f64],
    cf_i: &mut [i64],
) {
    let shape = Shape::new(extents.to_vec());
    let stride: usize = extents[sd_pos + 1..].iter().product();
    let width = kinds.len();
    let mut accf = vec![0f64; width];
    let mut acci = vec![0i64; width];
    let mut newf = vec![0f64; width];
    let mut newi = vec![0i64; width];
    for idx in shape.iter() {
        if idx[sd_pos] == 0 {
            continue;
        }
        let i = shape.linearize(&idx);
        let prev = i - stride;
        for (r, col) in cols.iter().enumerate() {
            match col {
                ColBank::F(v) => {
                    accf[r] = v[prev];
                    newf[r] = v[i];
                }
                ColBank::I(v) => {
                    acci[r] = v[prev];
                    newi[r] = v[i];
                }
            }
        }
        c.combine(&mut accf, &mut acci, &newf, &newi, kinds, cf_f, cf_i);
        for (r, col) in cols.iter_mut().enumerate() {
            match col {
                ColBank::F(v) => v[i] = accf[r],
                ColBank::I(v) => v[i] = acci[r],
            }
        }
    }
}

fn combine_partials_elementwise(
    acc: &mut Partial,
    rhs: &Partial,
    c: &Combiner,
    kinds: &[ScalarKind],
) -> Result<()> {
    if acc.extents != rhs.extents {
        return Err(MdhError::Eval("partial extent mismatch".into()));
    }
    let width = kinds.len();
    let (mut cf_f, mut cf_i) = match c {
        Combiner::Vm { cf, .. } => cf.banks(),
        _ => (Vec::new(), Vec::new()),
    };
    let n = acc.cols.first().map(|c| c.len()).unwrap_or(0);
    let mut accf = vec![0f64; width];
    let mut acci = vec![0i64; width];
    let mut newf = vec![0f64; width];
    let mut newi = vec![0i64; width];
    for i in 0..n {
        for (r, (a, b)) in acc.cols.iter().zip(&rhs.cols).enumerate() {
            match (a, b) {
                (ColBank::F(x), ColBank::F(y)) => {
                    accf[r] = x[i];
                    newf[r] = y[i];
                }
                (ColBank::I(x), ColBank::I(y)) => {
                    acci[r] = x[i];
                    newi[r] = y[i];
                }
                _ => return Err(MdhError::Eval("column kind mismatch".into())),
            }
        }
        c.combine(
            &mut accf, &mut acci, &newf, &newi, kinds, &mut cf_f, &mut cf_i,
        );
        for (r, a) in acc.cols.iter_mut().enumerate() {
            match a {
                ColBank::F(x) => x[i] = accf[r],
                ColBank::I(x) => x[i] = acci[r],
            }
        }
    }
    Ok(())
}

/// Stitch two scanned chunks along scan axis `sd_pos`: the rhs chunk's
/// every element combines with the lhs chunk's final slice (Listing 17's
/// contiguous-split rule), then the chunks concatenate.
fn stitch_scan(
    lhs: Partial,
    mut rhs: Partial,
    sd_pos: usize,
    c: &Combiner,
    kinds: &[ScalarKind],
) -> Result<Partial> {
    let width = kinds.len();
    let (mut cf_f, mut cf_i) = match c {
        Combiner::Vm { cf, .. } => cf.banks(),
        _ => (Vec::new(), Vec::new()),
    };
    let l_ext = &lhs.extents;
    let r_ext = &rhs.extents;
    for (d, (a, b)) in l_ext.iter().zip(r_ext).enumerate() {
        if d != sd_pos && a != b {
            return Err(MdhError::Eval("scan stitch extent mismatch".into()));
        }
    }
    let stride: usize = l_ext[sd_pos + 1..].iter().product();
    let l_sd = l_ext[sd_pos];
    if l_sd > 0 {
        // offset every rhs element by lhs's last slice
        let r_shape = Shape::new(r_ext.clone());
        let mut accf = vec![0f64; width];
        let mut acci = vec![0i64; width];
        let mut newf = vec![0f64; width];
        let mut newi = vec![0i64; width];
        for idx in r_shape.iter() {
            let ri = r_shape.linearize(&idx);
            // corresponding lhs last-slice element
            let mut lidx = idx.clone();
            lidx[sd_pos] = l_sd - 1;
            let li = Shape::new(l_ext.clone()).linearize(&lidx);
            for (r, (a, b)) in lhs.cols.iter().zip(&rhs.cols).enumerate() {
                match (a, b) {
                    (ColBank::F(x), ColBank::F(y)) => {
                        accf[r] = x[li];
                        newf[r] = y[ri];
                    }
                    (ColBank::I(x), ColBank::I(y)) => {
                        acci[r] = x[li];
                        newi[r] = y[ri];
                    }
                    _ => return Err(MdhError::Eval("column kind mismatch".into())),
                }
            }
            c.combine(
                &mut accf, &mut acci, &newf, &newi, kinds, &mut cf_f, &mut cf_i,
            );
            for (r, b) in rhs.cols.iter_mut().enumerate() {
                match b {
                    ColBank::F(y) => y[ri] = accf[r],
                    ColBank::I(y) => y[ri] = acci[r],
                }
            }
        }
    }
    // concatenate along sd_pos
    let mut extents = l_ext.clone();
    extents[sd_pos] += r_ext[sd_pos];
    let out_shape = Shape::new(extents.clone());
    let mut cols: Vec<ColBank> = kinds
        .iter()
        .map(|&k| ColBank::zeros(k, out_shape.len()))
        .collect();
    let l_shape = Shape::new(l_ext.clone());
    let r_shape = Shape::new(r_ext.clone());
    for idx in l_shape.iter() {
        let src = l_shape.linearize(&idx);
        let dst = out_shape.linearize(&idx);
        for (col, lcol) in cols.iter_mut().zip(&lhs.cols) {
            copy_elem(col, dst, lcol, src);
        }
    }
    for idx in r_shape.iter() {
        let mut didx = idx.clone();
        didx[sd_pos] += l_sd;
        let src = r_shape.linearize(&idx);
        let dst = out_shape.linearize(&didx);
        for (col, rcol) in cols.iter_mut().zip(&rhs.cols) {
            copy_elem(col, dst, rcol, src);
        }
    }
    let _ = stride;
    Ok(Partial { extents, cols })
}

fn copy_elem(dst: &mut ColBank, di: usize, src: &ColBank, si: usize) {
    match (dst, src) {
        (ColBank::F(d), ColBank::F(s)) => d[di] = s[si],
        (ColBank::I(d), ColBank::I(s)) => d[di] = s[si],
        _ => unreachable!("column kinds fixed by result kinds"),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_partial(
    prog: &DslProgram,
    partial: &Partial,
    owner_range: &MdRange,
    preserved: &[usize],
    out_acc: &[crate::offsets::LinearAccess],
    kinds: &[ScalarKind],
    outputs: &mut [Buffer],
    plan: &ExecutionPlan,
    owner: usize,
) -> Result<()> {
    // the partial's preserved region: for split scan dims the stitched
    // partial covers the full dim, so derive extents from the partial
    let mut lo = owner_range.lo.clone();
    // split scan dims start at the group's first chunk => lo from owner
    let shape = Shape::new(partial.extents.clone());
    let _ = plan;
    let _ = owner;
    let mut idx = vec![0usize; prog.rank()];
    // collapsed dims pinned to absolute lo of the full iteration space —
    // out accesses don't depend on them (validated)
    for d in prog.md_hom.collapsed_dims() {
        idx[d] = 0;
        lo[d] = 0;
    }
    for p in shape.iter() {
        for (pp, &d) in preserved.iter().enumerate() {
            idx[d] = lo[d] + p[pp];
        }
        let flat = shape.linearize(&p);
        for (r, acc) in out_acc.iter().enumerate() {
            let off = acc.offset(&idx);
            if off < 0 {
                return Err(MdhError::Eval("negative output offset".into()));
            }
            let (fv, iv) = match &partial.cols[r] {
                ColBank::F(v) => (v[flat], 0),
                ColBank::I(v) => (0.0, v[flat]),
            };
            store_result(
                &mut outputs[prog.out_view.accesses[r].buffer],
                off as usize,
                kinds[r],
                fv,
                iv,
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::eval::evaluate_recursive;
    use mdh_core::expr::{BinOp, Expr, ScalarFunction, Stmt};
    use mdh_core::index_fn::IndexFn;
    use mdh_core::types::BasicType;
    use mdh_lowering::asm::DeviceKind;
    use mdh_lowering::schedule::{ReductionStrategy, Schedule};

    fn pool() -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
    }

    fn run_with(
        prog: &DslProgram,
        inputs: &[Buffer],
        par_chunks: Vec<usize>,
        tree: bool,
    ) -> Vec<Buffer> {
        let mut s = Schedule::sequential(prog.rank(), DeviceKind::Cpu);
        s.par_chunks = par_chunks;
        if tree {
            s.reduction = ReductionStrategy::Tree;
        }
        let plan = ExecutionPlan::build(prog, &s).unwrap();
        run(prog, &plan, inputs, &pool()).unwrap()
    }

    fn matvec_case() -> (DslProgram, Vec<Buffer>) {
        let (i, k) = (13, 17);
        let prog = DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2(
                "f_mul",
                mdh_core::types::ScalarKind::F32,
            ))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap();
        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![i, k]));
        m.fill_with(|f| ((f * 7) % 11) as f64 - 5.0);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![k]));
        v.fill_with(|f| (f % 4) as f64 * 0.5);
        (prog, vec![m, v])
    }

    #[test]
    fn fold_mode_matches_reference_no_split() {
        let (prog, inputs) = matvec_case();
        let expect = evaluate_recursive(&prog, &inputs).unwrap();
        let got = run_with(&prog, &inputs, vec![4, 1], false);
        assert!(got[0].approx_eq(&expect[0], 1e-5));
    }

    #[test]
    fn fold_mode_matches_reference_split_reduction() {
        let (prog, inputs) = matvec_case();
        let expect = evaluate_recursive(&prog, &inputs).unwrap();
        let got = run_with(&prog, &inputs, vec![3, 5], true);
        assert!(got[0].approx_eq(&expect[0], 1e-5));
    }

    /// PRL-style custom tuple combine over two outputs.
    #[test]
    fn custom_tuple_combine_argmax() {
        let (n, i) = (6, 40);
        let argmax = ScalarFunction {
            name: "argmax".into(),
            params: vec![
                ("lhs_id".into(), BasicType::I64),
                ("lhs_w".into(), BasicType::F64),
                ("rhs_id".into(), BasicType::I64),
                ("rhs_w".into(), BasicType::F64),
            ],
            results: vec![
                ("res_id".into(), BasicType::I64),
                ("res_w".into(), BasicType::F64),
            ],
            body: vec![Stmt::If {
                cond: Expr::Bin(
                    BinOp::Ge,
                    Box::new(Expr::Param(1)),
                    Box::new(Expr::Param(3)),
                ),
                then_branch: vec![
                    Stmt::Assign {
                        name: "res_id".into(),
                        value: Expr::Param(0),
                    },
                    Stmt::Assign {
                        name: "res_w".into(),
                        value: Expr::Param(1),
                    },
                ],
                else_branch: vec![
                    Stmt::Assign {
                        name: "res_id".into(),
                        value: Expr::Param(2),
                    },
                    Stmt::Assign {
                        name: "res_w".into(),
                        value: Expr::Param(3),
                    },
                ],
            }],
        };
        // per point: id = ids[i], w = weights[n*I + i]
        let sf = ScalarFunction {
            name: "point".into(),
            params: vec![("id".into(), BasicType::I64), ("w".into(), BasicType::F64)],
            results: vec![
                ("res_id".into(), BasicType::I64),
                ("res_w".into(), BasicType::F64),
            ],
            body: vec![
                Stmt::Assign {
                    name: "res_id".into(),
                    value: Expr::Param(0),
                },
                Stmt::Assign {
                    name: "res_w".into(),
                    value: Expr::Param(1),
                },
            ],
        };
        let prog = DslBuilder::new("prl_like", vec![n, i])
            .out_buffer("match_id", BasicType::I64)
            .out_access("match_id", IndexFn::select(2, &[0]))
            .out_buffer("match_w", BasicType::F64)
            .out_access("match_w", IndexFn::select(2, &[0]))
            .inp_buffer("ids", BasicType::I64)
            .inp_access("ids", IndexFn::select(2, &[1]))
            .inp_buffer("weights", BasicType::F64)
            .inp_access("weights", IndexFn::identity(2, 2))
            .scalar_function(sf)
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_custom(argmax).unwrap()])
            .build()
            .unwrap();
        let ids = Buffer::from_i64("ids", Shape::new(vec![i]), (0..i as i64).collect());
        let mut weights = Buffer::zeros("weights", BasicType::F64, Shape::new(vec![n, i]));
        weights.fill_with(|f| ((f * 29) % 97) as f64);
        let inputs = vec![ids, weights];
        let expect = evaluate_recursive(&prog, &inputs).unwrap();
        // split the reduction dim to exercise tuple-wide group combining
        let got = run_with(&prog, &inputs, vec![2, 5], true);
        assert_eq!(got[0], expect[0]);
        assert!(got[1].approx_eq(&expect[1], 1e-12));
    }

    #[test]
    fn scan_mode_matches_reference() {
        // MBBS-like: ps(add) over i, pw(add) over j
        let (i, j) = (9, 5);
        let prog = DslBuilder::new("mbbs", vec![i, j])
            .out_buffer("out", BasicType::F64)
            .out_access("out", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F64)
            .inp_access("M", IndexFn::identity(2, 2))
            .scalar_function(ScalarFunction::identity(
                "id",
                mdh_core::types::ScalarKind::F64,
            ))
            .combine_ops(vec![CombineOp::ps_add(), CombineOp::pw_add()])
            .build()
            .unwrap();
        let mut m = Buffer::zeros("M", BasicType::F64, Shape::new(vec![i, j]));
        m.fill_with(|f| ((f * 3) % 7) as f64 - 2.0);
        let inputs = vec![m];
        let expect = evaluate_recursive(&prog, &inputs).unwrap();
        // no split
        let got = run_with(&prog, &inputs, vec![1, 1], false);
        assert!(got[0].approx_eq(&expect[0], 1e-12), "unsplit scan");
        // split the scan dim across 3 tasks
        let got = run_with(&prog, &inputs, vec![3, 1], true);
        assert!(got[0].approx_eq(&expect[0], 1e-12), "split scan");
    }

    #[test]
    fn scan_mode_rejects_split_pw() {
        let prog = DslBuilder::new("mbbs", vec![4, 4])
            .out_buffer("out", BasicType::F64)
            .out_access("out", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F64)
            .inp_access("M", IndexFn::identity(2, 2))
            .scalar_function(ScalarFunction::identity(
                "id",
                mdh_core::types::ScalarKind::F64,
            ))
            .combine_ops(vec![CombineOp::ps_add(), CombineOp::pw_add()])
            .build()
            .unwrap();
        let m = Buffer::zeros("M", BasicType::F64, Shape::new(vec![4, 4]));
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.par_chunks = vec![1, 2];
        s.reduction = ReductionStrategy::Tree;
        let plan = ExecutionPlan::build(&prog, &s).unwrap();
        assert!(run(&prog, &plan, &[m], &pool()).is_err());
    }

    #[test]
    fn applicability_checks() {
        let (prog, _) = matvec_case();
        assert!(vm_applicable(&prog));
    }
}
