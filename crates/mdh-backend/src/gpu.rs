//! The GPU simulator.
//!
//! Real CUDA code generation is hardware-gated in this environment, so the
//! GPU backend is split into two honest halves (documented in DESIGN.md):
//!
//! * **functional execution** — the schedule's decomposition semantics are
//!   device-independent (guaranteed by the homomorphism laws), so results
//!   are computed on the host through the CPU executor;
//! * **timing** — an analytic cost model of an A100-class device charges
//!   exactly the effects the paper's evaluation hinges on: DRAM traffic
//!   with coalescing, shared-memory staging and its occupancy cost,
//!   compute throughput under partial utilisation (sequential reductions
//!   idle the device), kernel-launch overhead, and extra passes for
//!   tree-combined reductions.
//!
//! Schedule quality — tiling, staging, parallel reductions — therefore
//! translates into simulated time the way it translates into measured time
//! on real hardware, preserving the orderings and crossovers of Figure 4.

use crate::cpu::CpuExecutor;
use mdh_core::buffer::Buffer;
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};
use mdh_core::shape::MdRange;
use mdh_lowering::asm::{DeviceKind, GpuParams};
use mdh_lowering::heuristics::mdh_default_schedule;
use mdh_lowering::schedule::{ReductionStrategy, Schedule};

/// Cost breakdown for one simulated kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuReport {
    /// End-to-end simulated time in milliseconds.
    pub time_ms: f64,
    pub compute_ms: f64,
    pub mem_ms: f64,
    pub launch_ms: f64,
    /// Cost of inter-block reduction-tree passes.
    pub combine_ms: f64,
    pub dram_bytes: f64,
    /// Achieved occupancy in [0, 1].
    pub occupancy: f64,
    /// Mean coalescing efficiency in (0, 1].
    pub coalescing: f64,
    /// Shared memory used per block (bytes) when staging.
    pub shared_bytes: usize,
}

/// The simulated GPU device.
pub struct GpuSim {
    pub params: GpuParams,
    exec: CpuExecutor,
}

impl GpuSim {
    pub fn a100(host_threads: usize) -> Result<GpuSim> {
        Ok(GpuSim {
            params: GpuParams::a100(),
            exec: CpuExecutor::new(host_threads)?,
        })
    }

    /// A100-class simulator whose host execution shares an existing
    /// pool instead of spawning its own threads.
    pub fn a100_with_pool(pool: &rayon::ThreadPool, host_threads: usize) -> GpuSim {
        GpuSim {
            params: GpuParams::a100(),
            exec: CpuExecutor::with_pool(pool, host_threads),
        }
    }

    pub fn with_params(params: GpuParams, host_threads: usize) -> Result<GpuSim> {
        Ok(GpuSim {
            params,
            exec: CpuExecutor::new(host_threads)?,
        })
    }

    /// Like [`GpuSim::with_params`], sharing an existing pool for host
    /// execution instead of spawning threads.
    pub fn with_params_and_pool(
        params: GpuParams,
        pool: &rayon::ThreadPool,
        host_threads: usize,
    ) -> GpuSim {
        GpuSim {
            params,
            exec: CpuExecutor::with_pool(pool, host_threads),
        }
    }

    /// Functionally execute (on the host) and attach the simulated cost of
    /// the given GPU schedule.
    pub fn run(
        &self,
        prog: &DslProgram,
        schedule: &Schedule,
        inputs: &[Buffer],
    ) -> Result<(Vec<Buffer>, GpuReport)> {
        let report = self.estimate(prog, schedule)?;
        // semantics are schedule-independent; compute on the host with an
        // equivalent CPU decomposition
        let host_schedule = mdh_default_schedule(prog, DeviceKind::Cpu, self.exec.threads);
        let out = self.exec.run(prog, &host_schedule, inputs)?;
        Ok((out, report))
    }

    /// Analytic cost of executing `prog` under `schedule`.
    pub fn estimate(&self, prog: &DslProgram, schedule: &Schedule) -> Result<GpuReport> {
        prog.validate()?;
        schedule.validate(prog, usize::MAX / 2)?;
        let p = &self.params;
        let rank = prog.rank();
        let sizes = &prog.md_hom.sizes;
        let points: f64 = prog.md_hom.points() as f64;
        let flops_per_point = prog.md_hom.sf.flops_estimate() as f64;
        let flops = points * flops_per_point;

        // ---- geometry ---------------------------------------------------
        let n_blocks: usize = schedule.grid_size();
        let tpb = schedule.threads_per_block().max(1);
        if tpb > p.max_threads_per_block {
            return Err(MdhError::Validation(format!(
                "threads per block {tpb} exceeds device limit {}",
                p.max_threads_per_block
            )));
        }
        // block tile extents per dim
        let block_tile: Vec<usize> = (0..rank)
            .map(|d| sizes[d].div_ceil(schedule.par_chunks[d].max(1)).max(1))
            .collect();

        // staging strip: `inner_tiles` strip-mines the block tile so the
        // staged working set is the strip footprint, not the whole block
        // tile (this is how PPCG stages sequential reductions)
        let stage_tile: Vec<usize> = (0..rank)
            .map(|d| {
                if schedule.inner_tiles[d] > 1 {
                    schedule.inner_tiles[d].min(block_tile[d]).max(1)
                } else {
                    block_tile[d]
                }
            })
            .collect();
        let stage_phases: f64 = (0..rank)
            .map(|d| block_tile[d].div_ceil(stage_tile[d]) as f64)
            .product();

        // ---- occupancy ---------------------------------------------------
        let _block_range = MdRange::new(vec![0; rank], block_tile.clone());
        let stage_range = MdRange::new(vec![0; rank], stage_tile.clone());
        let mut shared_bytes = 0usize;
        if schedule.stage_inputs {
            for b in 0..prog.inp_view.buffers.len() {
                shared_bytes += prog
                    .inp_view
                    .footprint_bytes(b, &stage_range)
                    .unwrap_or(usize::MAX / 4);
            }
            if shared_bytes > p.shared_mem_per_sm {
                // the real toolchains fail exactly like this (PPCG's
                // "out of resources" on untuned tile sizes, Section 5.2)
                return Err(MdhError::Validation(format!(
                    "out of resources: staged block footprint {shared_bytes} B exceeds \
                     shared memory {} B",
                    p.shared_mem_per_sm
                )));
            }
        }
        let blocks_per_sm_threads = (p.max_threads_per_sm / tpb).max(1);
        let blocks_per_sm_shared = if shared_bytes > 0 {
            (p.shared_mem_per_sm / shared_bytes.max(1)).max(1)
        } else {
            usize::MAX
        };
        let blocks_per_sm = blocks_per_sm_threads.min(blocks_per_sm_shared).max(1);
        // shared-memory/blocks cap on resident threads per SM, in (0, 1]
        let resident_cap =
            (blocks_per_sm * tpb).min(p.max_threads_per_sm) as f64 / p.max_threads_per_sm as f64;

        // warp efficiency: partially-filled warps waste lanes
        let warp_eff = tpb as f64 / (tpb.div_ceil(p.warp_size) * p.warp_size) as f64;

        // ---- compute time -------------------------------------------------
        // single-counted utilisation: the device runs at the fraction of
        // peak given by how many threads the grid supplies, capped by what
        // shared-memory occupancy allows to be resident
        let total_threads = (n_blocks * tpb) as f64;
        let device_threads = (p.num_sms * p.max_threads_per_sm) as f64;
        let fill_util = (total_threads / device_threads).min(1.0);
        let occupancy = fill_util.min(resident_cap).clamp(1e-6, 1.0);
        // interpret the scalar function cost: one "flop" ≈ one fused op
        let throughput = p.peak_gflops * 1e9 * occupancy * warp_eff.max(0.03125);
        let compute_ms = flops / throughput * 1e3;

        // ---- memory time ---------------------------------------------------
        // fastest-varying thread dim: the highest-indexed dim with >1 thread
        let vec_dim = (0..rank).rev().find(|&d| schedule.block_threads[d] > 1);
        let mut dram_bytes = 0f64;
        let mut coal_num = 0f64;
        let mut coal_den = 0f64;
        let in_shapes = prog.input_shapes()?;
        if schedule.stage_inputs {
            // each block stages each strip's footprint once, coalesced;
            // strips are reloaded per phase
            for b in 0..prog.inp_view.buffers.len() {
                let fp = prog.inp_view.footprint_bytes(b, &stage_range).unwrap_or(0) as f64;
                dram_bytes += fp * stage_phases * n_blocks as f64;
            }
            coal_num += 1.0;
            coal_den += 1.0;
        }
        for a in &prog.inp_view.accesses {
            let elem = prog.inp_view.buffers[a.buffer].ty.size_bytes() as f64;
            if schedule.stage_inputs {
                // traffic charged per buffer above
            } else {
                // every point issues a load; charge a coalescing factor
                let factor = coalescing_factor(
                    a,
                    &in_shapes[a.buffer],
                    vec_dim,
                    p.transaction_bytes,
                    elem as usize,
                );
                dram_bytes += points * elem * factor;
                coal_num += 1.0 / factor;
                coal_den += 1.0;
            }
        }
        // output traffic: final writes
        let out_points: f64 = prog
            .md_hom
            .preserved_dims()
            .iter()
            .map(|&d| sizes[d] as f64)
            .product();
        let out_elem: f64 = prog
            .out_view
            .accesses
            .iter()
            .map(|a| prog.out_view.buffers[a.buffer].ty.size_bytes() as f64)
            .sum();
        dram_bytes += out_points * out_elem;

        // ---- reduction handling ---------------------------------------------
        let mut combine_ms = 0.0;
        let mut launches = 1.0;
        let red_dims = prog.md_hom.reduction_dims();
        let split_chunks: usize = red_dims
            .iter()
            .map(|&d| schedule.par_chunks[d])
            .product::<usize>()
            .max(1);
        if schedule.reduction == ReductionStrategy::Tree && split_chunks > 1 {
            // partial buffers written + read per tree pass
            let partial_bytes = out_points * out_elem * split_chunks as f64;
            combine_ms += 2.0 * partial_bytes / (p.dram_bw_gib_s * (1 << 30) as f64) * 1e3;
            // each combine pass reduces by a block's worth of partials
            let fanout = (tpb.max(32)) as f64;
            launches += ((split_chunks as f64).ln() / fanout.ln()).ceil().max(1.0);
        } else if !red_dims.is_empty() && schedule.reduction == ReductionStrategy::Sequential {
            // threads serially walk their reduction range; if the grid has
            // little preserved-dim parallelism the device idles. The
            // utilization term above already covers thread count; charge
            // the serial chain latency when parallelism is degenerate.
            let serial: f64 = red_dims
                .iter()
                .map(|&d| {
                    (sizes[d] / (schedule.par_chunks[d] * schedule.block_threads[d]).max(1)).max(1)
                        as f64
                })
                .product();
            // ~4 cycles per dependent FMA at 1.41 GHz
            let chain_ms = serial * flops_per_point * 4.0 / 1.41e9 * 1e3;
            combine_ms += chain_ms * 0.0; // latency is hidden unless degenerate
            let preserved_points = out_points.max(1.0);
            if preserved_points < (p.num_sms * p.warp_size) as f64 {
                // degenerate parallelism: serial chain dominates
                combine_ms += chain_ms;
            }
        }

        let mem_ms = dram_bytes / (p.dram_bw_gib_s * (1 << 30) as f64) * 1e3;
        let launch_ms = launches * p.launch_overhead_us / 1e3;
        let time_ms = compute_ms.max(mem_ms) + combine_ms + launch_ms;
        Ok(GpuReport {
            time_ms,
            compute_ms,
            mem_ms,
            launch_ms,
            combine_ms,
            dram_bytes,
            occupancy,
            coalescing: if coal_den > 0.0 {
                coal_num / coal_den
            } else {
                1.0
            },
            shared_bytes,
        })
    }
}

/// DRAM-transaction expansion factor for one access: 1.0 when consecutive
/// threads touch consecutive addresses (or all share one address), up to
/// `transaction/elem` for strided/scattered access.
fn coalescing_factor(
    access: &mdh_core::views::Access,
    buf_shape: &[usize],
    vec_dim: Option<usize>,
    transaction_bytes: usize,
    elem: usize,
) -> f64 {
    let Some(vd) = vec_dim else {
        return 1.0; // no thread-level vector dim: treat as coalesced
    };
    let Some(exprs) = access.index_fn.as_affine() else {
        return (transaction_bytes / elem).max(1) as f64;
    };
    // stride in elements of this access along the vector dim
    let mut strides = vec![1i64; buf_shape.len()];
    for d in (0..buf_shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * buf_shape[d + 1] as i64;
    }
    let mut stride = 0i64;
    for (e, &s) in exprs.iter().zip(&strides) {
        stride += e.coeffs.get(vd).copied().unwrap_or(0) * s;
    }
    match stride.unsigned_abs() as usize {
        0 => 1.0, // broadcast: one transaction per warp
        1 => 1.0, // perfectly coalesced
        s => (s * elem).min(transaction_bytes.max(elem)) as f64 / elem as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::{DslBuilder, DslProgram};
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::IndexFn;
    use mdh_core::shape::Shape;
    use mdh_core::types::{BasicType, ScalarKind};

    fn matmul_prog(i: usize, j: usize, k: usize) -> DslProgram {
        DslBuilder::new("matmul", vec![i, j, k])
            .out_buffer("C", BasicType::F32)
            .out_access("C", IndexFn::select(3, &[0, 1]))
            .inp_buffer("A", BasicType::F32)
            .inp_access("A", IndexFn::select(3, &[0, 2]))
            .inp_buffer("B", BasicType::F32)
            .inp_access("B", IndexFn::select(3, &[2, 1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    fn gpu_schedule(prog: &DslProgram) -> Schedule {
        mdh_default_schedule(prog, DeviceKind::Gpu, 108 * 32)
    }

    #[test]
    fn tiled_schedule_beats_untiled() {
        // the CCSD(T)/OpenACC story: no staging => footprint reloaded per
        // point => memory-bound catastrophe
        let prog = matmul_prog(1024, 1024, 1024);
        let sim = GpuSim::a100(2).unwrap();
        let mut tiled = gpu_schedule(&prog);
        tiled.stage_inputs = true;
        // keep the staged footprint within shared memory
        tiled.par_chunks = vec![32, 32, 16];
        tiled.reduction = ReductionStrategy::Tree;
        let mut untiled = tiled.clone();
        untiled.stage_inputs = false;
        let t = sim.estimate(&prog, &tiled).unwrap();
        let u = sim.estimate(&prog, &untiled).unwrap();
        assert!(
            u.time_ms > 3.0 * t.time_ms,
            "untiled {:.3} ms should be ≫ tiled {:.3} ms",
            u.time_ms,
            t.time_ms
        );
    }

    #[test]
    fn sequential_reduction_on_dot_is_catastrophic() {
        // Dot with a sequential reduction uses one thread: the PPCG story
        use mdh_core::index_fn::AffineExpr;
        let n = 1 << 24;
        let prog = DslBuilder::new("dot", vec![n])
            .out_buffer("res", BasicType::F32)
            .out_access("res", IndexFn::affine(vec![AffineExpr::constant(1, 0)]))
            .inp_buffer("x", BasicType::F32)
            .inp_access("x", IndexFn::identity(1, 1))
            .inp_buffer("y", BasicType::F32)
            .inp_access("y", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::mul2("f", ScalarKind::F32))
            .combine_ops(vec![CombineOp::pw_add()])
            .build()
            .unwrap();
        let sim = GpuSim::a100(2).unwrap();
        let seq = Schedule::sequential(1, DeviceKind::Gpu);
        let mut par = Schedule::sequential(1, DeviceKind::Gpu);
        par.par_chunks = vec![1024];
        par.block_threads = vec![256];
        par.reduction = ReductionStrategy::Tree;
        let s = sim.estimate(&prog, &seq).unwrap();
        let p = sim.estimate(&prog, &par).unwrap();
        assert!(
            s.time_ms > 20.0 * p.time_ms,
            "sequential {:.3} ms vs parallel {:.3} ms",
            s.time_ms,
            p.time_ms
        );
    }

    #[test]
    fn oversized_staging_reports_out_of_resources() {
        let prog = matmul_prog(4096, 4096, 4096);
        let sim = GpuSim::a100(2).unwrap();
        let mut s = Schedule::sequential(3, DeviceKind::Gpu);
        s.stage_inputs = true; // full-size footprints blow shared memory
        let err = sim.estimate(&prog, &s).unwrap_err();
        assert!(err.to_string().contains("out of resources"), "{err}");
    }

    #[test]
    fn functional_run_matches_reference() {
        let prog = matmul_prog(8, 8, 8);
        let mut a = Buffer::zeros("A", BasicType::F32, Shape::new(vec![8, 8]));
        a.fill_with(|f| (f % 5) as f64);
        let mut b = Buffer::zeros("B", BasicType::F32, Shape::new(vec![8, 8]));
        b.fill_with(|f| (f % 3) as f64);
        let inputs = vec![a, b];
        let sim = GpuSim::a100(2).unwrap();
        let sched = gpu_schedule(&prog);
        let (out, report) = sim.run(&prog, &sched, &inputs).unwrap();
        let expect = mdh_core::eval::evaluate_recursive(&prog, &inputs).unwrap();
        assert!(out[0].approx_eq(&expect[0], 1e-4));
        assert!(report.time_ms > 0.0);
    }

    #[test]
    fn more_threads_lower_compute_time() {
        let prog = matmul_prog(2048, 2048, 64);
        let sim = GpuSim::a100(2).unwrap();
        let mut narrow = Schedule::sequential(3, DeviceKind::Gpu);
        narrow.par_chunks = vec![16, 1, 1];
        narrow.block_threads = vec![32, 1, 1];
        let mut wide = narrow.clone();
        wide.par_chunks = vec![64, 64, 1];
        wide.block_threads = vec![8, 32, 1];
        let n = sim.estimate(&prog, &narrow).unwrap();
        let w = sim.estimate(&prog, &wide).unwrap();
        assert!(w.time_ms < n.time_ms);
    }
}
