//! Host↔device data movement (the `acc data copyin/copyout` clauses of
//! Listing 3) and buffer residency.
//!
//! The paper's GPU measurements exclude one-time transfers, but its
//! auto-tuning discussion (Section 5's footnote on amortisation) depends
//! on the fact that kernels are re-executed against *resident* device
//! buffers. This module models both: a PCIe-class link with latency and
//! bandwidth, and a [`DeviceDataRegion`] that tracks which buffers are
//! resident so repeated launches pay transfers only once — exactly what
//! `#pragma acc data` regions express.

use mdh_core::buffer::Buffer;
use mdh_core::dsl::DslProgram;
use std::collections::HashSet;

/// Transfer-link constants (PCIe 4.0 x16-class, as on the paper's
/// A100-PCIE-40GB).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkParams {
    pub bandwidth_gib_s: f64,
    /// Per-transfer latency in microseconds (driver + DMA setup).
    pub latency_us: f64,
}

impl LinkParams {
    pub fn pcie4_x16() -> LinkParams {
        LinkParams {
            bandwidth_gib_s: 24.0,
            latency_us: 10.0,
        }
    }

    /// NVLink 3.0-class device-to-device link (A100: 12 links × ~25 GB/s
    /// per direction ≈ 300 GB/s aggregate; we model the ~250 GiB/s a single
    /// peer pair sustains, with much lower setup latency than a
    /// host-mediated PCIe DMA). Used for intra-pool peer combines in
    /// `mdh-dist`, where the serial/tree topology choice multiplies this
    /// link's cost by N-1 or log2(N) respectively.
    pub fn nvlink3() -> LinkParams {
        LinkParams {
            bandwidth_gib_s: 250.0,
            latency_us: 2.0,
        }
    }
}

/// One direction of movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    HostToDevice,
    DeviceToHost,
}

/// A modelled transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    pub buffer: String,
    pub bytes: usize,
    pub direction: Direction,
    pub time_ms: f64,
}

/// Cost of moving `bytes` across the link.
pub fn transfer_ms(link: &LinkParams, bytes: usize) -> f64 {
    link.latency_us / 1e3 + bytes as f64 / (link.bandwidth_gib_s * (1u64 << 30) as f64) * 1e3
}

/// An `acc data`-style region: tracks device residency across kernel
/// launches so transfer costs amortise.
#[derive(Debug, Clone)]
pub struct DeviceDataRegion {
    link: LinkParams,
    resident: HashSet<String>,
    log: Vec<Transfer>,
}

impl DeviceDataRegion {
    pub fn new(link: LinkParams) -> DeviceDataRegion {
        DeviceDataRegion {
            link,
            resident: HashSet::new(),
            log: Vec::new(),
        }
    }

    /// `copyin`: move a buffer to the device unless already resident.
    /// Returns the transfer cost in milliseconds (0 when cached).
    pub fn copyin(&mut self, buf: &Buffer) -> f64 {
        if self.resident.contains(&buf.name) {
            return 0.0;
        }
        let t = transfer_ms(&self.link, buf.size_bytes());
        self.log.push(Transfer {
            buffer: buf.name.clone(),
            bytes: buf.size_bytes(),
            direction: Direction::HostToDevice,
            time_ms: t,
        });
        self.resident.insert(buf.name.clone());
        t
    }

    /// `copyout`: move a result back to the host (always transfers — the
    /// host needs the fresh values).
    pub fn copyout(&mut self, name: &str, bytes: usize) -> f64 {
        let t = transfer_ms(&self.link, bytes);
        self.log.push(Transfer {
            buffer: name.to_string(),
            bytes,
            direction: Direction::DeviceToHost,
            time_ms: t,
        });
        t
    }

    /// Invalidate a host-updated buffer (it must be re-copied next use).
    pub fn invalidate(&mut self, name: &str) {
        self.resident.remove(name);
    }

    /// Transfer cost for one launch of `prog` with the given inputs:
    /// copyin for all non-resident inputs plus copyout of every output.
    pub fn launch_cost_ms(&mut self, prog: &DslProgram, inputs: &[Buffer]) -> f64 {
        let mut total = 0.0;
        for buf in inputs {
            total += self.copyin(buf);
        }
        if let Ok(shapes) = prog.output_shapes() {
            for (decl, shape) in prog.out_view.buffers.iter().zip(shapes) {
                let bytes: usize = shape.iter().product::<usize>() * decl.ty.size_bytes();
                total += self.copyout(&decl.name, bytes);
            }
        }
        total
    }

    pub fn transfers(&self) -> &[Transfer] {
        &self.log
    }

    pub fn total_bytes(&self) -> usize {
        self.log.iter().map(|t| t.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::IndexFn;
    use mdh_core::shape::Shape;
    use mdh_core::types::{BasicType, ScalarKind};

    fn matvec(i: usize, k: usize) -> mdh_core::dsl::DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = LinkParams::pcie4_x16();
        let small = transfer_ms(&link, 1 << 10);
        let big = transfer_ms(&link, 1 << 30);
        assert!(big > 30.0 * small);
        // 1 GiB at 24 GiB/s ≈ 41.7 ms + latency
        assert!((big - (1000.0 / 24.0 + 0.01)).abs() < 1.0);
    }

    #[test]
    fn nvlink_beats_pcie_for_peer_combines() {
        let pcie = LinkParams::pcie4_x16();
        let nv = LinkParams::nvlink3();
        // a 64 MiB partial-result exchange: NVLink must be roughly an
        // order of magnitude cheaper, both in latency and bandwidth terms
        let bytes = 64 << 20;
        assert!(transfer_ms(&nv, bytes) * 8.0 < transfer_ms(&pcie, bytes));
        assert!(transfer_ms(&nv, 0) < transfer_ms(&pcie, 0));
    }

    #[test]
    fn residency_amortises_repeated_launches() {
        let prog = matvec(1024, 1024);
        let m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![1024, 1024]));
        let v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![1024]));
        let inputs = vec![m, v];
        let mut region = DeviceDataRegion::new(LinkParams::pcie4_x16());
        let first = region.launch_cost_ms(&prog, &inputs);
        let second = region.launch_cost_ms(&prog, &inputs);
        assert!(first > second, "first {first} ms, second {second} ms");
        // the second launch pays only the copyout of w (4 KiB)
        assert!(second < 0.2, "{second}");
        // 2 copyins + 2 copyouts logged
        assert_eq!(region.transfers().len(), 4);
    }

    #[test]
    fn invalidation_forces_recopy() {
        let prog = matvec(64, 64);
        let m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![64, 64]));
        let v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![64]));
        let inputs = vec![m, v];
        let mut region = DeviceDataRegion::new(LinkParams::pcie4_x16());
        region.launch_cost_ms(&prog, &inputs);
        region.invalidate("M");
        let relaunch = region.launch_cost_ms(&prog, &inputs);
        let h2d: Vec<&Transfer> = region
            .transfers()
            .iter()
            .filter(|t| t.direction == Direction::HostToDevice && t.buffer == "M")
            .collect();
        assert_eq!(h2d.len(), 2, "M copied twice after invalidation");
        assert!(relaunch > 0.0);
    }

    #[test]
    fn amortisation_story_vs_kernel_time() {
        // the paper's point: tuned kernels are reused extensively, so
        // one-time transfer cost amortises. Check the crossover exists.
        let link = LinkParams::pcie4_x16();
        let bytes = 64 << 20; // 64 MiB of inputs
        let t_transfer = transfer_ms(&link, bytes);
        let t_kernel = 0.1; // a fast tuned kernel
                            // after N launches, amortised overhead per launch:
        let n = 100.0;
        let per_launch = t_transfer / n + t_kernel;
        assert!(per_launch < 2.0 * t_kernel + 1.0);
        assert!(t_transfer > t_kernel, "transfers dominate a single launch");
    }
}
