//! Linearised access machinery shared by all CPU kernels.
//!
//! Affine index functions compose with row-major buffer strides into a
//! single linear form `flat = Σ_d coeff[d]·i_d + const`, evaluated (or
//! updated incrementally) in the hot loops. Loaders move buffer elements
//! into VM register banks; stores write result registers back to output
//! buffers.

use crate::vm::{ParamLoad, Reg};
use mdh_core::buffer::{Buffer, BufferData, Column};
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};
use mdh_core::index_fn::IndexFn;
use mdh_core::types::ScalarKind;
use mdh_core::views::View;

/// An affine access linearised against a buffer's strides.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearAccess {
    pub buffer: usize,
    /// One coefficient per iteration dimension.
    pub coeffs: Vec<i64>,
    pub constant: i64,
}

impl LinearAccess {
    /// Build from an affine index function and the buffer's shape.
    pub fn build(
        buffer: usize,
        index_fn: &IndexFn,
        buf_shape: &[usize],
        rank: usize,
    ) -> Result<LinearAccess> {
        let exprs = index_fn.as_affine().ok_or_else(|| {
            MdhError::Validation("general index functions require the fallback path".into())
        })?;
        if exprs.len() != buf_shape.len() {
            return Err(MdhError::Validation(format!(
                "access rank {} does not match buffer rank {}",
                exprs.len(),
                buf_shape.len()
            )));
        }
        // row-major strides
        let mut strides = vec![1i64; buf_shape.len()];
        for d in (0..buf_shape.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * buf_shape[d + 1] as i64;
        }
        let mut coeffs = vec![0i64; rank];
        let mut constant = 0i64;
        for (e, &s) in exprs.iter().zip(&strides) {
            for (d, &c) in e.coeffs.iter().enumerate() {
                coeffs[d] += c * s;
            }
            constant += e.constant * s;
        }
        Ok(LinearAccess {
            buffer,
            coeffs,
            constant,
        })
    }

    /// Flat offset at an iteration point.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> i64 {
        let mut o = self.constant;
        for (c, &i) in self.coeffs.iter().zip(idx) {
            o += c * i as i64;
        }
        o
    }
}

/// Linearise every access of a view. Fails on general index functions or
/// shape-inference failures (callers fall back to the reference path).
pub fn linearize_view(
    view: &View,
    shapes: &[Vec<usize>],
    rank: usize,
) -> Result<Vec<LinearAccess>> {
    view.accesses
        .iter()
        .map(|a| LinearAccess::build(a.buffer, &a.index_fn, &shapes[a.buffer], rank))
        .collect()
}

/// A typed column slice (primitive buffers are a single column).
#[derive(Clone, Copy)]
pub enum ColSlice<'a> {
    F32(&'a [f32]),
    F64(&'a [f64]),
    I32(&'a [i32]),
    I64(&'a [i64]),
    Bool(&'a [bool]),
    Char(&'a [u8]),
}

impl<'a> ColSlice<'a> {
    #[inline]
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            ColSlice::F32(v) => v[i] as f64,
            ColSlice::F64(v) => v[i],
            ColSlice::I32(v) => v[i] as f64,
            ColSlice::I64(v) => v[i] as f64,
            ColSlice::Bool(v) => v[i] as i64 as f64,
            ColSlice::Char(v) => v[i] as f64,
        }
    }

    #[inline]
    pub fn get_i64(&self, i: usize) -> i64 {
        match self {
            ColSlice::F32(v) => v[i] as i64,
            ColSlice::F64(v) => v[i] as i64,
            ColSlice::I32(v) => v[i] as i64,
            ColSlice::I64(v) => v[i],
            ColSlice::Bool(v) => v[i] as i64,
            ColSlice::Char(v) => v[i] as i64,
        }
    }

    pub fn from_buffer(b: &'a Buffer) -> Option<ColSlice<'a>> {
        Some(match &b.data {
            BufferData::F32(v) => ColSlice::F32(v),
            BufferData::F64(v) => ColSlice::F64(v),
            BufferData::I32(v) => ColSlice::I32(v),
            BufferData::I64(v) => ColSlice::I64(v),
            BufferData::Bool(v) => ColSlice::Bool(v),
            BufferData::Char(v) => ColSlice::Char(v),
            BufferData::Record(_) => return None,
        })
    }

    pub fn from_column(c: &'a Column) -> ColSlice<'a> {
        match c {
            Column::F32(v) => ColSlice::F32(v),
            Column::F64(v) => ColSlice::F64(v),
            Column::I32(v) => ColSlice::I32(v),
            Column::I64(v) => ColSlice::I64(v),
            Column::Bool(v) => ColSlice::Bool(v),
            Column::Char(v) => ColSlice::Char(v),
        }
    }
}

/// One record lane to load: column, lane layout, destination register.
pub struct RecLane<'a> {
    pub col: ColSlice<'a>,
    pub lanes: usize,
    pub lane: usize,
    pub reg: Reg,
}

/// Moves one access's element at a flat offset into the register banks.
pub enum Loader<'a> {
    Unused,
    Scalar { col: ColSlice<'a>, reg: Reg },
    Record { lanes: Vec<RecLane<'a>> },
}

impl<'a> Loader<'a> {
    /// Build loaders for all input accesses of a program against its
    /// compiled scalar function.
    pub fn build_all(
        prog: &DslProgram,
        inputs: &'a [Buffer],
        param_loads: &[ParamLoad],
    ) -> Result<Vec<Loader<'a>>> {
        prog.inp_view
            .accesses
            .iter()
            .zip(param_loads)
            .map(|(a, pl)| {
                let buf = &inputs[a.buffer];
                Ok(match pl {
                    ParamLoad::Unused => Loader::Unused,
                    ParamLoad::Scalar(reg) => Loader::Scalar {
                        col: ColSlice::from_buffer(buf).ok_or_else(|| {
                            MdhError::Type("scalar param bound to record buffer".into())
                        })?,
                        reg: *reg,
                    },
                    ParamLoad::Record(field_lanes) => {
                        let rs = buf.record_storage().ok_or_else(|| {
                            MdhError::Type("record param bound to scalar buffer".into())
                        })?;
                        let lanes = field_lanes
                            .iter()
                            .map(|(fi, lane, reg)| {
                                let ft = rs.record.fields[*fi].1;
                                RecLane {
                                    col: ColSlice::from_column(&rs.columns[*fi]),
                                    lanes: ft.lanes(),
                                    lane: *lane,
                                    reg: *reg,
                                }
                            })
                            .collect();
                        Loader::Record { lanes }
                    }
                })
            })
            .collect()
    }

    #[inline]
    pub fn load(&self, flat: usize, f: &mut [f64], i: &mut [i64]) {
        match self {
            Loader::Unused => {}
            Loader::Scalar { col, reg } => match reg {
                Reg::F(d) => f[*d] = col.get_f64(flat),
                Reg::I(d) => i[*d] = col.get_i64(flat),
            },
            Loader::Record { lanes } => {
                for l in lanes {
                    let idx = flat * l.lanes + l.lane;
                    match l.reg {
                        Reg::F(d) => f[d] = l.col.get_f64(idx),
                        Reg::I(d) => i[d] = l.col.get_i64(idx),
                    }
                }
            }
        }
    }
}

/// Write a result value (by kind) into an output buffer at a flat offset.
#[inline]
pub fn store_result(buf: &mut Buffer, flat: usize, kind: ScalarKind, fval: f64, ival: i64) {
    match (&mut buf.data, kind.is_float()) {
        (BufferData::F32(v), true) => v[flat] = fval as f32,
        (BufferData::F64(v), true) => v[flat] = fval,
        (BufferData::F32(v), false) => v[flat] = ival as f32,
        (BufferData::F64(v), false) => v[flat] = ival as f64,
        (BufferData::I32(v), true) => v[flat] = fval as i32,
        (BufferData::I32(v), false) => v[flat] = ival as i32,
        (BufferData::I64(v), true) => v[flat] = fval as i64,
        (BufferData::I64(v), false) => v[flat] = ival,
        (BufferData::Bool(v), true) => v[flat] = fval != 0.0,
        (BufferData::Bool(v), false) => v[flat] = ival != 0,
        (BufferData::Char(v), true) => v[flat] = fval as u8,
        (BufferData::Char(v), false) => v[flat] = ival as u8,
        (BufferData::Record(_), _) => {
            unreachable!("record outputs excluded by the VM path preconditions")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::index_fn::AffineExpr;

    #[test]
    fn linearize_matvec_matrix_access() {
        // M[(i,k)] in a 4x6 buffer: flat = 6i + k
        let f = IndexFn::identity(2, 2);
        let la = LinearAccess::build(0, &f, &[4, 6], 2).unwrap();
        assert_eq!(la.coeffs, vec![6, 1]);
        assert_eq!(la.constant, 0);
        assert_eq!(la.offset(&[2, 3]), 15);
    }

    #[test]
    fn linearize_stencil_access() {
        // img[(n, 2p+r, c)] with shape [2, 10, 3], rank 4 (n,p,r,c)
        let f = IndexFn::affine(vec![
            AffineExpr::var(4, 0),
            AffineExpr::new(vec![0, 2, 1, 0], 0),
            AffineExpr::var(4, 3),
        ]);
        let la = LinearAccess::build(0, &f, &[2, 10, 3], 4).unwrap();
        // strides: [30, 3, 1]
        assert_eq!(la.coeffs, vec![30, 6, 3, 1]);
        assert_eq!(la.offset(&[1, 2, 1, 2]), 30 + 12 + 3 + 2);
    }

    #[test]
    fn linearize_rejects_rank_mismatch() {
        let f = IndexFn::identity(2, 2);
        assert!(LinearAccess::build(0, &f, &[4], 2).is_err());
    }

    #[test]
    fn colslice_reads() {
        let v = vec![1.0f32, 2.5];
        let c = ColSlice::F32(&v);
        assert_eq!(c.get_f64(1), 2.5);
        assert_eq!(c.get_i64(1), 2);
    }
}
