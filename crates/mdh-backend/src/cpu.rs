//! The parallel CPU executor.
//!
//! Dispatches a scheduled program to the fastest applicable path:
//!
//! 1. [`Contraction`] — tight f32 loops for `Σ Π` tensor contractions,
//! 2. [`MapKernel`] — direct-write f32 loops for reduction-free stencils,
//! 3. the register-VM path (`vm_exec`) for everything with affine accesses
//!    and scalar outputs (custom combine operators, records, `ps`),
//! 4. the reference evaluator as a sequential fallback (always correct).
//!
//! All paths implement the same decomposition semantics, so results agree
//! with `mdh_core::eval::evaluate_recursive` up to floating-point
//! reassociation.

use crate::fast;
use crate::kernels::{f32_inputs, linearize_for, Contraction, MapKernel, PartialF32, SyncSlice};
use crate::vm_exec;
use mdh_core::buffer::Buffer;
use mdh_core::combine::{BuiltinReduce, PwFunc};
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};
use mdh_core::eval;
use mdh_core::shape::Shape;
use mdh_lowering::plan::{split_even, ExecutionPlan};
use mdh_lowering::schedule::Schedule;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Which execution path ran (exposed for tests and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// Registry-compiled tiled/vectorized kernel (bit-identical to Vm).
    Fast,
    Contraction,
    Map,
    Vm,
    Scatter,
    Reference,
}

/// Fast-path routing policy (per executor, default [`FastMode::Auto`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FastMode {
    /// Route eligible programs through the fast-kernel registry.
    #[default]
    Auto,
    /// Never consult the registry; use the pre-registry path order.
    Disabled,
    /// Route everything VM-applicable to `vm_exec` (differential
    /// baseline for the fast path — same plan, same bits expected).
    ForceVm,
}

/// A thread-pooled CPU executor.
///
/// The pool handle is cloneable and process-shareable: build one pool
/// and hand width-scoped handles to every executor (runtime workers,
/// `mdh-dist` CPU devices, the GPU simulator's host threads) via
/// [`CpuExecutor::with_pool`] so the process runs a single set of OS
/// threads instead of one pool per executor.
pub struct CpuExecutor {
    pool: rayon::ThreadPool,
    pub threads: usize,
    fast_mode: FastMode,
}

/// Plans covering at most this many iteration-space points run with the
/// parallel width clamped to 1: the region never crosses a thread
/// boundary, so tiny requests skip pool publication and wakeups
/// entirely. Chunk bracketing depends on the width, but every path
/// combines per-task results in task-index order, so the cutoff cannot
/// change output bits.
const SMALL_PLAN_POINTS: usize = 2048;

/// Fixed number of chunks the scatter (`rbi`) path cuts the indexed
/// dimension into. A *constant* — deliberately independent of the pool
/// width — so the private-partial structure and the shape of the combine
/// tree are identical at every thread count: result bits cannot depend on
/// parallelism, only wall-clock does.
const SCATTER_CHUNKS: usize = 16;

impl CpuExecutor {
    /// Build an executor with its own dedicated pool of `threads`.
    pub fn new(threads: usize) -> Result<CpuExecutor> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| MdhError::Validation(format!("thread pool: {e}")))?;
        Ok(CpuExecutor {
            pool,
            threads,
            fast_mode: FastMode::Auto,
        })
    }

    /// Build an executor sharing an existing pool's OS threads, with its
    /// parallel width capped at `threads`. No threads are spawned.
    pub fn with_pool(pool: &rayon::ThreadPool, threads: usize) -> CpuExecutor {
        let pool = pool.with_width(threads);
        let threads = pool.current_num_threads();
        CpuExecutor {
            pool,
            threads,
            fast_mode: FastMode::Auto,
        }
    }

    /// Set the fast-path routing policy (builder style).
    pub fn with_fast_mode(mut self, mode: FastMode) -> CpuExecutor {
        self.fast_mode = mode;
        self
    }

    /// The executor's fast-path routing policy.
    pub fn fast_mode(&self) -> FastMode {
        self.fast_mode
    }

    /// The executor's pool handle (share it via
    /// [`CpuExecutor::with_pool`]).
    pub fn pool(&self) -> &rayon::ThreadPool {
        &self.pool
    }

    /// Use all available hardware threads.
    pub fn with_default_threads() -> CpuExecutor {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        CpuExecutor::new(threads).expect("default thread pool")
    }

    /// The pool handle a plan should execute under: full width normally,
    /// width 1 for plans too small to amortize crossing a thread
    /// boundary.
    fn pool_for(&self, plan: &ExecutionPlan) -> rayon::ThreadPool {
        if plan.covered_points() <= SMALL_PLAN_POINTS {
            self.pool.with_width(1)
        } else {
            self.pool.clone()
        }
    }

    /// Which path `run` would take for this program.
    pub fn path_for(&self, prog: &DslProgram) -> ExecPath {
        if prog.md_hom.has_rbi() {
            return ExecPath::Scatter;
        }
        match self.fast_mode {
            FastMode::Auto => {
                if fast::classify(prog).is_ok() {
                    return ExecPath::Fast;
                }
            }
            FastMode::ForceVm => {
                if vm_exec::vm_applicable(prog) {
                    return ExecPath::Vm;
                }
            }
            FastMode::Disabled => {}
        }
        self.slow_path_for(prog)
    }

    /// The pre-registry path order — what a fast-path miss falls back to.
    fn slow_path_for(&self, prog: &DslProgram) -> ExecPath {
        if Contraction::try_build(prog).is_some() {
            ExecPath::Contraction
        } else if MapKernel::try_build(prog).is_some() {
            ExecPath::Map
        } else if vm_exec::vm_applicable(prog) {
            ExecPath::Vm
        } else {
            ExecPath::Reference
        }
    }

    /// Execute the program under the given schedule.
    pub fn run(
        &self,
        prog: &DslProgram,
        schedule: &Schedule,
        inputs: &[Buffer],
    ) -> Result<Vec<Buffer>> {
        prog.validate()?;
        schedule.validate(prog, 1 << 24)?;
        let plan = ExecutionPlan::build(prog, schedule)?;
        self.run_planned(prog, schedule, &plan, inputs)
    }

    /// Execute with an already-lowered plan, skipping program/schedule
    /// validation and plan construction. The caller (e.g. the runtime's
    /// plan cache) guarantees `plan` was built from `(prog, schedule)`;
    /// only the per-request inputs are re-checked.
    pub fn run_planned(
        &self,
        prog: &DslProgram,
        schedule: &Schedule,
        plan: &ExecutionPlan,
        inputs: &[Buffer],
    ) -> Result<Vec<Buffer>> {
        eval::check_inputs(prog, inputs)?;
        let path = self.path_for(prog);
        // in Auto mode every non-rbi run either hits a kernel or counts
        // as a fallback, so hits/(hits+fallbacks) is fast-path coverage
        if self.fast_mode == FastMode::Auto && path != ExecPath::Fast && !prog.md_hom.has_rbi() {
            fast::registry().record_fallback();
        }
        self.run_on_path(path, prog, schedule, plan, inputs)
    }

    fn run_on_path(
        &self,
        path: ExecPath,
        prog: &DslProgram,
        schedule: &Schedule,
        plan: &ExecutionPlan,
        inputs: &[Buffer],
    ) -> Result<Vec<Buffer>> {
        match path {
            ExecPath::Fast => {
                if let Ok(kernel) = fast::registry().lookup_or_compile(prog, plan) {
                    if let Some(outs) = kernel.run(prog, plan, inputs, &self.pool_for(plan))? {
                        fast::registry().record_hit();
                        return Ok(outs);
                    }
                }
                // dynamic bail: transparent per-run fallback
                fast::registry().record_fallback();
                self.run_on_path(self.slow_path_for(prog), prog, schedule, plan, inputs)
            }
            ExecPath::Contraction => {
                let c = Contraction::try_build(prog).unwrap();
                self.run_contraction(&c, prog, plan, inputs, &schedule.inner_tiles)
            }
            ExecPath::Map => {
                let mk = MapKernel::try_build(prog).unwrap();
                self.run_map(&mk, prog, plan, inputs)
            }
            ExecPath::Vm => vm_exec::run(prog, plan, inputs, &self.pool_for(plan)),
            ExecPath::Scatter => self.run_scatter(prog, plan, inputs),
            ExecPath::Reference => eval::evaluate_recursive(prog, inputs),
        }
    }

    /// Indexed-reduction (`rbi`) path: the rbi dimension is cut into
    /// [`SCATTER_CHUNKS`] fixed intervals; each chunk scatters into its own
    /// zero-initialised full-shape partial in ascending point order, and the
    /// partials are folded with a fixed binary combine tree — pair (0,1),
    /// (2,3), … per level, in chunk-index order. Both the chunk structure
    /// and the tree shape depend only on the program, so outputs are
    /// bit-identical across pool widths.
    fn run_scatter(
        &self,
        prog: &DslProgram,
        plan: &ExecutionPlan,
        inputs: &[Buffer],
    ) -> Result<Vec<Buffer>> {
        let d = *prog
            .md_hom
            .rbi_dims()
            .first()
            .ok_or_else(|| MdhError::Eval("scatter path requires an rbi dimension".into()))?;
        let full = prog.md_hom.full_range();
        let intervals = split_even(prog.md_hom.sizes[d], SCATTER_CHUNKS);
        let mut chunk_outs: Vec<Result<Vec<Buffer>>> = Vec::new();
        self.pool_for(plan).install(|| {
            intervals
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut range = full.clone();
                    range.lo[d] = lo;
                    range.hi[d] = hi;
                    let mut outs = eval::alloc_outputs(prog)?;
                    eval::scatter_range(prog, inputs, &range, &mut outs)?;
                    Ok(outs)
                })
                .collect_into_vec(&mut chunk_outs);
        });
        let mut layer: Vec<Vec<Buffer>> = chunk_outs.into_iter().collect::<Result<_>>()?;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut it = layer.into_iter();
            while let Some(mut lhs) = it.next() {
                if let Some(rhs) = it.next() {
                    add_outputs(&mut lhs, &rhs)?;
                }
                next.push(lhs);
            }
            layer = next;
        }
        layer
            .pop()
            .ok_or_else(|| MdhError::Eval("scatter produced no partials".into()))
    }

    /// Execute and report wall-clock time of the execution itself.
    pub fn run_timed(
        &self,
        prog: &DslProgram,
        schedule: &Schedule,
        inputs: &[Buffer],
    ) -> Result<(Vec<Buffer>, Duration)> {
        let t0 = Instant::now();
        let out = self.run(prog, schedule, inputs)?;
        Ok((out, t0.elapsed()))
    }

    fn run_contraction(
        &self,
        c: &Contraction,
        prog: &DslProgram,
        plan: &ExecutionPlan,
        inputs: &[Buffer],
        schedule_tiles: &[usize],
    ) -> Result<Vec<Buffer>> {
        let mut outputs = eval::alloc_outputs(prog)?;
        let (in_acc, out_acc) = linearize_for(prog, inputs, &outputs)?;
        let ins = f32_inputs(prog, inputs)?;

        let tiles = schedule_tiles;
        let mut partials: Vec<Option<PartialF32>> = Vec::new();
        self.pool_for(plan).install(|| {
            plan.tasks
                .par_iter()
                .map(|t| Some(c.run_task_tiled(&ins, &in_acc, &t.range, tiles)))
                .collect_into_vec(&mut partials);
        });

        // combine split-reduction groups with pw(add)
        let write_jobs: Vec<(usize, PartialF32)> = if plan.split_dims.is_empty() {
            partials
                .into_iter()
                .enumerate()
                .map(|(t, p)| (t, p.expect("partial")))
                .collect()
        } else {
            let mut partials = partials;
            plan.groups
                .iter()
                .map(|g| {
                    let owner = g.task_ids[0];
                    let mut acc = partials[owner].take().expect("owner partial");
                    for &tid in &g.task_ids[1..] {
                        let rhs = partials[tid].take().expect("member partial");
                        acc.add_assign(&rhs);
                    }
                    (owner, acc)
                })
                .collect()
        };

        // write phase
        let out_buf_idx = prog.out_view.accesses[0].buffer;
        let out = outputs[out_buf_idx]
            .as_f32_mut()
            .ok_or_else(|| MdhError::Type("contraction output must be f32".into()))?;
        let oacc = &out_acc[0];
        for (owner, partial) in write_jobs {
            let range = &plan.tasks[owner].range;
            let shape = Shape::new(partial.extents.clone());
            let mut idx = vec![0usize; prog.rank()];
            for p in shape.iter() {
                for (pp, &d) in c.preserved.iter().enumerate() {
                    idx[d] = range.lo[d] + p[pp];
                }
                let off = oacc.offset(&idx);
                if off < 0 {
                    return Err(MdhError::Eval("negative output offset".into()));
                }
                out[off as usize] = partial.data[shape.linearize(&p)];
            }
        }
        Ok(outputs)
    }

    fn run_map(
        &self,
        mk: &MapKernel,
        prog: &DslProgram,
        plan: &ExecutionPlan,
        inputs: &[Buffer],
    ) -> Result<Vec<Buffer>> {
        let mut outputs = eval::alloc_outputs(prog)?;
        let (in_acc, out_acc) = linearize_for(prog, inputs, &outputs)?;
        let ins = f32_inputs(prog, inputs)?;
        debug_assert!(plan.split_dims.is_empty(), "map kernels have no reductions");
        let out_buf_idx = prog.out_view.accesses[0].buffer;
        {
            let out = outputs[out_buf_idx]
                .as_f32_mut()
                .ok_or_else(|| MdhError::Type("map output must be f32".into()))?;
            let shared = SyncSlice::new(out);
            self.pool_for(plan).install(|| {
                plan.tasks.par_iter().for_each(|t| {
                    mk.run_task(&ins, &in_acc, &out_acc[0], &t.range, &shared);
                });
            });
        }
        Ok(outputs)
    }
}

/// Element-wise `add` of two identically-shaped output sets (rbi partial
/// combining).
fn add_outputs(acc: &mut [Buffer], rhs: &[Buffer]) -> Result<()> {
    let add = PwFunc::builtin(BuiltinReduce::Add);
    for (a, r) in acc.iter_mut().zip(rhs) {
        for i in 0..a.len() {
            let combined = add.combine(&vec![a.get_flat(i)], &vec![r.get_flat(i)])?;
            a.set_flat(i, &combined[0])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::{AffineExpr, IndexFn};
    use mdh_core::types::{BasicType, ScalarKind};
    use mdh_lowering::asm::DeviceKind;
    use mdh_lowering::heuristics::mdh_default_schedule;
    use mdh_lowering::schedule::ReductionStrategy;

    fn exec() -> CpuExecutor {
        CpuExecutor::new(4).unwrap()
    }

    fn matmul_prog(i: usize, j: usize, k: usize) -> DslProgram {
        DslBuilder::new("matmul", vec![i, j, k])
            .out_buffer("C", BasicType::F32)
            .out_access("C", IndexFn::select(3, &[0, 1]))
            .inp_buffer("A", BasicType::F32)
            .inp_access("A", IndexFn::select(3, &[0, 2]))
            .inp_buffer("B", BasicType::F32)
            .inp_access("B", IndexFn::select(3, &[2, 1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    fn matmul_inputs(i: usize, j: usize, k: usize) -> Vec<Buffer> {
        let mut a = Buffer::zeros("A", BasicType::F32, Shape::new(vec![i, k]));
        a.fill_with(|f| ((f * 37) % 13) as f64 - 6.0);
        let mut b = Buffer::zeros("B", BasicType::F32, Shape::new(vec![k, j]));
        b.fill_with(|f| ((f * 17) % 9) as f64 * 0.25);
        vec![a, b]
    }

    #[test]
    fn matmul_via_contraction_path_matches_reference() {
        let (i, j, k) = (10, 12, 9);
        let prog = matmul_prog(i, j, k);
        let inputs = matmul_inputs(i, j, k);
        let ex = exec();
        assert_eq!(ex.path_for(&prog), ExecPath::Fast);
        assert_eq!(ex.slow_path_for(&prog), ExecPath::Contraction);
        let expect = eval::evaluate_recursive(&prog, &inputs).unwrap();
        // several schedules, with and without split reductions
        for (par, tree) in [
            (vec![1, 1, 1], false),
            (vec![2, 3, 1], false),
            (vec![2, 2, 3], true),
            (vec![1, 1, 4], true),
        ] {
            let mut s = Schedule::sequential(3, DeviceKind::Cpu);
            s.par_chunks = par.clone();
            if tree {
                s.reduction = ReductionStrategy::Tree;
            }
            let got = ex.run(&prog, &s, &inputs).unwrap();
            assert!(
                got[0].approx_eq(&expect[0], 1e-4),
                "schedule par={par:?} tree={tree}"
            );
        }
    }

    #[test]
    fn histogram_via_scatter_path_bit_identical_across_widths() {
        // hist[key[i]] += w[i], integer-valued weights so addition is
        // exact; the real assertion is bitwise equality across pool
        // widths, which the fixed chunk structure must guarantee even
        // for non-integer data.
        let n = 5000;
        let buckets = 16;
        let keys: Vec<usize> = (0..n).map(|i| (i * 131) % buckets).collect();
        let captured = keys.clone();
        let prog = DslBuilder::new("hist", vec![n])
            .out_buffer_with_shape("hist", BasicType::F32, vec![buckets])
            .out_access(
                "hist",
                IndexFn::General {
                    out_rank: 1,
                    f: std::sync::Arc::new(move |idx: &[usize]| vec![captured[idx[0]]]),
                    label: "key".into(),
                },
            )
            .inp_buffer("w", BasicType::F32)
            .inp_access("w", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F32))
            .combine_ops(vec![CombineOp::rbi_add()])
            .build()
            .unwrap();
        let mut w = Buffer::zeros("w", BasicType::F32, Shape::new(vec![n]));
        w.fill_with(|i| ((i.wrapping_mul(2654435761)) % 16) as f64 - 8.0);
        let inputs = vec![w];
        let expect = eval::evaluate_recursive(&prog, &inputs).unwrap();
        let mut bits: Vec<Vec<u32>> = Vec::new();
        for width in [1usize, 2, 4] {
            let ex = CpuExecutor::new(width).unwrap();
            assert_eq!(ex.path_for(&prog), ExecPath::Scatter);
            let s = mdh_default_schedule(&prog, DeviceKind::Cpu, width);
            let got = ex.run(&prog, &s, &inputs).unwrap();
            assert_eq!(
                got[0].as_f32().unwrap(),
                expect[0].as_f32().unwrap(),
                "width {width} diverges from reference"
            );
            bits.push(
                got[0]
                    .as_f32()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
            );
        }
        assert!(
            bits.windows(2).all(|p| p[0] == p[1]),
            "scatter output bits differ across widths"
        );
    }

    #[test]
    fn stencil_via_map_path_matches_reference() {
        let n = 64;
        let prog = DslBuilder::new("jacobi1d", vec![n])
            .out_buffer("y", BasicType::F32)
            .out_access("y", IndexFn::identity(1, 1))
            .inp_buffer("x", BasicType::F32)
            .inp_access("x", IndexFn::affine(vec![AffineExpr::new(vec![1], 0)]))
            .inp_access("x", IndexFn::affine(vec![AffineExpr::new(vec![1], 1)]))
            .inp_access("x", IndexFn::affine(vec![AffineExpr::new(vec![1], 2)]))
            .scalar_function(ScalarFunction::weighted_sum(
                "w",
                ScalarKind::F32,
                &[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
            ))
            .combine_ops(vec![CombineOp::cc()])
            .build()
            .unwrap();
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![n + 2]));
        x.fill_with(|f| ((f * 31) % 11) as f64);
        let inputs = vec![x];
        let ex = exec();
        assert_eq!(ex.path_for(&prog), ExecPath::Fast);
        assert_eq!(ex.slow_path_for(&prog), ExecPath::Map);
        let expect = eval::evaluate_recursive(&prog, &inputs).unwrap();
        let mut s = Schedule::sequential(1, DeviceKind::Cpu);
        s.par_chunks = vec![4];
        let got = ex.run(&prog, &s, &inputs).unwrap();
        assert!(got[0].approx_eq(&expect[0], 1e-5));
    }

    #[test]
    fn f64_matvec_takes_vm_path() {
        let (i, k) = (8, 8);
        let prog = DslBuilder::new("matvec64", vec![i, k])
            .out_buffer("w", BasicType::F64)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F64)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F64)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f", ScalarKind::F64))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap();
        let ex = exec();
        assert_eq!(ex.path_for(&prog), ExecPath::Vm);
        let mut m = Buffer::zeros("M", BasicType::F64, Shape::new(vec![i, k]));
        m.fill_with(|f| f as f64);
        let mut v = Buffer::zeros("v", BasicType::F64, Shape::new(vec![k]));
        v.fill_with(|f| 1.0 + f as f64);
        let inputs = vec![m, v];
        let expect = eval::evaluate_recursive(&prog, &inputs).unwrap();
        let s = mdh_default_schedule(&prog, DeviceKind::Cpu, 4);
        let got = ex.run(&prog, &s, &inputs).unwrap();
        assert!(got[0].approx_eq(&expect[0], 1e-9));
    }

    #[test]
    fn default_schedule_end_to_end_large_dot() {
        // pure reduction with a split: exercises group combining in the
        // contraction path
        let n = 100_000;
        let prog = DslBuilder::new("dot", vec![n])
            .out_buffer("res", BasicType::F32)
            .out_access("res", IndexFn::affine(vec![AffineExpr::constant(1, 0)]))
            .inp_buffer("x", BasicType::F32)
            .inp_access("x", IndexFn::identity(1, 1))
            .inp_buffer("y", BasicType::F32)
            .inp_access("y", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::mul2("f", ScalarKind::F32))
            .combine_ops(vec![CombineOp::pw_add()])
            .build()
            .unwrap();
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![n]));
        x.fill_with(|f| ((f % 17) as f64 - 8.0) / 16.0);
        let mut y = Buffer::zeros("y", BasicType::F32, Shape::new(vec![n]));
        y.fill_with(|f| ((f % 23) as f64) / 23.0);
        let inputs = vec![x.clone(), y.clone()];
        let s = mdh_default_schedule(&prog, DeviceKind::Cpu, 4);
        assert!(s.splits_reduction(&prog));
        let ex = exec();
        let got = ex.run(&prog, &s, &inputs).unwrap();
        let xf = x.as_f32().unwrap();
        let yf = y.as_f32().unwrap();
        let expect: f64 = xf
            .iter()
            .zip(yf)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let got_v = got[0].as_f32().unwrap()[0] as f64;
        assert!(
            (got_v - expect).abs() < 1e-2 * expect.abs().max(1.0),
            "{got_v} vs {expect}"
        );
    }

    #[test]
    fn run_timed_returns_duration() {
        let prog = matmul_prog(16, 16, 16);
        let inputs = matmul_inputs(16, 16, 16);
        let s = Schedule::sequential(3, DeviceKind::Cpu);
        let (_, d) = exec().run_timed(&prog, &s, &inputs).unwrap();
        assert!(d.as_nanos() > 0);
    }
}
