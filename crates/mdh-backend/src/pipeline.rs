//! Pipelines: composition of MDH programs.
//!
//! Many applications the paper motivates are *chains* of data-parallel
//! computations: the full Maximum Bottom Box Sum is a prefix-sum program
//! followed by a max-reduction; a neural network is a chain of MCC and
//! GEMM layers. A [`Pipeline`] wires programs' outputs to later programs'
//! inputs, executes the stages through the CPU backend, and accumulates
//! GPU-model cost (kernel time + inter-stage data staying resident on the
//! device, per the transfer model).

use crate::cpu::CpuExecutor;
use crate::gpu::GpuSim;
use crate::transfer::{DeviceDataRegion, LinkParams};
use mdh_core::buffer::Buffer;
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::heuristics::mdh_default_schedule;
use mdh_lowering::schedule::Schedule;
use std::collections::HashMap;

/// Where a stage input comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// An external buffer supplied to [`Pipeline::run`], by name.
    External(String),
    /// Output buffer `buffer` of earlier stage `stage`.
    Stage { stage: usize, buffer: String },
}

/// One stage: a program plus where each of its inputs comes from.
pub struct Stage {
    pub program: DslProgram,
    pub inputs: Vec<Source>,
    /// Schedule override (defaults to the device heuristic).
    pub schedule: Option<Schedule>,
}

/// A chain of programs.
#[derive(Default)]
pub struct Pipeline {
    pub stages: Vec<Stage>,
}

impl Pipeline {
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Append a stage; `inputs` must name one source per program input
    /// buffer (in order).
    pub fn stage(mut self, program: DslProgram, inputs: Vec<Source>) -> Self {
        self.stages.push(Stage {
            program,
            inputs,
            schedule: None,
        });
        self
    }

    /// Append a stage with an explicit schedule.
    pub fn stage_with_schedule(
        mut self,
        program: DslProgram,
        inputs: Vec<Source>,
        schedule: Schedule,
    ) -> Self {
        self.stages.push(Stage {
            program,
            inputs,
            schedule: Some(schedule),
        });
        self
    }

    /// Structural validation: arities and source references.
    pub fn validate(&self) -> Result<()> {
        for (si, st) in self.stages.iter().enumerate() {
            if st.inputs.len() != st.program.inp_view.buffers.len() {
                return Err(MdhError::Validation(format!(
                    "stage {si} ('{}') declares {} inputs but {} sources are wired",
                    st.program.name,
                    st.program.inp_view.buffers.len(),
                    st.inputs.len()
                )));
            }
            for src in &st.inputs {
                if let Source::Stage { stage, buffer } = src {
                    if *stage >= si {
                        return Err(MdhError::Validation(format!(
                            "stage {si} reads from stage {stage}, which is not earlier"
                        )));
                    }
                    let producer = &self.stages[*stage].program;
                    if producer.out_view.buffer_index(buffer).is_none() {
                        return Err(MdhError::Validation(format!(
                            "stage {si} reads '{buffer}' from stage {stage}, \
                             which has no such output"
                        )));
                    }
                }
            }
            st.program.validate()?;
        }
        Ok(())
    }

    /// Execute the chain on the CPU backend. Returns the outputs of every
    /// stage (`result[stage][output]`).
    pub fn run(
        &self,
        exec: &CpuExecutor,
        external: &HashMap<String, Buffer>,
    ) -> Result<Vec<Vec<Buffer>>> {
        self.validate()?;
        let mut results: Vec<Vec<Buffer>> = Vec::with_capacity(self.stages.len());
        for st in &self.stages {
            let mut inputs = Vec::with_capacity(st.inputs.len());
            for src in &st.inputs {
                let buf = match src {
                    Source::External(name) => external.get(name).cloned().ok_or_else(|| {
                        MdhError::Validation(format!("missing external buffer '{name}'"))
                    })?,
                    Source::Stage { stage, buffer } => {
                        let producer = &self.stages[*stage].program;
                        let idx = producer.out_view.buffer_index(buffer).expect("validated");
                        results[*stage][idx].clone()
                    }
                };
                inputs.push(buf);
            }
            let schedule = st.schedule.clone().unwrap_or_else(|| {
                mdh_default_schedule(&st.program, DeviceKind::Cpu, exec.threads)
            });
            results.push(exec.run(&st.program, &schedule, &inputs)?);
        }
        Ok(results)
    }

    /// Modelled end-to-end GPU time: per-stage kernel estimates plus
    /// host↔device transfers — intermediate buffers stay device-resident,
    /// so only externals are copied in and only final-stage outputs out.
    pub fn estimate_gpu_ms(
        &self,
        sim: &GpuSim,
        external_bytes: &HashMap<String, usize>,
    ) -> Result<f64> {
        self.validate()?;
        let mut region = DeviceDataRegion::new(LinkParams::pcie4_x16());
        let mut total = 0.0;
        for (si, st) in self.stages.iter().enumerate() {
            // copy in external inputs (resident ones are free)
            for src in &st.inputs {
                if let Source::External(name) = src {
                    let bytes = *external_bytes.get(name).ok_or_else(|| {
                        MdhError::Validation(format!("missing size for external '{name}'"))
                    })?;
                    let fake = Buffer::zeros(
                        name.clone(),
                        mdh_core::types::BasicType::CHAR,
                        mdh_core::shape::Shape::new(vec![bytes]),
                    );
                    total += region.copyin(&fake);
                }
            }
            let schedule = st
                .schedule
                .clone()
                .unwrap_or_else(|| mdh_default_schedule(&st.program, DeviceKind::Gpu, 108 * 32));
            total += sim.estimate(&st.program, &schedule)?.time_ms;
            // final stage: results come back to the host
            if si == self.stages.len() - 1 {
                if let Ok(shapes) = st.program.output_shapes() {
                    for (decl, shape) in st.program.out_view.buffers.iter().zip(shapes) {
                        let bytes = shape.iter().product::<usize>() * decl.ty.size_bytes();
                        total += region.copyout(&decl.name, bytes);
                    }
                }
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::{AffineExpr, IndexFn};
    use mdh_core::shape::Shape;
    use mdh_core::types::{BasicType, ScalarKind};

    /// Stage 1 of full MBBS: bbs[i] = prefix over i of row sums.
    fn scan_stage(i: usize, j: usize) -> DslProgram {
        DslBuilder::new("mbbs_scan", vec![i, j])
            .out_buffer("bbs", BasicType::F64)
            .out_access("bbs", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F64)
            .inp_access("M", IndexFn::identity(2, 2))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
            .combine_ops(vec![CombineOp::ps_add(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    /// Stage 2: the maximum over the scan — Farzan & Nicolet's MBBS value.
    fn max_stage(i: usize) -> DslProgram {
        DslBuilder::new("mbbs_max", vec![i])
            .out_buffer("best", BasicType::F64)
            .out_access("best", IndexFn::affine(vec![AffineExpr::constant(1, 0)]))
            .inp_buffer("bbs", BasicType::F64)
            .inp_access("bbs", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
            .combine_ops(vec![CombineOp::pw_max()])
            .build()
            .unwrap()
    }

    #[test]
    fn full_mbbs_pipeline_matches_reference() {
        let (i, j) = (12, 5);
        let pipeline = Pipeline::new()
            .stage(scan_stage(i, j), vec![Source::External("M".into())])
            .stage(
                max_stage(i),
                vec![Source::Stage {
                    stage: 0,
                    buffer: "bbs".into(),
                }],
            );
        let mut m = Buffer::zeros("M", BasicType::F64, Shape::new(vec![i, j]));
        m.fill_with(|f| ((f * 37) % 19) as f64 - 9.0);
        let mut external = HashMap::new();
        external.insert("M".to_string(), m.clone());

        let exec = CpuExecutor::new(3).unwrap();
        let results = pipeline.run(&exec, &external).unwrap();
        let got = results[1][0].as_f64().unwrap()[0];

        // reference: max over prefix sums of row sums
        let mf = m.as_f64().unwrap();
        let mut acc = 0.0;
        let mut best = f64::NEG_INFINITY;
        for ii in 0..i {
            for jj in 0..j {
                acc += mf[ii * j + jj];
            }
            best = best.max(acc);
        }
        assert!((got - best).abs() < 1e-9, "{got} vs {best}");
    }

    #[test]
    fn two_layer_gemm_chain() {
        // y = B (A x): two MatVec stages chained
        let matvec = |name: &str, i: usize, k: usize| {
            DslBuilder::new(name, vec![i, k])
                .out_buffer("y", BasicType::F32)
                .out_access("y", IndexFn::select(2, &[0]))
                .inp_buffer("W", BasicType::F32)
                .inp_access("W", IndexFn::identity(2, 2))
                .inp_buffer("x", BasicType::F32)
                .inp_access("x", IndexFn::select(2, &[1]))
                .scalar_function(ScalarFunction::mul2("f", ScalarKind::F32))
                .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
                .build()
                .unwrap()
        };
        let (n0, n1, n2) = (6, 4, 3);
        let pipeline = Pipeline::new()
            .stage(
                matvec("layer1", n1, n0),
                vec![Source::External("W1".into()), Source::External("x".into())],
            )
            .stage(
                matvec("layer2", n2, n1),
                vec![
                    Source::External("W2".into()),
                    Source::Stage {
                        stage: 0,
                        buffer: "y".into(),
                    },
                ],
            );
        let mut w1 = Buffer::zeros("W1", BasicType::F32, Shape::new(vec![n1, n0]));
        w1.fill_with(|f| (f % 5) as f64 * 0.25);
        let mut w2 = Buffer::zeros("W2", BasicType::F32, Shape::new(vec![n2, n1]));
        w2.fill_with(|f| (f % 3) as f64 - 1.0);
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![n0]));
        x.fill_with(|f| f as f64);
        let mut external = HashMap::new();
        external.insert("W1".into(), w1.clone());
        external.insert("W2".into(), w2.clone());
        external.insert("x".into(), x.clone());

        let exec = CpuExecutor::new(2).unwrap();
        let results = pipeline.run(&exec, &external).unwrap();
        let y = results[1][0].as_f32().unwrap();

        // reference
        let (w1f, w2f, xf) = (
            w1.as_f32().unwrap(),
            w2.as_f32().unwrap(),
            x.as_f32().unwrap(),
        );
        let h: Vec<f32> = (0..n1)
            .map(|r| (0..n0).map(|c| w1f[r * n0 + c] * xf[c]).sum())
            .collect();
        for r in 0..n2 {
            let expect: f32 = (0..n1).map(|c| w2f[r * n1 + c] * h[c]).sum();
            assert!((y[r] - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn validation_catches_bad_wiring() {
        let p = Pipeline::new().stage(
            max_stage(4),
            vec![Source::Stage {
                stage: 0,
                buffer: "bbs".into(),
            }],
        );
        assert!(p.validate().is_err(), "self-reference must fail");

        let p = Pipeline::new()
            .stage(scan_stage(4, 2), vec![Source::External("M".into())])
            .stage(
                max_stage(4),
                vec![Source::Stage {
                    stage: 0,
                    buffer: "nonexistent".into(),
                }],
            );
        assert!(p.validate().is_err(), "unknown producer output must fail");
    }

    #[test]
    fn gpu_estimate_includes_transfers_once() {
        let (i, j) = (1024, 512);
        let pipeline = Pipeline::new()
            .stage(scan_stage(i, j), vec![Source::External("M".into())])
            .stage(
                max_stage(i),
                vec![Source::Stage {
                    stage: 0,
                    buffer: "bbs".into(),
                }],
            );
        let sim = GpuSim::a100(1).unwrap();
        let mut sizes = HashMap::new();
        sizes.insert("M".to_string(), i * j * 8);
        let total = pipeline.estimate_gpu_ms(&sim, &sizes).unwrap();
        // must at least cover the H2D copy of M (4 MiB over PCIe)
        let h2d = crate::transfer::transfer_ms(&LinkParams::pcie4_x16(), i * j * 8);
        assert!(total > h2d, "total {total} ms must include {h2d} ms copyin");
    }
}
