//! # mdh-backend
//!
//! Execution backends for scheduled MDH programs:
//!
//! * [`cpu::CpuExecutor`] — real multi-threaded execution on the host
//!   (rayon pool), with specialised contraction/stencil kernels, a
//!   compiling register VM for arbitrary scalar functions and custom
//!   combine operators, and a reference fallback;
//! * [`gpu::GpuSim`] — a functional GPU simulator with an A100-class
//!   analytic cost model (the documented substitution for real CUDA
//!   code generation).

// Dimension-indexed loops over parallel per-dim arrays are clearer with
// explicit indices here; see the kernels' odometer loops.
#![allow(clippy::needless_range_loop)]
pub mod cpu;
pub mod cpu_model;
pub mod fast;
pub mod gpu;
pub mod kernels;
pub mod offsets;
pub mod pipeline;
pub mod transfer;
pub mod vm;
pub mod vm_exec;

pub use cpu::{CpuExecutor, ExecPath, FastMode};
pub use cpu_model::{estimate_cpu, CpuParams, CpuReport};
pub use fast::{FastKernel, FastRegistry};
pub use gpu::{GpuReport, GpuSim};
pub use pipeline::{Pipeline, Source, Stage};
pub use transfer::{DeviceDataRegion, LinkParams};
