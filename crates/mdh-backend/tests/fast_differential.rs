//! Differential proof of the fast path's bit-identity contract.
//!
//! The fast kernels promise: for any eligible program and any FIXED
//! execution plan, their output is bitwise equal to `vm_exec` on that
//! same plan, at every pool width. This harness generates random affine
//! `cc`/`pw` contraction programs and random weighted-sum map programs —
//! with deliberately inexact (non-binary-float) fills, so any fold-order
//! deviation must surface as a bit difference — and checks the kernel
//! against the VM under pool widths 1, 2, and 4.
//!
//! Schedules are randomized too: per-dim parallel chunking (exercising
//! the split-reduction group combine) and per-dim tile sizes (exercising
//! the blocked loop structure).

use mdh_backend::fast;
use mdh_backend::vm_exec;
use mdh_core::buffer::{Buffer, BufferData};
use mdh_core::combine::CombineOp;
use mdh_core::dsl::{DslBuilder, DslProgram};
use mdh_core::expr::ScalarFunction;
use mdh_core::index_fn::{AffineExpr, IndexFn};
use mdh_core::shape::Shape;
use mdh_core::types::{BasicType, ScalarKind};
use mdh_lowering::plan::ExecutionPlan;
use mdh_lowering::schedule::{ReductionStrategy, Schedule};
use mdh_lowering::DeviceKind;
use proptest::prelude::*;

fn shared_base() -> &'static mdh_backend::CpuExecutor {
    static POOL: std::sync::OnceLock<mdh_backend::CpuExecutor> = std::sync::OnceLock::new();
    POOL.get_or_init(|| mdh_backend::CpuExecutor::new(4).expect("pool"))
}

/// Bitwise output equality (distinguishes -0.0/0.0, compares NaN bits).
fn bits_eq(a: &[Buffer], b: &[Buffer]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (&x.data, &y.data) {
            (BufferData::F32(p), BufferData::F32(q)) => {
                p.len() == q.len() && p.iter().zip(q).all(|(s, t)| s.to_bits() == t.to_bits())
            }
            (p, q) => p == q,
        })
}

/// Inexact, position-dependent fill: 0.1*k is not a binary float, so a
/// reassociated fold changes low-order bits.
fn inexact_fill(buf: &mut Buffer, salt: usize) {
    buf.fill_with(move |i| {
        let k = i.wrapping_add(salt).wrapping_mul(2654435761) % 1000;
        k as f64 * 0.1 - 31.7
    });
}

/// The proptest shim has no `prop_flat_map`, so strategies generate all
/// dimension-indexed material at `MAX_RANK` and truncate to the drawn
/// rank in `prop_map`.
const MAX_RANK: usize = 3;
const TILE_CHOICES: [usize; 5] = [1, 2, 4, 8, 64];
const WEIGHT_CHOICES: [f64; 5] = [1.0, 0.1, 0.25, 0.333, -2.5];

/// One random affine access: coefficients per iteration dim plus a
/// constant, one expr per buffer dim.
#[derive(Debug, Clone)]
struct RandAccess {
    exprs: Vec<(Vec<i64>, i64)>,
}

impl RandAccess {
    fn truncated(&self, rank: usize) -> RandAccess {
        RandAccess {
            exprs: self
                .exprs
                .iter()
                .map(|(c, k)| (c[..rank].to_vec(), *k))
                .collect(),
        }
    }

    fn index_fn(&self) -> IndexFn {
        IndexFn::affine(
            self.exprs
                .iter()
                .map(|(c, k)| AffineExpr::new(c.clone(), *k))
                .collect(),
        )
    }

    /// Smallest buffer shape covering the access over `sizes`.
    fn buffer_shape(&self, sizes: &[usize]) -> Vec<usize> {
        self.exprs
            .iter()
            .map(|(coeffs, constant)| {
                let hi: i64 = coeffs
                    .iter()
                    .zip(sizes)
                    .map(|(&c, &s)| c * (s as i64 - 1))
                    .sum::<i64>()
                    + constant;
                (hi + 1) as usize
            })
            .collect()
    }
}

fn rand_access() -> impl Strategy<Value = RandAccess> {
    prop::collection::vec((prop::collection::vec(0i64..3, MAX_RANK), 0i64..3), 1..=2)
        .prop_map(|exprs| RandAccess { exprs })
}

#[derive(Debug, Clone)]
struct ContractionCase {
    sizes: Vec<usize>,
    /// Bitmask of pw (reduced) dims; never 0.
    pw_mask: usize,
    acc0: RandAccess,
    acc1: RandAccess,
    tiles: Vec<usize>,
    chunks: Vec<usize>,
    salt: usize,
}

fn contraction_case() -> impl Strategy<Value = ContractionCase> {
    (
        1usize..=MAX_RANK,
        prop::collection::vec(2usize..=7, MAX_RANK),
        1usize..(1 << MAX_RANK),
        rand_access(),
        rand_access(),
        prop::collection::vec(0usize..TILE_CHOICES.len(), MAX_RANK),
        prop::collection::vec(1usize..=2, MAX_RANK),
        0usize..1000,
    )
        .prop_map(|(rank, sizes, mask, acc0, acc1, tiles, chunks, salt)| {
            let mut pw_mask = mask & ((1 << rank) - 1);
            if pw_mask == 0 {
                pw_mask = 1;
            }
            ContractionCase {
                sizes: sizes[..rank].to_vec(),
                pw_mask,
                acc0: acc0.truncated(rank),
                acc1: acc1.truncated(rank),
                tiles: tiles[..rank].iter().map(|&t| TILE_CHOICES[t]).collect(),
                chunks: chunks[..rank].to_vec(),
                salt,
            }
        })
}

fn build_contraction(case: &ContractionCase) -> DslProgram {
    let rank = case.sizes.len();
    let ops: Vec<CombineOp> = (0..rank)
        .map(|d| {
            if case.pw_mask >> d & 1 == 1 {
                CombineOp::pw_add()
            } else {
                CombineOp::cc()
            }
        })
        .collect();
    let preserved: Vec<usize> = (0..rank).filter(|d| case.pw_mask >> d & 1 == 0).collect();
    let mut b = DslBuilder::new("rand_contraction", case.sizes.clone());
    b = if preserved.is_empty() {
        b.out_buffer_with_shape("res", BasicType::F32, vec![1])
            .out_access(
                "res",
                IndexFn::affine(vec![AffineExpr::new(vec![0; rank], 0)]),
            )
    } else {
        b.out_buffer("res", BasicType::F32)
            .out_access("res", IndexFn::select(rank, &preserved))
    };
    b.inp_buffer("x0", BasicType::F32)
        .inp_access("x0", case.acc0.index_fn())
        .inp_buffer("x1", BasicType::F32)
        .inp_access("x1", case.acc1.index_fn())
        .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
        .combine_ops(ops)
        .build()
        .expect("valid random contraction")
}

#[derive(Debug, Clone)]
struct MapCase {
    sizes: Vec<usize>,
    accs: Vec<RandAccess>,
    weights: Vec<f64>,
    tiles: Vec<usize>,
    chunks: Vec<usize>,
    salt: usize,
}

fn map_case() -> impl Strategy<Value = MapCase> {
    (
        1usize..=MAX_RANK,
        prop::collection::vec(2usize..=7, MAX_RANK),
        prop::collection::vec(rand_access(), 1..=3),
        prop::collection::vec(0usize..WEIGHT_CHOICES.len(), 3),
        prop::collection::vec(0usize..TILE_CHOICES.len(), MAX_RANK),
        prop::collection::vec(1usize..=2, MAX_RANK),
        0usize..1000,
    )
        .prop_map(
            |(rank, sizes, accs, weights, tiles, chunks, salt)| MapCase {
                sizes: sizes[..rank].to_vec(),
                accs: accs.iter().map(|a| a.truncated(rank)).collect(),
                weights: weights.iter().map(|&w| WEIGHT_CHOICES[w]).collect(),
                tiles: tiles[..rank].iter().map(|&t| TILE_CHOICES[t]).collect(),
                chunks: chunks[..rank].to_vec(),
                salt,
            },
        )
}

fn build_map(case: &MapCase) -> DslProgram {
    let rank = case.sizes.len();
    let ops: Vec<CombineOp> = (0..rank).map(|_| CombineOp::cc()).collect();
    let weights: Vec<f64> = case
        .accs
        .iter()
        .zip(&case.weights)
        .map(|(_, &w)| w)
        .collect();
    let mut b = DslBuilder::new("rand_map", case.sizes.clone())
        .out_buffer("res", BasicType::F32)
        .out_access("res", IndexFn::identity(rank, rank));
    for (i, acc) in case.accs.iter().enumerate() {
        let name = format!("x{i}");
        b = b
            .inp_buffer(&name, BasicType::F32)
            .inp_access(&name, acc.index_fn());
    }
    b.scalar_function(ScalarFunction::weighted_sum(
        "f_ws",
        ScalarKind::F32,
        &weights,
    ))
    .combine_ops(ops)
    .build()
    .expect("valid random map")
}

/// Build inputs sized for the accesses, fill inexactly.
fn build_inputs(
    prog: &DslProgram,
    accs: &[&RandAccess],
    sizes: &[usize],
    salt: usize,
) -> Vec<Buffer> {
    accs.iter()
        .enumerate()
        .map(|(i, acc)| {
            let decl = &prog.inp_view.buffers[i];
            let mut buf = Buffer::zeros(
                decl.name.clone(),
                BasicType::F32,
                Shape::new(acc.buffer_shape(sizes)),
            );
            inexact_fill(&mut buf, salt.wrapping_add(i * 97));
            buf
        })
        .collect()
}

/// A fixed randomized schedule: given per-dim chunks and tiles. Any pw
/// dim with more than one chunk makes this a split-reduction plan.
fn build_plan(prog: &DslProgram, chunks: &[usize], tiles: &[usize]) -> ExecutionPlan {
    let rank = prog.rank();
    let mut s = Schedule::sequential(rank, DeviceKind::Cpu);
    s.par_chunks = chunks.to_vec();
    s.inner_tiles = tiles.to_vec();
    let reduction_split = prog
        .md_hom
        .reduction_dims()
        .iter()
        .any(|&d| chunks[d].min(prog.md_hom.sizes[d]) > 1);
    if reduction_split {
        s.reduction = ReductionStrategy::Tree;
    }
    s.validate(prog, 1 << 24).expect("valid random schedule");
    ExecutionPlan::build(prog, &s).expect("plan")
}

/// The core assertion: fast kernel output == `vm_exec` output, bitwise,
/// on the same plan, at pool widths 1/2/4.
fn assert_fast_matches_vm(prog: &DslProgram, plan: &ExecutionPlan, inputs: &[Buffer]) {
    let kernel = fast::classify(prog).expect("generated program must be fast-eligible");
    let base = shared_base();
    let vm_pool = base.pool().with_width(1);
    let vm_out = vm_exec::run(prog, plan, inputs, &vm_pool).expect("vm_exec");
    for width in [1usize, 2, 4] {
        let pool = base.pool().with_width(width);
        let fast_out = kernel
            .run(prog, plan, inputs, &pool)
            .expect("fast kernel run")
            .expect("fast kernel must accept this plan");
        assert!(
            bits_eq(&vm_out, &fast_out),
            "fast path diverged from vm_exec at width {width} for {}",
            prog.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_contractions_bit_identical_to_vm(case in contraction_case()) {
        let prog = build_contraction(&case);
        let inputs = build_inputs(&prog, &[&case.acc0, &case.acc1], &case.sizes, case.salt);
        let plan = build_plan(&prog, &case.chunks, &case.tiles);
        assert_fast_matches_vm(&prog, &plan, &inputs);
    }

    #[test]
    fn random_maps_bit_identical_to_vm(case in map_case()) {
        let prog = build_map(&case);
        let accs: Vec<&RandAccess> = case.accs.iter().collect();
        let inputs = build_inputs(&prog, &accs, &case.sizes, case.salt);
        let plan = build_plan(&prog, &case.chunks, &case.tiles);
        assert_fast_matches_vm(&prog, &plan, &inputs);
    }
}

/// The full executor in Auto mode must agree bitwise with ForceVm mode
/// on an eligible program — the end-to-end form of the contract,
/// including the registry, routing, and fallback accounting.
#[test]
fn executor_auto_matches_force_vm_end_to_end() {
    let (i, j, k) = (37, 29, 23);
    let prog = DslBuilder::new("mm_e2e", vec![i, j, k])
        .out_buffer("c", BasicType::F32)
        .out_access("c", IndexFn::select(3, &[0, 1]))
        .inp_buffer("a", BasicType::F32)
        .inp_access("a", IndexFn::select(3, &[0, 2]))
        .inp_buffer("b", BasicType::F32)
        .inp_access("b", IndexFn::select(3, &[2, 1]))
        .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
        .combine_ops(vec![CombineOp::cc(), CombineOp::cc(), CombineOp::pw_add()])
        .build()
        .unwrap();
    let mut a = Buffer::zeros("a", BasicType::F32, Shape::new(vec![i, k]));
    let mut b = Buffer::zeros("b", BasicType::F32, Shape::new(vec![k, j]));
    inexact_fill(&mut a, 5);
    inexact_fill(&mut b, 11);
    let inputs = vec![a, b];
    let schedule = mdh_lowering::mdh_default_schedule(&prog, DeviceKind::Cpu, 4);
    let plan = ExecutionPlan::build(&prog, &schedule).unwrap();
    let base = shared_base();
    let auto = mdh_backend::CpuExecutor::with_pool(base.pool(), 4);
    assert_eq!(auto.path_for(&prog), mdh_backend::ExecPath::Fast);
    let (hits0, _) = fast::registry().counters();
    let fast_out = auto.run_planned(&prog, &schedule, &plan, &inputs).unwrap();
    let (hits1, _) = fast::registry().counters();
    assert!(hits1 > hits0, "eligible program must count a kernel hit");
    let vm = mdh_backend::CpuExecutor::with_pool(base.pool(), 4)
        .with_fast_mode(mdh_backend::FastMode::ForceVm);
    assert_eq!(vm.path_for(&prog), mdh_backend::ExecPath::Vm);
    let vm_out = vm.run_planned(&prog, &schedule, &plan, &inputs).unwrap();
    assert!(bits_eq(&fast_out, &vm_out));
}
