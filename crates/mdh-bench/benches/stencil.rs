//! Criterion benches for the stencil studies (Fig. 4's Gaussian_2D and
//! Jacobi_3D rows): the reduction-free path through the map kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use mdh_apps::{instantiate, Scale, StudyId};
use mdh_backend::cpu::CpuExecutor;
use mdh_baselines::schedulers::{Baseline, NumbaLike};
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::heuristics::mdh_default_schedule;

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn bench_study(c: &mut Criterion, name: &'static str, input_no: usize) {
    let app = instantiate(StudyId { name, input_no }, Scale::Medium).expect("app");
    let exec = CpuExecutor::new(threads()).expect("executor");
    let mdh = mdh_default_schedule(&app.program, DeviceKind::Cpu, threads());
    let numba = NumbaLike { threads: threads() }
        .schedule(&app.program)
        .expect("numba schedule");

    let mut g = c.benchmark_group(format!("{name}_inp{input_no}"));
    g.sample_size(10);
    g.bench_function("mdh", |b| {
        b.iter(|| exec.run(&app.program, &mdh, &app.inputs).unwrap())
    });
    g.bench_function("numba_like", |b| {
        b.iter(|| exec.run(&app.program, &numba, &app.inputs).unwrap())
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_study(c, "Gaussian_2D", 1);
    bench_study(c, "Jacobi_3D", 1);
    bench_study(c, "Jacobi1D", 1);
}

criterion_group!(stencil, benches);
criterion_main!(stencil);
