//! Criterion benches for reduction-operator handling: PRL's custom
//! tuple-valued combine (the operator baselines cannot express) and
//! MBBS's prefix sum, plus the sequential-vs-tree reduction ablation on
//! Dot (the Section 5.2 design point).

use criterion::{criterion_group, criterion_main, Criterion};
use mdh_apps::{instantiate, Scale, StudyId};
use mdh_backend::cpu::CpuExecutor;
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::heuristics::mdh_default_schedule;
use mdh_lowering::schedule::{ReductionStrategy, Schedule};

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn bench_prl(c: &mut Criterion) {
    let app = instantiate(
        StudyId {
            name: "PRL",
            input_no: 1,
        },
        Scale::Medium,
    )
    .expect("prl");
    let exec = CpuExecutor::new(threads()).expect("executor");
    let mdh = mdh_default_schedule(&app.program, DeviceKind::Cpu, threads());
    // the OpenMP treatment: custom reduction stays sequential per thread
    let mut seq = mdh.clone();
    for d in app.program.md_hom.reduction_dims() {
        seq.par_chunks[d] = 1;
        seq.block_threads[d] = 1;
    }
    seq.reduction = ReductionStrategy::Sequential;

    let mut g = c.benchmark_group("PRL_custom_combine");
    g.sample_size(10);
    g.bench_function("mdh_reduction_aware", |b| {
        b.iter(|| exec.run(&app.program, &mdh, &app.inputs).unwrap())
    });
    g.bench_function("sequential_reduction", |b| {
        b.iter(|| exec.run(&app.program, &seq, &app.inputs).unwrap())
    });
    g.finish();
}

fn bench_mbbs(c: &mut Criterion) {
    let app = instantiate(
        StudyId {
            name: "MBBS",
            input_no: 1,
        },
        Scale::Medium,
    )
    .expect("mbbs");
    let exec = CpuExecutor::new(threads()).expect("executor");
    let seq = Schedule::sequential(2, DeviceKind::Cpu);
    let mut par = seq.clone();
    par.par_chunks = vec![threads().max(2), 1];
    par.reduction = ReductionStrategy::Tree;

    let mut g = c.benchmark_group("MBBS_prefix_sum");
    g.sample_size(10);
    g.bench_function("sequential_scan", |b| {
        b.iter(|| exec.run(&app.program, &seq, &app.inputs).unwrap())
    });
    g.bench_function("split_scan", |b| {
        b.iter(|| exec.run(&app.program, &par, &app.inputs).unwrap())
    });
    g.finish();
}

fn bench_dot_reduction(c: &mut Criterion) {
    let app = instantiate(
        StudyId {
            name: "Dot",
            input_no: 1,
        },
        Scale::Medium,
    )
    .expect("dot");
    let exec = CpuExecutor::new(threads()).expect("executor");
    let seq = Schedule::sequential(1, DeviceKind::Cpu);
    let mut tree = seq.clone();
    tree.par_chunks = vec![threads().max(2) * 4];
    tree.reduction = ReductionStrategy::Tree;

    let mut g = c.benchmark_group("Dot_reduction_strategy");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| exec.run(&app.program, &seq, &app.inputs).unwrap())
    });
    g.bench_function("tree", |b| {
        b.iter(|| exec.run(&app.program, &tree, &app.inputs).unwrap())
    });
    g.finish();
}

criterion_group!(reduction_ops, bench_prl, bench_mbbs, bench_dot_reduction);
criterion_main!(reduction_ops);
