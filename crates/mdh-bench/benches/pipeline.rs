//! Criterion benches for the compilation pipeline itself: directive
//! parsing + analysis + DSL construction, scalar-function VM compilation,
//! and the cost models — the overheads a user of the directive pays once
//! per program.

use criterion::{criterion_group, criterion_main, Criterion};
use mdh_apps::{instantiate, Scale, StudyId};
use mdh_backend::cpu_model::{estimate_cpu, CpuParams};
use mdh_backend::gpu::GpuSim;
use mdh_backend::vm::compile_sf;
use mdh_directive::{compile, DirectiveEnv};
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::heuristics::mdh_default_schedule;

const MATVEC: &str = "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
";

fn bench_frontend(c: &mut Criterion) {
    let env = DirectiveEnv::new().size("I", 4096).size("K", 4096);
    c.bench_function("directive_compile_matvec", |b| {
        b.iter(|| compile(MATVEC, &env).unwrap())
    });
}

fn bench_vm_compile(c: &mut Criterion) {
    let app = instantiate(
        StudyId {
            name: "PRL",
            input_no: 1,
        },
        Scale::Small,
    )
    .expect("prl");
    c.bench_function("vm_compile_prl_sf", |b| {
        b.iter(|| compile_sf(&app.program.md_hom.sf).unwrap())
    });
}

fn bench_cost_models(c: &mut Criterion) {
    let app = instantiate(
        StudyId {
            name: "MatMul",
            input_no: 1,
        },
        Scale::Paper,
    )
    .expect("matmul");
    let gpu = GpuSim::a100(1).expect("sim");
    let gsched = mdh_default_schedule(&app.program, DeviceKind::Gpu, 108 * 32);
    c.bench_function("gpu_cost_model_matmul", |b| {
        b.iter(|| gpu.estimate(&app.program, &gsched).unwrap())
    });
    let params = CpuParams::xeon_gold_6140();
    let csched = mdh_default_schedule(&app.program, DeviceKind::Cpu, params.smt_threads);
    c.bench_function("cpu_cost_model_matmul", |b| {
        b.iter(|| estimate_cpu(&app.program, &csched, &params).unwrap())
    });
}

criterion_group!(
    pipeline,
    bench_frontend,
    bench_vm_compile,
    bench_cost_models
);
criterion_main!(pipeline);
