//! Criterion benches for the high-dimensional contractions (Fig. 4's
//! CCSD(T), MCC and MCC_Caps rows).

use criterion::{criterion_group, criterion_main, Criterion};
use mdh_apps::{instantiate, Scale, StudyId};
use mdh_backend::cpu::CpuExecutor;
use mdh_baselines::vendor::VendorCpu;
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::heuristics::mdh_default_schedule;

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn bench_study(c: &mut Criterion, name: &'static str, input_no: usize) {
    let app = instantiate(StudyId { name, input_no }, Scale::Medium).expect("app");
    let exec = CpuExecutor::new(threads()).expect("executor");
    let mdh = mdh_default_schedule(&app.program, DeviceKind::Cpu, threads());
    let vendor = VendorCpu::new(threads());

    let mut g = c.benchmark_group(format!("{name}_inp{input_no}"));
    g.sample_size(10);
    g.bench_function("mdh", |b| {
        b.iter(|| exec.run(&app.program, &mdh, &app.inputs).unwrap())
    });
    if let Some(op) = &app.vendor_op {
        g.bench_function("vendor", |b| {
            b.iter(|| vendor.run(op, &app.inputs).unwrap())
        });
    }
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_study(c, "CCSD(T)", 1);
    bench_study(c, "MCC", 2);
    bench_study(c, "MCC_Caps", 2);
}

criterion_group!(contraction, benches);
criterion_main!(contraction);
