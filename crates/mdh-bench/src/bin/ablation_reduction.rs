//! Ablation: what parallel (tree) reduction is worth — the design choice
//! that distinguishes the MDH directive from every baseline.
//!
//! Runs Dot and PRL with MDH's reduction-aware schedule versus the same
//! schedule with reductions forced sequential (the PPCG/Pluto treatment),
//! on both the CPU (measured) and the GPU model (simulated).
//!
//! Usage: `cargo run --release -p mdh-bench --bin ablation_reduction`

use mdh_apps::{instantiate, Scale, StudyId};
use mdh_backend::cpu::CpuExecutor;
use mdh_backend::gpu::GpuSim;
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::heuristics::mdh_default_schedule;
use mdh_lowering::schedule::ReductionStrategy;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let exec = CpuExecutor::new(threads).expect("executor");
    let sim = GpuSim::a100(2).expect("sim");

    println!("Ablation: parallel (tree) reductions vs sequential reductions\n");
    for (name, input_no) in [("Dot", 1), ("Dot", 2), ("PRL", 1)] {
        let app = instantiate(StudyId { name, input_no }, Scale::Medium).expect("app");
        let par = mdh_default_schedule(&app.program, DeviceKind::Cpu, threads);
        let mut seq = par.clone();
        // forbid reduction splitting, as polyhedral compilers do
        for d in app.program.md_hom.reduction_dims() {
            seq.par_chunks[d] = 1;
            seq.block_threads[d] = 1;
        }
        seq.reduction = ReductionStrategy::Sequential;

        let t_par = exec
            .run_timed(&app.program, &par, &app.inputs)
            .map(|(_, d)| d.as_secs_f64());
        let t_seq = exec
            .run_timed(&app.program, &seq, &app.inputs)
            .map(|(_, d)| d.as_secs_f64());

        println!("{name} (Inp. {input_no}) on CPU ({threads} threads):");
        match (t_par, t_seq) {
            (Ok(p), Ok(s)) => println!(
                "  tree reduction {:.4} s   sequential {:.4} s   -> {:.2}x from reduction-awareness",
                p,
                s,
                s / p
            ),
            (p, s) => println!("  tree: {p:?}  sequential: {s:?}"),
        }

        // GPU model
        let gpar = mdh_default_schedule(&app.program, DeviceKind::Gpu, 108 * 32);
        let mut gseq = gpar.clone();
        for d in app.program.md_hom.reduction_dims() {
            gseq.par_chunks[d] = 1;
            gseq.block_threads[d] = 1;
        }
        gseq.reduction = ReductionStrategy::Sequential;
        let g_par = sim.estimate(&app.program, &gpar);
        let g_seq = sim.estimate(&app.program, &gseq);
        match (g_par, g_seq) {
            (Ok(p), Ok(s)) => println!(
                "  GPU model: tree {:.4} ms   sequential {:.4} ms   -> {:.1}x\n",
                p.time_ms,
                s.time_ms,
                s.time_ms / p.time_ms
            ),
            (p, s) => println!("  GPU model: tree {p:?} sequential {s:?}\n"),
        }
    }
}
