//! Multi-device scaling experiment: how do the Fig. 3 case studies
//! scale across 1/2/4/8 simulated A100s, and what do the cross-device
//! combine trees cost?
//!
//! Usage:
//! ```text
//! cargo run --release -p mdh-bench --bin dist_scaling -- \
//!     [--scale paper|medium|small] [--out BENCH_dist.json]
//! ```
//!
//! Timing comes from [`mdh_dist::DistExecutor::estimate`] — the same
//! analytic pipeline the executor attaches to real runs (whose values
//! are property-tested bit-identical against single-device execution),
//! so the sweep is deterministic and free at paper sizes. Results go to
//! stdout as a table and to `BENCH_dist.json` as machine-readable
//! records: per-device-count hot/cold speedup, combine-tree overhead,
//! and transfer share.
//!
//! The acceptance bars checked at the end: at 4 devices, at least one
//! reduction-heavy kernel (partition strategy `pw`) must show hot
//! speedup > 1.5x with a non-trivial combine tree; and in the
//! `resident` study (repeated launches through an `mdh-mem` pool), the
//! gated repeated-operand workload's warm relaunch must spend < 10% of
//! its time on transfer and land within 2x of the hot (zero-transfer)
//! model.

use mdh_apps::{instantiate, Scale, StudyId};
use mdh_bench::parse_scale;
use mdh_dist::{DevicePool, DistExecutor, DistReport, FaultPlan, HealPolicy, MemLaunchStats};
use mdh_lowering::partition::PartitionStrategy;
use mdh_mem::MemPool;
use std::fmt::Write as _;
use std::sync::Arc;

const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Per-device residency budget for the `resident` study — comfortably
/// larger than any paper-scale working set, so the study isolates
/// residency reuse from eviction pressure (pressure behaviour is
/// covered by the mdh-mem and mdh-dist test suites instead).
const RESIDENT_BUDGET: u64 = 2 << 30;
/// Device counts for the `resident` study (8 adds nothing: the warm
/// path is already transfer-free at 4).
const RESIDENT_COUNTS: [usize; 3] = [1, 2, 4];
/// `healing` study shape: a straggler workload where every
/// `HEALING_STRAGGLER_EVERY`-th launch stretches one rotating device's
/// H2D by `HEALING_SLOW_FACTOR`, run with and without the hedged
/// watchdog. Fixed at Small scale and real (not estimated) launches —
/// faults only fire on real launches — so the study costs milliseconds
/// at any sweep scale.
const HEALING_DEVICES: usize = 4;
const HEALING_LAUNCHES: usize = 24;
const HEALING_STRAGGLER_EVERY: usize = 3;
const HEALING_SLOW_FACTOR: u32 = 40;
const HEALING_HEDGE_MS: f64 = 0.05;

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct Point {
    devices: usize,
    report: DistReport,
    speedup_hot: f64,
    speedup_cold: f64,
}

struct StudyResult {
    name: String,
    sizes: String,
    strategy: &'static str,
    points: Vec<Point>,
}

fn strategy_tag(r: &DistReport) -> &'static str {
    match r.strategy {
        Some(PartitionStrategy::Concat) => "cc",
        Some(PartitionStrategy::Reduce) => "pw",
        Some(PartitionStrategy::Scan) => "ps",
        Some(PartitionStrategy::IndexedReduce) => "rbi",
        None => "none",
    }
}

fn run_study(name: &'static str, scale: Scale) -> Option<StudyResult> {
    let app = match instantiate(StudyId { name, input_no: 1 }, scale) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{name}: {e}");
            return None;
        }
    };
    let mut points = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for devices in DEVICE_COUNTS {
        let dist = DistExecutor::new(DevicePool::gpus(devices)).expect("pool");
        let report = match dist.estimate(&app.program, &app.inputs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name} @ {devices} devices: {e}");
                return None;
            }
        };
        let (hot1, cold1) = *base.get_or_insert((report.hot_ms, report.total_ms));
        points.push(Point {
            devices,
            speedup_hot: hot1 / report.hot_ms,
            speedup_cold: cold1 / report.total_ms,
            report,
        });
    }
    let strategy = strategy_tag(&points[1].report);
    Some(StudyResult {
        name: app.name.clone(),
        sizes: app.sizes_desc.clone(),
        strategy,
        points,
    })
}

/// One device count of the `resident` study: the same launch estimated
/// twice through one pool-attached executor. The first (cold) launch
/// pays full H2D and populates residency; the second (warm) launch
/// re-uploads only what residency could not serve. `hot_ms` is the
/// zero-transfer model from the same report.
struct ResidentPoint {
    devices: usize,
    cold: DistReport,
    warm: DistReport,
}

impl ResidentPoint {
    fn warm_mem(&self) -> MemLaunchStats {
        self.warm.mem.unwrap_or_default()
    }

    fn warm_hot_ratio(&self) -> f64 {
        if self.warm.hot_ms <= 0.0 {
            return 1.0;
        }
        self.warm.total_ms / self.warm.hot_ms
    }
}

struct ResidentResult {
    name: String,
    sizes: String,
    strategy: &'static str,
    /// Whether this study is held to the repeated-operand acceptance
    /// bar. Reduction kernels whose hot path is dominated by combine
    /// and D2H transfer (e.g. Dot) are reported but not gated: the
    /// pool removes input H2D, not output movement.
    gated: bool,
    points: Vec<ResidentPoint>,
}

fn run_resident_study(name: &'static str, scale: Scale, gated: bool) -> Option<ResidentResult> {
    let app = match instantiate(StudyId { name, input_no: 1 }, scale) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{name}: {e}");
            return None;
        }
    };
    let mut points = Vec::new();
    for devices in RESIDENT_COUNTS {
        let dist = DistExecutor::new(DevicePool::gpus(devices))
            .expect("pool")
            .with_mem(Arc::new(MemPool::new(devices, RESIDENT_BUDGET)));
        let launch = || match dist.estimate(&app.program, &app.inputs) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("{name} @ {devices} devices (resident): {e}");
                None
            }
        };
        let cold = launch()?;
        let warm = launch()?;
        points.push(ResidentPoint {
            devices,
            cold,
            warm,
        });
    }
    let strategy = strategy_tag(&points[points.len() - 1].cold);
    Some(ResidentResult {
        name: app.name.clone(),
        sizes: app.sizes_desc.clone(),
        strategy,
        gated,
        points,
    })
}

/// One arm of the `healing` study: per-launch modelled totals plus the
/// cumulative fault counters of the arm's executor.
struct HealingArm {
    totals_ms: Vec<f64>,
    stats: mdh_dist::FaultStats,
}

impl HealingArm {
    /// Nearest-rank percentile of the modelled launch totals.
    fn percentile_ms(&self, p: f64) -> f64 {
        if self.totals_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.totals_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite totals"));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    fn mean_ms(&self) -> f64 {
        if self.totals_ms.is_empty() {
            return 0.0;
        }
        self.totals_ms.iter().sum::<f64>() / self.totals_ms.len() as f64
    }
}

struct HealingResult {
    name: String,
    sizes: String,
    plan: String,
    unhedged: HealingArm,
    hedged: HealingArm,
}

/// The rotating-straggler fault plan shared by both arms: every
/// `HEALING_STRAGGLER_EVERY`-th launch, device `launch % devices` gets a
/// `HEALING_SLOW_FACTOR`× slow H2D link.
fn healing_plan() -> FaultPlan {
    let mut plan = FaultPlan::none();
    for launch in (0..HEALING_LAUNCHES).step_by(HEALING_STRAGGLER_EVERY) {
        plan = plan.slow(launch % HEALING_DEVICES, launch as u64, HEALING_SLOW_FACTOR);
    }
    plan
}

fn run_healing_arm(app: &mdh_apps::AppInstance, heal: Option<HealPolicy>) -> Option<HealingArm> {
    let mut dist =
        DistExecutor::with_faults(DevicePool::gpus(HEALING_DEVICES), healing_plan()).expect("pool");
    if let Some(h) = heal {
        dist = dist.with_healing(h);
    }
    let mut totals_ms = Vec::with_capacity(HEALING_LAUNCHES);
    for launch in 0..HEALING_LAUNCHES {
        let (_, report) = match dist.run(&app.program, &app.inputs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("healing launch {launch}: {e}");
                return None;
            }
        };
        totals_ms.push(report.total_ms);
    }
    Some(HealingArm {
        totals_ms,
        stats: dist.fault_stats(),
    })
}

/// The `healing` study: the same straggler workload through an unhedged
/// and a hedged executor. Real launches (the fault channel only fires on
/// real launches), always at Small scale.
fn run_healing_study(name: &'static str) -> Option<HealingResult> {
    let app = match instantiate(StudyId { name, input_no: 1 }, Scale::Small) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{name}: {e}");
            return None;
        }
    };
    let unhedged = run_healing_arm(&app, None)?;
    let hedged = run_healing_arm(
        &app,
        Some(HealPolicy {
            hedge_ms: HEALING_HEDGE_MS,
            probe_every: 0,
            reinstate_after: 0,
        }),
    )?;
    Some(HealingResult {
        name: app.name.clone(),
        sizes: app.sizes_desc.clone(),
        plan: healing_plan().to_string(),
        unhedged,
        hedged,
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn healing_arm_json(label: &str, arm: &HealingArm) -> String {
    format!(
        "{{\"label\": \"{label}\", \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \
         \"max_ms\": {:.6}, \"mean_ms\": {:.6}, \"hedges\": {}, \"retries\": {}, \
         \"slow_links\": {}}}",
        arm.percentile_ms(50.0),
        arm.percentile_ms(99.0),
        arm.percentile_ms(100.0),
        arm.mean_ms(),
        arm.stats.hedges,
        arm.stats.retries,
        arm.stats.slow_links,
    )
}

fn to_json(
    results: &[StudyResult],
    resident: &[ResidentResult],
    healing: &[HealingResult],
    scale: Scale,
) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"dist_scaling\",");
    let _ = writeln!(j, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(j, "  \"device_counts\": [1, 2, 4, 8],");
    let _ = writeln!(j, "  \"topology\": \"tree\",");
    let _ = writeln!(j, "  \"studies\": [");
    for (si, s) in results.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", json_escape(&s.name));
        let _ = writeln!(j, "      \"sizes\": \"{}\",", json_escape(&s.sizes));
        let _ = writeln!(j, "      \"strategy\": \"{}\",", s.strategy);
        let _ = writeln!(j, "      \"points\": [");
        for (pi, p) in s.points.iter().enumerate() {
            let r = &p.report;
            let _ = write!(
                j,
                "        {{\"devices\": {}, \"hot_ms\": {:.6}, \"cold_ms\": {:.6}, \
                 \"exec_ms\": {:.6}, \"h2d_ms\": {:.6}, \"combine_ms\": {:.6}, \
                 \"combine_steps\": {}, \"d2h_ms\": {:.6}, \"speedup_hot\": {:.4}, \
                 \"speedup_cold\": {:.4}, \"transfer_share\": {:.4}, \
                 \"combine_share\": {:.4}}}",
                p.devices,
                r.hot_ms,
                r.total_ms,
                r.exec_ms,
                r.h2d_ms,
                r.combine.total_ms(),
                r.combine.steps,
                r.d2h_ms,
                p.speedup_hot,
                p.speedup_cold,
                r.transfer_share(),
                r.combine_share()
            );
            let _ = writeln!(j, "{}", if pi + 1 < s.points.len() { "," } else { "" });
        }
        let _ = writeln!(j, "      ]");
        let _ = writeln!(j, "    }}{}", if si + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"resident\": {{");
    let _ = writeln!(j, "    \"budget_bytes\": {RESIDENT_BUDGET},");
    let _ = writeln!(j, "    \"device_counts\": [1, 2, 4],");
    let _ = writeln!(j, "    \"studies\": [");
    for (si, s) in resident.iter().enumerate() {
        let _ = writeln!(j, "      {{");
        let _ = writeln!(j, "        \"name\": \"{}\",", json_escape(&s.name));
        let _ = writeln!(j, "        \"sizes\": \"{}\",", json_escape(&s.sizes));
        let _ = writeln!(j, "        \"strategy\": \"{}\",", s.strategy);
        let _ = writeln!(j, "        \"gated\": {},", s.gated);
        let _ = writeln!(j, "        \"points\": [");
        for (pi, p) in s.points.iter().enumerate() {
            let m = p.warm_mem();
            let _ = write!(
                j,
                "          {{\"devices\": {}, \"cold_ms\": {:.6}, \"warm_ms\": {:.6}, \
                 \"hot_ms\": {:.6}, \"h2d_cold_ms\": {:.6}, \"h2d_warm_ms\": {:.6}, \
                 \"transfer_share_warm\": {:.4}, \"warm_hot_ratio\": {:.4}, \
                 \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
                 \"bytes_uploaded\": {}, \"bytes_avoided\": {}}}",
                p.devices,
                p.cold.total_ms,
                p.warm.total_ms,
                p.warm.hot_ms,
                p.cold.h2d_ms,
                p.warm.h2d_ms,
                p.warm.transfer_share(),
                p.warm_hot_ratio(),
                m.hits,
                m.misses,
                m.evictions,
                m.bytes_uploaded,
                m.bytes_avoided,
            );
            let _ = writeln!(j, "{}", if pi + 1 < s.points.len() { "," } else { "" });
        }
        let _ = writeln!(j, "        ]");
        let _ = writeln!(
            j,
            "      }}{}",
            if si + 1 < resident.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "    ]");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"healing\": {{");
    let _ = writeln!(j, "    \"devices\": {HEALING_DEVICES},");
    let _ = writeln!(j, "    \"launches\": {HEALING_LAUNCHES},");
    let _ = writeln!(j, "    \"straggler_every\": {HEALING_STRAGGLER_EVERY},");
    let _ = writeln!(j, "    \"slow_factor\": {HEALING_SLOW_FACTOR},");
    let _ = writeln!(j, "    \"hedge_ms\": {HEALING_HEDGE_MS},");
    let _ = writeln!(j, "    \"scale\": \"Small\",");
    let _ = writeln!(j, "    \"studies\": [");
    for (si, s) in healing.iter().enumerate() {
        let _ = writeln!(j, "      {{");
        let _ = writeln!(j, "        \"name\": \"{}\",", json_escape(&s.name));
        let _ = writeln!(j, "        \"sizes\": \"{}\",", json_escape(&s.sizes));
        let _ = writeln!(j, "        \"plan\": \"{}\",", json_escape(&s.plan));
        let _ = writeln!(j, "        \"arms\": [");
        let _ = writeln!(
            j,
            "          {},",
            healing_arm_json("unhedged", &s.unhedged)
        );
        let _ = writeln!(j, "          {}", healing_arm_json("hedged", &s.hedged));
        let _ = writeln!(j, "        ]");
        let _ = writeln!(
            j,
            "      }}{}",
            if si + 1 < healing.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "    ]");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

/// In-bin acceptance for the resident study. Every study (gated or
/// not) must show warm no slower than cold and a transfer-free warm
/// H2D phase once residency is populated; gated studies must
/// additionally meet the repeated-operand bar at 4 devices:
/// `transfer_share_warm < 0.1` and warm within 2x of hot.
fn validate_resident(resident: &[ResidentResult]) {
    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("resident acceptance FAILED: {msg}");
        ok = false;
    };
    if !resident.iter().any(|s| s.gated) {
        fail("no gated repeated-operand study ran".into());
    }
    for s in resident {
        for p in &s.points {
            let m = p.warm_mem();
            if p.warm.total_ms > p.cold.total_ms + 1e-9 {
                fail(format!(
                    "{} @ {}: warm {:.4}ms slower than cold {:.4}ms",
                    s.name, p.devices, p.warm.total_ms, p.cold.total_ms
                ));
            }
            if m.hits == 0 {
                fail(format!(
                    "{} @ {}: warm relaunch recorded no residency hits",
                    s.name, p.devices
                ));
            }
            if p.warm.h2d_ms > 1e-9 {
                fail(format!(
                    "{} @ {}: warm H2D {:.6}ms nonzero — residency missed",
                    s.name, p.devices, p.warm.h2d_ms
                ));
            }
        }
        if !s.gated {
            continue;
        }
        let Some(p4) = s.points.iter().find(|p| p.devices == 4) else {
            fail(format!("{}: no 4-device point", s.name));
            continue;
        };
        let share = p4.warm.transfer_share();
        if share >= 0.1 {
            fail(format!(
                "{} @ 4: warm transfer share {:.1}% (need < 10%)",
                s.name,
                share * 100.0
            ));
        }
        let ratio = p4.warm_hot_ratio();
        if ratio > 2.0 {
            fail(format!(
                "{} @ 4: warm/hot ratio {ratio:.2}x (need <= 2x)",
                s.name
            ));
        }
    }
    if ok {
        println!(
            "resident acceptance: warm relaunches transfer-free on inputs; \
             gated workload under 10% transfer share and within 2x of hot — OK"
        );
    } else {
        std::process::exit(1);
    }
}

/// In-bin acceptance for the `healing` study: the hedged watchdog must
/// beat the unhedged executor on modelled tail latency — p99 strictly
/// lower — and the mechanism must actually have engaged (stragglers
/// fired in both arms, hedges fired only in the hedged arm).
fn validate_healing(healing: &[HealingResult]) {
    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("healing acceptance FAILED: {msg}");
        ok = false;
    };
    if healing.is_empty() {
        fail("no healing study ran".into());
    }
    for s in healing {
        if s.unhedged.stats.slow_links == 0 {
            fail(format!("{}: unhedged arm saw no straggler events", s.name));
        }
        if s.hedged.stats.slow_links == 0 {
            fail(format!("{}: hedged arm saw no straggler events", s.name));
        }
        if s.unhedged.stats.hedges != 0 {
            fail(format!(
                "{}: unhedged arm recorded {} hedges (policy disabled)",
                s.name, s.unhedged.stats.hedges
            ));
        }
        if s.hedged.stats.hedges == 0 {
            fail(format!("{}: hedged arm never hedged a straggler", s.name));
        }
        let (u99, h99) = (s.unhedged.percentile_ms(99.0), s.hedged.percentile_ms(99.0));
        if h99 >= u99 {
            fail(format!(
                "{}: hedged p99 {h99:.4}ms not strictly below unhedged p99 {u99:.4}ms",
                s.name
            ));
        }
    }
    if ok {
        let s = &healing[0];
        println!(
            "healing acceptance: hedged p99 {:.4}ms < unhedged p99 {:.4}ms \
             under the rotating-straggler plan — OK",
            s.hedged.percentile_ms(99.0),
            s.unhedged.percentile_ms(99.0)
        );
    } else {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg(&args, "--scale")
        .map(|s| parse_scale(&s))
        .unwrap_or(Scale::Paper);
    let out_path = arg(&args, "--out").unwrap_or_else(|| "BENCH_dist.json".into());

    println!("=== multi-device scaling ({scale:?} scale, tree combine) ===");
    let mut results = Vec::new();
    for name in ["Dot", "MatVec", "MatMul", "Jacobi_3D"] {
        let Some(s) = run_study(name, scale) else {
            continue;
        };
        println!(
            "\n--- {} ({}) — strategy {} ---",
            s.name, s.sizes, s.strategy
        );
        println!(
            "  {:>7}  {:>10}  {:>10}  {:>10}  {:>12}  {:>8}  {:>10}  {:>10}",
            "devices",
            "hot ms",
            "cold ms",
            "exec ms",
            "combine ms",
            "steps",
            "hot spdup",
            "xfer share"
        );
        for p in &s.points {
            let r = &p.report;
            println!(
                "  {:>7}  {:>10.4}  {:>10.4}  {:>10.4}  {:>12.4}  {:>8}  {:>9.2}x  {:>9.0}%",
                p.devices,
                r.hot_ms,
                r.total_ms,
                r.exec_ms,
                r.combine.total_ms(),
                r.combine.steps,
                p.speedup_hot,
                r.transfer_share() * 100.0
            );
        }
        results.push(s);
    }

    // resident re-launch study: the same workload launched twice
    // through one pool-attached executor. MatVec is the gated
    // repeated-operand workload (weight-serving shape: operands
    // re-uploaded every launch without the pool); Dot rides along
    // ungated — its warm time is dominated by combine + D2H, which
    // input residency cannot remove.
    println!("\n=== resident re-launch (mdh-mem pool, 2 GiB/device) ===");
    let mut resident = Vec::new();
    for (name, gated) in [("MatVec", true), ("Dot", false)] {
        let Some(s) = run_resident_study(name, scale, gated) else {
            continue;
        };
        println!(
            "\n--- {} ({}) — strategy {}{} ---",
            s.name,
            s.sizes,
            s.strategy,
            if s.gated { ", gated" } else { "" }
        );
        println!(
            "  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}  {:>9}  {:>6}  {:>6}",
            "devices", "cold ms", "warm ms", "hot ms", "warm xfer", "warm/hot", "hits", "misses"
        );
        for p in &s.points {
            let m = p.warm_mem();
            println!(
                "  {:>7}  {:>10.4}  {:>10.4}  {:>10.4}  {:>9.0}%  {:>8.2}x  {:>6}  {:>6}",
                p.devices,
                p.cold.total_ms,
                p.warm.total_ms,
                p.warm.hot_ms,
                p.warm.transfer_share() * 100.0,
                p.warm_hot_ratio(),
                m.hits,
                m.misses
            );
        }
        resident.push(s);
    }

    // healing study: the same straggler workload through an unhedged
    // and a hedged executor — real launches at Small scale, so the
    // fault channel fires and the study costs milliseconds regardless
    // of the sweep scale
    println!("\n=== self-healing: hedged watchdog vs stragglers (Small, 4 devices) ===");
    let mut healing = Vec::new();
    if let Some(s) = run_healing_study("MatVec") {
        println!(
            "\n--- {} ({}) — {} launches, 1-in-{} straggler x{}, hedge {} ms ---",
            s.name,
            s.sizes,
            HEALING_LAUNCHES,
            HEALING_STRAGGLER_EVERY,
            HEALING_SLOW_FACTOR,
            HEALING_HEDGE_MS
        );
        println!(
            "  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>6}  {:>10}",
            "arm", "p50 ms", "p99 ms", "max ms", "mean ms", "hedges", "slow links"
        );
        for (label, arm) in [("unhedged", &s.unhedged), ("hedged", &s.hedged)] {
            println!(
                "  {:>8}  {:>10.4}  {:>10.4}  {:>10.4}  {:>10.4}  {:>6}  {:>10}",
                label,
                arm.percentile_ms(50.0),
                arm.percentile_ms(99.0),
                arm.percentile_ms(100.0),
                arm.mean_ms(),
                arm.stats.hedges,
                arm.stats.slow_links
            );
        }
        healing.push(s);
    }

    let json = to_json(&results, &resident, &healing, scale);
    std::fs::write(&out_path, &json).expect("write BENCH_dist.json");
    println!("\nwrote {out_path}");

    validate_resident(&resident);
    validate_healing(&healing);

    // acceptance: a reduction-heavy kernel must scale through its
    // combine tree
    let best = results
        .iter()
        .filter(|s| s.strategy == "pw")
        .filter_map(|s| {
            s.points
                .iter()
                .find(|p| p.devices == 4)
                .map(|p| (s.name.as_str(), p.speedup_hot, p.report.combine.steps))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite speedups"));
    match best {
        Some((name, speedup, steps)) if speedup > 1.5 && steps > 0 => {
            println!(
                "acceptance: {name} hot speedup at 4 devices = {speedup:.2}x \
                 through a {steps}-step combine tree (target > 1.5x) — OK"
            );
        }
        Some((name, speedup, steps)) => {
            eprintln!(
                "acceptance FAILED: best reduction-heavy kernel {name} reached \
                 {speedup:.2}x at 4 devices ({steps} combine steps); need > 1.5x"
            );
            std::process::exit(1);
        }
        None => {
            eprintln!("acceptance FAILED: no reduction-partitioned study ran");
            std::process::exit(1);
        }
    }
}
