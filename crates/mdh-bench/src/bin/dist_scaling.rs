//! Multi-device scaling experiment: how do the Fig. 3 case studies
//! scale across 1/2/4/8 simulated A100s, and what do the cross-device
//! combine trees cost?
//!
//! Usage:
//! ```text
//! cargo run --release -p mdh-bench --bin dist_scaling -- \
//!     [--scale paper|medium|small] [--out BENCH_dist.json]
//! ```
//!
//! Timing comes from [`mdh_dist::DistExecutor::estimate`] — the same
//! analytic pipeline the executor attaches to real runs (whose values
//! are property-tested bit-identical against single-device execution),
//! so the sweep is deterministic and free at paper sizes. Results go to
//! stdout as a table and to `BENCH_dist.json` as machine-readable
//! records: per-device-count hot/cold speedup, combine-tree overhead,
//! and transfer share.
//!
//! The acceptance bar checked at the end: at 4 devices, at least one
//! reduction-heavy kernel (partition strategy `pw`) must show hot
//! speedup > 1.5x with a non-trivial combine tree.

use mdh_apps::{instantiate, Scale, StudyId};
use mdh_bench::parse_scale;
use mdh_dist::{DevicePool, DistExecutor, DistReport};
use mdh_lowering::partition::PartitionStrategy;
use std::fmt::Write as _;

const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct Point {
    devices: usize,
    report: DistReport,
    speedup_hot: f64,
    speedup_cold: f64,
}

struct StudyResult {
    name: String,
    sizes: String,
    strategy: &'static str,
    points: Vec<Point>,
}

fn strategy_tag(r: &DistReport) -> &'static str {
    match r.strategy {
        Some(PartitionStrategy::Concat) => "cc",
        Some(PartitionStrategy::Reduce) => "pw",
        Some(PartitionStrategy::Scan) => "ps",
        Some(PartitionStrategy::IndexedReduce) => "rbi",
        None => "none",
    }
}

fn run_study(name: &'static str, scale: Scale) -> Option<StudyResult> {
    let app = match instantiate(StudyId { name, input_no: 1 }, scale) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{name}: {e}");
            return None;
        }
    };
    let mut points = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for devices in DEVICE_COUNTS {
        let dist = DistExecutor::new(DevicePool::gpus(devices)).expect("pool");
        let report = match dist.estimate(&app.program, &app.inputs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name} @ {devices} devices: {e}");
                return None;
            }
        };
        let (hot1, cold1) = *base.get_or_insert((report.hot_ms, report.total_ms));
        points.push(Point {
            devices,
            speedup_hot: hot1 / report.hot_ms,
            speedup_cold: cold1 / report.total_ms,
            report,
        });
    }
    let strategy = strategy_tag(&points[1].report);
    Some(StudyResult {
        name: app.name.clone(),
        sizes: app.sizes_desc.clone(),
        strategy,
        points,
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(results: &[StudyResult], scale: Scale) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"dist_scaling\",");
    let _ = writeln!(j, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(j, "  \"device_counts\": [1, 2, 4, 8],");
    let _ = writeln!(j, "  \"topology\": \"tree\",");
    let _ = writeln!(j, "  \"studies\": [");
    for (si, s) in results.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", json_escape(&s.name));
        let _ = writeln!(j, "      \"sizes\": \"{}\",", json_escape(&s.sizes));
        let _ = writeln!(j, "      \"strategy\": \"{}\",", s.strategy);
        let _ = writeln!(j, "      \"points\": [");
        for (pi, p) in s.points.iter().enumerate() {
            let r = &p.report;
            let _ = write!(
                j,
                "        {{\"devices\": {}, \"hot_ms\": {:.6}, \"cold_ms\": {:.6}, \
                 \"exec_ms\": {:.6}, \"h2d_ms\": {:.6}, \"combine_ms\": {:.6}, \
                 \"combine_steps\": {}, \"d2h_ms\": {:.6}, \"speedup_hot\": {:.4}, \
                 \"speedup_cold\": {:.4}, \"transfer_share\": {:.4}, \
                 \"combine_share\": {:.4}}}",
                p.devices,
                r.hot_ms,
                r.total_ms,
                r.exec_ms,
                r.h2d_ms,
                r.combine.total_ms(),
                r.combine.steps,
                r.d2h_ms,
                p.speedup_hot,
                p.speedup_cold,
                r.transfer_share(),
                r.combine_share()
            );
            let _ = writeln!(j, "{}", if pi + 1 < s.points.len() { "," } else { "" });
        }
        let _ = writeln!(j, "      ]");
        let _ = writeln!(j, "    }}{}", if si + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = arg(&args, "--scale")
        .map(|s| parse_scale(&s))
        .unwrap_or(Scale::Paper);
    let out_path = arg(&args, "--out").unwrap_or_else(|| "BENCH_dist.json".into());

    println!("=== multi-device scaling ({scale:?} scale, tree combine) ===");
    let mut results = Vec::new();
    for name in ["Dot", "MatVec", "MatMul", "Jacobi_3D"] {
        let Some(s) = run_study(name, scale) else {
            continue;
        };
        println!(
            "\n--- {} ({}) — strategy {} ---",
            s.name, s.sizes, s.strategy
        );
        println!(
            "  {:>7}  {:>10}  {:>10}  {:>10}  {:>12}  {:>8}  {:>10}  {:>10}",
            "devices",
            "hot ms",
            "cold ms",
            "exec ms",
            "combine ms",
            "steps",
            "hot spdup",
            "xfer share"
        );
        for p in &s.points {
            let r = &p.report;
            println!(
                "  {:>7}  {:>10.4}  {:>10.4}  {:>10.4}  {:>12.4}  {:>8}  {:>9.2}x  {:>9.0}%",
                p.devices,
                r.hot_ms,
                r.total_ms,
                r.exec_ms,
                r.combine.total_ms(),
                r.combine.steps,
                p.speedup_hot,
                r.transfer_share() * 100.0
            );
        }
        results.push(s);
    }

    let json = to_json(&results, scale);
    std::fs::write(&out_path, &json).expect("write BENCH_dist.json");
    println!("\nwrote {out_path}");

    // acceptance: a reduction-heavy kernel must scale through its
    // combine tree
    let best = results
        .iter()
        .filter(|s| s.strategy == "pw")
        .filter_map(|s| {
            s.points
                .iter()
                .find(|p| p.devices == 4)
                .map(|p| (s.name.as_str(), p.speedup_hot, p.report.combine.steps))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite speedups"));
    match best {
        Some((name, speedup, steps)) if speedup > 1.5 && steps > 0 => {
            println!(
                "acceptance: {name} hot speedup at 4 devices = {speedup:.2}x \
                 through a {steps}-step combine tree (target > 1.5x) — OK"
            );
        }
        Some((name, speedup, steps)) => {
            eprintln!(
                "acceptance FAILED: best reduction-heavy kernel {name} reached \
                 {speedup:.2}x at 4 devices ({steps} combine steps); need > 1.5x"
            );
            std::process::exit(1);
        }
        None => {
            eprintln!("acceptance FAILED: no reduction-partitioned study ran");
            std::process::exit(1);
        }
    }
}
