//! Regenerates Figure 4: speedup of the MDH directive over every
//! baseline, per device and case study.
//!
//! Usage:
//! ```text
//! cargo run --release -p mdh-bench --bin figure4 -- \
//!     [--device cpu|gpu|both] [--scale paper|medium|small] \
//!     [--studies all|<name>] [--budget N] [--reps N]
//! ```
//!
//! GPU results come from the A100-class cost model (full paper sizes are
//! the default there); CPU results are measured wall time on this host
//! (default scale `medium` so the full sweep finishes in minutes — see
//! EXPERIMENTS.md).

use mdh_apps::{instantiate, Scale};
use mdh_bench::{
    parse_scale, print_study, run_cpu_study, run_gpu_study, select_studies, CpuTiming,
    HarnessConfig,
};
use mdh_lowering::asm::DeviceKind;

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let device = arg(&args, "--device").unwrap_or_else(|| "both".into());
    let filter = arg(&args, "--studies").unwrap_or_else(|| "all".into());
    let mut cfg = HarnessConfig::default();
    if let Some(b) = arg(&args, "--budget").and_then(|s| s.parse().ok()) {
        cfg.mdh_budget = b;
        cfg.baseline_budget = (b / 3).max(1);
    }
    if let Some(r) = arg(&args, "--reps").and_then(|s| s.parse().ok()) {
        cfg.reps = r;
    }
    let cpu_timing = if args.iter().any(|a| a == "--measured") {
        CpuTiming::Measured
    } else {
        CpuTiming::Model
    };

    let studies = select_studies(&filter);
    if studies.is_empty() {
        eprintln!("no studies match '{filter}'");
        std::process::exit(1);
    }

    let devices: Vec<DeviceKind> = match device.as_str() {
        "cpu" => vec![DeviceKind::Cpu],
        "gpu" => vec![DeviceKind::Gpu],
        _ => vec![DeviceKind::Gpu, DeviceKind::Cpu],
    };

    for dev in devices {
        // GPU timing is analytic: paper sizes by default. CPU timing is
        // measured: medium sizes by default.
        let default_scale = match (dev, cpu_timing) {
            (DeviceKind::Gpu, _) => Scale::Paper,
            (DeviceKind::Cpu, CpuTiming::Model) => Scale::Paper,
            (DeviceKind::Cpu, CpuTiming::Measured) => Scale::Medium,
        };
        let scale = arg(&args, "--scale")
            .map(|s| parse_scale(&s))
            .unwrap_or(default_scale);
        println!(
            "\n=== Figure 4 ({dev}) — scale {scale:?}, MDH budget {} evals ===",
            cfg.mdh_budget
        );
        let unit = match (dev, cpu_timing) {
            (DeviceKind::Gpu, _) => "ms(sim)",
            (DeviceKind::Cpu, CpuTiming::Model) => "ms(model)",
            (DeviceKind::Cpu, CpuTiming::Measured) => "s",
        };
        for &id in &studies {
            let app = match instantiate(id, scale) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{} (Inp. {}): {e}", id.name, id.input_no);
                    continue;
                }
            };
            let res = match dev {
                DeviceKind::Gpu => run_gpu_study(&app, &cfg),
                DeviceKind::Cpu => run_cpu_study(&app, &cfg, cpu_timing),
            };
            print_study(&res, unit);
        }
    }
}
