//! Serving-scale benchmark: pipelined multiplexed transport, per-tenant
//! weighted-fair admission, and consistent-hash runtime shards.
//!
//! Usage:
//! ```text
//! cargo run --release -p mdh-bench --bin serve_bench -- \
//!     [--quick] [--out BENCH_serve.json]
//! ```
//!
//! Three studies, each against a real in-process `serve_opts` server
//! driven over its public client API:
//!
//! * **pipeline** — the same request stream once as N one-command
//!   connections (connect, SUBMIT, read, close — the pre-pipelining
//!   client) and once as N `id=`-tagged frames on a single PIPE
//!   connection. The full run gates pipelined throughput at >= 3x the
//!   sequential baseline; both reply sets must carry identical result
//!   checksums.
//! * **fairness** — one flooding tenant fires a 64-request burst into a
//!   quota-4 queue while three polite tenants trickle sequential
//!   requests. Every polite request must complete (no starvation), the
//!   flooder must still be served, and the surplus burst must shed.
//! * **identity** — the same 8-plan-key workload through `--shards`
//!   fronts of 1, 2, and 4 shards over the unix transport, plus a
//!   2-shard front over TCP: result checksums must be bit-identical
//!   everywhere, and the hash-ring fingerprints and per-shard route
//!   counts must replay exactly.
//!
//! `SERVE_CHECK` lines carry only deterministic fields (checksum hashes,
//! ring fingerprints, route counts, completion booleans) so CI runs the
//! bin twice and diffs them; timings live only in the JSON. `--quick`
//! shrinks the pipeline stream and skips the timing gate (determinism +
//! schema stay enforced), mirroring `exec_throughput`.

use mdh_lowering::DeviceKind;
use mdh_runtime::server::{
    client_shutdown_addr, client_stats_json_addr, client_submit_opts, client_submit_pipelined,
    serve_opts, DEFAULT_VNODES,
};
use mdh_runtime::{HashRing, RuntimeConfig, ServeOptions, ServerAddr, SubmitClientOpts};
use std::fmt::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The workload every study submits: a dot product over `N` (bound per
/// request), small enough that transport and scheduling — the things
/// under test — dominate the wall clock.
const DOT: &str = "\
@mdh( out( res = Buffer[fp32] ),
      inp( x = Buffer[fp32], y = Buffer[fp32] ),
      combine_ops( pw(add) ) )
def dot(res, x, y):
    for k in range(N):
        res[0] = x[k] * y[k]
";

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic digest of a reply set: the sorted multiset of
/// `checksum=` tokens from `ok` lines. Timings and hit/source flags stay
/// out of the hash.
fn checksum_hash(lines: &[String]) -> u64 {
    let mut sums: Vec<&str> = lines
        .iter()
        .filter(|l| l.starts_with("ok "))
        .filter_map(|l| l.split_whitespace().find(|t| t.starts_with("checksum=")))
        .collect();
    sums.sort_unstable();
    fnv1a(sums.join("\n").as_bytes())
}

fn ok_count(lines: &[String]) -> usize {
    lines.iter().filter(|l| l.starts_with("ok ")).count()
}

fn err_count(lines: &[String]) -> usize {
    lines.iter().filter(|l| l.starts_with("err ")).count()
}

/// Spawn a server thread and wait until its listener accepts.
struct Server {
    addr: ServerAddr,
    thread: std::thread::JoinHandle<()>,
}

impl Server {
    fn start(opts: ServeOptions, config: RuntimeConfig) -> Server {
        let addr = match &opts.tcp {
            Some(tcp) => ServerAddr::Tcp(tcp.clone()),
            None => ServerAddr::Unix(opts.unix.clone().expect("a listener")),
        };
        let unix = opts.unix.clone();
        let thread = std::thread::spawn(move || {
            serve_opts(opts, config).expect("serve_opts");
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let up = match &addr {
                ServerAddr::Unix(p) => p.exists(),
                ServerAddr::Tcp(a) => TcpStream::connect(a.as_str()).is_ok(),
            };
            if up {
                // the unix listener binds first; when we are probing tcp,
                // also wait for the socket file so both transports are live
                if unix.as_ref().is_none_or(|p| p.exists()) {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "server did not come up");
            std::thread::sleep(Duration::from_millis(2));
        }
        Server { addr, thread }
    }

    fn stop(self) {
        client_shutdown_addr(&self.addr).expect("shutdown");
        self.thread.join().expect("server thread");
    }
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdh-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A free TCP port: bind to :0, note the port, release it. The tiny
/// window before the server rebinds is acceptable for a benchmark.
fn free_tcp_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = l.local_addr().expect("local addr");
    format!("127.0.0.1:{}", addr.port())
}

fn opts_for(tenant: Option<&str>, n: i64) -> SubmitClientOpts {
    SubmitClientOpts {
        bindings: vec![("N".to_string(), n)],
        deadline_ms: None,
        grad: false,
        tenant: tenant.map(str::to_string),
    }
}

/// Pull `"key":<u64>` out of the server's single-line stats JSON.
fn stats_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat).map(|i| i + pat.len()).unwrap_or(0);
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Pull a nested `"key":{...}` object (single-line, no nested braces)
/// out of the stats JSON, verbatim.
fn stats_obj(json: &str, key: &str) -> String {
    let pat = format!("\"{key}\":{{");
    let Some(start) = json.find(&pat).map(|i| i + pat.len() - 1) else {
        return "{}".to_string();
    };
    let end = json[start..]
        .find('}')
        .map_or(json.len(), |i| start + i + 1);
    json[start..end].to_string()
}

fn server_stats_json(addr: &ServerAddr) -> String {
    let lines = client_stats_json_addr(addr).expect("stats json");
    lines
        .iter()
        .find_map(|l| l.strip_prefix("stats-json "))
        .expect("stats-json line")
        .to_string()
}

// ---------------------------------------------------------------------------
// study 1: pipelined vs one-command-per-connection throughput
// ---------------------------------------------------------------------------

struct PipelineResult {
    count: usize,
    depth: usize,
    sequential_ms: f64,
    pipelined_ms: f64,
    speedup: f64,
    seq_hash: u64,
    pipe_hash: u64,
    hash_match: bool,
    pipelined_connections: u64,
    pipelined_frames: u64,
}

fn run_pipeline_study(dir: &Path, count: usize, reps: usize) -> PipelineResult {
    let config = RuntimeConfig {
        workers: 2,
        exec_threads: 2,
        ..RuntimeConfig::default()
    };
    let depth = config.pipeline_depth;
    let server = Server::start(
        ServeOptions {
            unix: Some(dir.join("pipeline.sock")),
            ..ServeOptions::default()
        },
        config,
    );
    let addr = server.addr.clone();
    let opts = opts_for(None, 256);

    // warm the plan cache so both arms measure steady-state serving
    client_submit_opts(&addr, DOT, DeviceKind::Cpu, 1, &opts).expect("warmup");

    // Interleaved best-of-`reps` timing: one-core containers schedule
    // noisily, and alternating the arms keeps a background hiccup from
    // landing entirely on one of them.
    let mut sequential_ms = f64::INFINITY;
    let mut pipelined_ms = f64::INFINITY;
    let mut seq_lines = Vec::new();
    let mut pipe_lines = Vec::new();
    for _ in 0..reps {
        // arm A: the pre-pipelining client — one connection per command
        let t0 = Instant::now();
        let mut lines = Vec::with_capacity(count * 2);
        for _ in 0..count {
            lines.extend(client_submit_opts(&addr, DOT, DeviceKind::Cpu, 1, &opts).expect("seq"));
        }
        sequential_ms = sequential_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        seq_lines = lines;

        // arm B: the same stream as frames on one pipelined connection
        let t0 = Instant::now();
        let lines =
            client_submit_pipelined(&addr, DOT, DeviceKind::Cpu, count, &opts).expect("pipelined");
        pipelined_ms = pipelined_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        pipe_lines = lines;
    }

    let stats = server_stats_json(&addr);
    server.stop();

    let seq_hash = checksum_hash(&seq_lines);
    let pipe_hash = checksum_hash(&pipe_lines);
    assert_eq!(
        ok_count(&seq_lines),
        count,
        "sequential arm dropped replies"
    );
    assert_eq!(
        ok_count(&pipe_lines),
        count,
        "pipelined arm dropped replies"
    );
    assert_eq!(
        seq_hash, pipe_hash,
        "pipelined replies must be checksum-identical to sequential"
    );
    PipelineResult {
        count,
        depth,
        sequential_ms,
        pipelined_ms,
        speedup: sequential_ms / pipelined_ms,
        seq_hash,
        pipe_hash,
        hash_match: seq_hash == pipe_hash,
        pipelined_connections: stats_u64(&stats, "pipelined_connections"),
        pipelined_frames: stats_u64(&stats, "pipelined_frames"),
    }
}

// ---------------------------------------------------------------------------
// study 2: K-tenant flood fairness under quota + DRR
// ---------------------------------------------------------------------------

const POLITE_TENANTS: [&str; 3] = ["polite-a", "polite-b", "polite-c"];
const POLITE_REQUESTS: usize = 24;
const FLOOD_BURST: usize = 64;
const TENANT_QUOTA: usize = 4;

struct FairnessResult {
    polite_ok: usize,
    polite_expected: usize,
    noisy_ok: usize,
    noisy_err: usize,
    tenant_shed: u64,
    shed_requests: u64,
    tenant_dispatches: String,
    checksum_hash: u64,
}

fn run_fairness_study(dir: &Path) -> FairnessResult {
    let config = RuntimeConfig {
        workers: 2,
        exec_threads: 2,
        tenant_quota: TENANT_QUOTA,
        tenant_weights: vec![("noisy".to_string(), 1), ("polite-a".to_string(), 2)],
        ..RuntimeConfig::default()
    };
    let server = Server::start(
        ServeOptions {
            unix: Some(dir.join("fairness.sock")),
            ..ServeOptions::default()
        },
        config,
    );
    let addr = server.addr.clone();

    // warm the plan cache so the flood races dispatch, not lowering
    client_submit_opts(&addr, DOT, DeviceKind::Cpu, 1, &opts_for(None, 256)).expect("warmup");

    // the flooder: one SUBMIT frame carrying a 64-request burst — the
    // server enqueues the whole burst back-to-back, so a quota of 4
    // must shed most of it no matter how fast the workers drain
    let flood_addr = addr.clone();
    let flood = std::thread::spawn(move || {
        client_submit_opts(
            &flood_addr,
            DOT,
            DeviceKind::Cpu,
            FLOOD_BURST,
            &opts_for(Some("noisy"), 256),
        )
        .expect("flood submit")
    });

    // the polite tenants: sequential single requests, depth <= 1 each
    let polite: Vec<_> = POLITE_TENANTS
        .iter()
        .map(|tenant| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut lines = Vec::new();
                for _ in 0..POLITE_REQUESTS {
                    lines.extend(
                        client_submit_opts(
                            &addr,
                            DOT,
                            DeviceKind::Cpu,
                            1,
                            &opts_for(Some(tenant), 256),
                        )
                        .expect("polite submit"),
                    );
                }
                lines
            })
        })
        .collect();

    let noisy_lines = flood.join().expect("flood thread");
    let mut polite_lines = Vec::new();
    for t in polite {
        polite_lines.extend(t.join().expect("polite thread"));
    }
    let stats = server_stats_json(&addr);
    server.stop();

    let polite_ok = ok_count(&polite_lines);
    let noisy_ok = ok_count(&noisy_lines);
    let noisy_err = err_count(&noisy_lines);
    assert_eq!(
        noisy_ok + noisy_err,
        FLOOD_BURST,
        "flood replies went missing"
    );
    FairnessResult {
        polite_ok,
        polite_expected: POLITE_TENANTS.len() * POLITE_REQUESTS,
        noisy_ok,
        noisy_err,
        tenant_shed: stats_u64(&stats, "tenant_shed"),
        shed_requests: stats_u64(&stats, "shed_requests"),
        tenant_dispatches: stats_obj(&stats, "tenant_dispatches"),
        checksum_hash: checksum_hash(&polite_lines),
    }
}

// ---------------------------------------------------------------------------
// study 3: bit-identity across shard counts and transports
// ---------------------------------------------------------------------------

/// Distinct `N` bindings — 8 distinct plan keys, so a multi-shard front
/// actually spreads the workload across the ring.
const IDENTITY_KEYS: [i64; 8] = [128, 192, 256, 320, 384, 448, 512, 576];
const IDENTITY_REPEAT: usize = 3;

struct IdentityPoint {
    shards: usize,
    transport: &'static str,
    fingerprint: u64,
    hash: u64,
    routes: String,
}

fn run_identity_point(dir: &Path, shards: usize, tcp: bool) -> IdentityPoint {
    let transport = if tcp { "tcp" } else { "unix" };
    let config = RuntimeConfig {
        workers: 1,
        exec_threads: 2,
        ..RuntimeConfig::default()
    };
    let server = Server::start(
        ServeOptions {
            unix: Some(dir.join(format!("identity-{shards}-{transport}.sock"))),
            tcp: tcp.then(free_tcp_addr),
            shards,
            ..ServeOptions::default()
        },
        config,
    );
    let addr = server.addr.clone();
    let mut lines = Vec::new();
    for n in IDENTITY_KEYS {
        lines.extend(
            client_submit_opts(
                &addr,
                DOT,
                DeviceKind::Cpu,
                IDENTITY_REPEAT,
                &opts_for(None, n),
            )
            .expect("identity submit"),
        );
    }
    let stats = server_stats_json(&addr);
    server.stop();
    assert_eq!(
        ok_count(&lines),
        IDENTITY_KEYS.len() * IDENTITY_REPEAT,
        "identity workload dropped replies (shards={shards}, {transport})"
    );
    IdentityPoint {
        shards,
        transport,
        fingerprint: HashRing::new(shards, DEFAULT_VNODES).fingerprint(),
        hash: checksum_hash(&lines),
        routes: stats_obj(&stats, "shard_routes"),
    }
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

fn to_json(
    quick: bool,
    hw: usize,
    pipe: &PipelineResult,
    fair: &FairnessResult,
    identity: &[IdentityPoint],
    bit_identical: bool,
    pass: bool,
) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"serve_bench\",");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"hw_threads\": {hw},");
    let _ = writeln!(j, "  \"pipeline\": {{");
    let _ = writeln!(j, "    \"count\": {},", pipe.count);
    let _ = writeln!(j, "    \"depth\": {},", pipe.depth);
    let _ = writeln!(j, "    \"sequential_ms\": {:.4},", pipe.sequential_ms);
    let _ = writeln!(j, "    \"pipelined_ms\": {:.4},", pipe.pipelined_ms);
    let _ = writeln!(j, "    \"speedup\": {:.4},", pipe.speedup);
    let _ = writeln!(j, "    \"seq_hash\": \"{:#018x}\",", pipe.seq_hash);
    let _ = writeln!(j, "    \"pipe_hash\": \"{:#018x}\",", pipe.pipe_hash);
    let _ = writeln!(j, "    \"hash_match\": {},", pipe.hash_match);
    let _ = writeln!(
        j,
        "    \"pipelined_connections\": {},",
        pipe.pipelined_connections
    );
    let _ = writeln!(j, "    \"pipelined_frames\": {}", pipe.pipelined_frames);
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"fairness\": {{");
    let _ = writeln!(j, "    \"tenant_quota\": {TENANT_QUOTA},");
    let _ = writeln!(j, "    \"flood_burst\": {FLOOD_BURST},");
    let _ = writeln!(j, "    \"polite_ok\": {},", fair.polite_ok);
    let _ = writeln!(j, "    \"polite_expected\": {},", fair.polite_expected);
    let _ = writeln!(j, "    \"noisy_ok\": {},", fair.noisy_ok);
    let _ = writeln!(j, "    \"noisy_err\": {},", fair.noisy_err);
    let _ = writeln!(j, "    \"tenant_shed\": {},", fair.tenant_shed);
    let _ = writeln!(j, "    \"shed_requests\": {},", fair.shed_requests);
    let _ = writeln!(j, "    \"tenant_dispatches\": {},", fair.tenant_dispatches);
    let _ = writeln!(j, "    \"checksum_hash\": \"{:#018x}\"", fair.checksum_hash);
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"identity\": [");
    for (i, p) in identity.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"shards\": {}, \"transport\": \"{}\", \
             \"ring_fingerprint\": \"{:#018x}\", \"hash\": \"{:#018x}\", \
             \"routes\": {}}}",
            p.shards, p.transport, p.fingerprint, p.hash, p.routes
        );
        let _ = writeln!(j, "{}", if i + 1 < identity.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"acceptance\": {{");
    let _ = writeln!(j, "    \"pipeline_speedup\": {:.4},", pipe.speedup);
    let _ = writeln!(j, "    \"pipeline_speedup_target\": 3.0,");
    let _ = writeln!(
        j,
        "    \"no_starvation\": {},",
        fair.polite_ok == fair.polite_expected && fair.noisy_ok > 0
    );
    let _ = writeln!(j, "    \"flood_shed\": {},", fair.tenant_shed > 0);
    let _ = writeln!(j, "    \"bit_identical\": {bit_identical},");
    let _ = writeln!(j, "    \"pass\": {pass}");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = arg(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let dir = scratch_dir();

    println!("=== serve bench (hw_threads={hw}, quick={quick}) ===");

    // --- study 1: pipelined vs one-command-per-connection -----------------
    let count = if quick { 32 } else { 256 };
    let reps = if quick { 1 } else { 5 };
    let pipe = run_pipeline_study(&dir, count, reps);
    println!(
        "pipeline: {} requests — sequential {:.1} ms, pipelined {:.1} ms \
         ({:.2}x), depth {}",
        pipe.count, pipe.sequential_ms, pipe.pipelined_ms, pipe.speedup, pipe.depth
    );
    println!(
        "SERVE_CHECK pipeline count={} seq_hash={:#018x} pipe_hash={:#018x} \
         match={} frames={}",
        pipe.count, pipe.seq_hash, pipe.pipe_hash, pipe.hash_match, pipe.pipelined_frames
    );

    // --- study 2: tenant flood fairness -----------------------------------
    let fair = run_fairness_study(&dir);
    println!(
        "fairness: polite {}/{} ok, noisy {} ok + {} shed (tenant_shed={})",
        fair.polite_ok, fair.polite_expected, fair.noisy_ok, fair.noisy_err, fair.tenant_shed
    );
    println!(
        "SERVE_CHECK fairness polite_ok={}/{} noisy_answered={}/{} \
         flood_shed={} polite_hash={:#018x}",
        fair.polite_ok,
        fair.polite_expected,
        fair.noisy_ok + fair.noisy_err,
        FLOOD_BURST,
        fair.tenant_shed > 0,
        fair.checksum_hash
    );
    assert_eq!(
        fair.polite_ok, fair.polite_expected,
        "a polite tenant starved behind the flood"
    );
    assert!(
        fair.noisy_ok > 0,
        "the flooding tenant must still be served"
    );
    assert!(fair.tenant_shed > 0, "the flood burst must shed at quota");

    // --- study 3: bit-identity across shards and transports ---------------
    let mut identity = Vec::new();
    for shards in [1usize, 2, 4] {
        identity.push(run_identity_point(&dir, shards, false));
    }
    identity.push(run_identity_point(&dir, 2, true));
    for p in &identity {
        println!(
            "SERVE_CHECK identity shards={} transport={} fingerprint={:#018x} \
             hash={:#018x} routes={}",
            p.shards, p.transport, p.fingerprint, p.hash, p.routes
        );
    }
    let h0 = identity[0].hash;
    let bit_identical = identity.iter().all(|p| p.hash == h0);
    assert!(
        bit_identical,
        "results diverged across shard counts / transports"
    );
    println!(
        "identity: {} points, all checksum-identical",
        identity.len()
    );

    let speedup_ok = quick || pipe.speedup >= 3.0;
    let pass = speedup_ok
        && pipe.hash_match
        && fair.polite_ok == fair.polite_expected
        && fair.noisy_ok > 0
        && fair.tenant_shed > 0
        && bit_identical;

    let json = to_json(quick, hw, &pipe, &fair, &identity, bit_identical, pass);
    for key in [
        "\"experiment\"",
        "\"pipeline\"",
        "\"fairness\"",
        "\"identity\"",
        "\"acceptance\"",
    ] {
        assert!(json.contains(key), "schema self-check: missing {key}");
    }
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);

    if quick {
        println!("acceptance: timing gate skipped in --quick mode (schema + determinism only)");
        return;
    }
    if pass {
        println!(
            "acceptance: pipelined {:.2}x over one-command-per-connection \
             (target >= 3x), no starvation, flood shed, bit-identical across \
             shards {{1,2,4}} and transports — OK",
            pipe.speedup
        );
    } else {
        eprintln!(
            "acceptance FAILED: speedup {:.2}x (need >= 3x) hash_match={} \
             bit_identical={}",
            pipe.speedup, pipe.hash_match, bit_identical
        );
        std::process::exit(1);
    }
}
