//! Ablation: auto-tuning techniques and budgets (the ATF machinery).
//!
//! Tunes the MatMul GPU schedule with each search technique at several
//! evaluation budgets and reports the best simulated time found,
//! alongside the heuristic (untuned) schedule.
//!
//! Usage: `cargo run --release -p mdh-bench --bin ablation_tuning`

use mdh_apps::{instantiate, Scale, StudyId};
use mdh_backend::gpu::GpuSim;
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::heuristics::mdh_default_schedule;
use mdh_tuner::{tune_gpu, Budget, Technique};

fn main() {
    let sim = GpuSim::a100(2).expect("sim");
    println!("Ablation: tuning techniques on MatMul (GPU model)\n");
    for input_no in [1, 2] {
        let app = instantiate(
            StudyId {
                name: "MatMul",
                input_no,
            },
            Scale::Paper,
        )
        .expect("matmul");
        let heuristic = mdh_default_schedule(&app.program, DeviceKind::Gpu, 108 * 32);
        let h_cost = sim
            .estimate(&app.program, &heuristic)
            .map(|r| r.time_ms)
            .unwrap_or(f64::INFINITY);
        println!("MatMul Inp. {input_no}: heuristic schedule {h_cost:.4} ms");
        for technique in [
            Technique::Random,
            Technique::HillClimb,
            Technique::Annealing,
        ] {
            for budget in [25, 100, 400] {
                let tuned = tune_gpu(&sim, &app.program, technique, Budget::evals(budget));
                println!(
                    "  {technique:<10?} budget {budget:>4}: best {:>10.4} ms  ({:.2}x vs heuristic)",
                    tuned.cost,
                    h_cost / tuned.cost
                );
            }
        }
        println!();
    }
}
