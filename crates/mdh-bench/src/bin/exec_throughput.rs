//! Execution-engine throughput sweep: the Fig. 3 case studies over
//! thread counts {1, 2, 4, N} on the persistent work-stealing pool.
//!
//! Usage:
//! ```text
//! cargo run --release -p mdh-bench --bin exec_throughput -- \
//!     [--scale paper|medium|small] [--quick] [--out BENCH_exec.json]
//! ```
//!
//! One physical pool is built once (sized for the largest thread count);
//! every sweep point runs through a width-scoped handle of that pool, so
//! the per-point `threads_spawned_during` counters demonstrate that no OS
//! threads are created after warmup. One execution plan is built per
//! study (for the largest width — the serving scenario, where the plan
//! cache hands the same compiled plan to every pool width) and pinned
//! across all sweep points, so per-point output hashes are directly
//! comparable: the bin asserts they are bit-identical across thread
//! counts. Studies whose paper sizes exceed the per-run flop budget
//! (MCC-class convolutions are ~1e13 flops) fall back to a smaller
//! scale; the fallback prints a `SCALE_FALLBACK` marker line and records
//! its reason in the JSON as `scale_fallback_reason`.
//!
//! GFLOP/s uses the algorithmic flop count `points x sf_flops_estimate`,
//! the same estimate the GPU simulator charges — an approximation (it
//! counts the scalar-function body once per point), not a hardware
//! counter. Scaling efficiency is `speedup / min(threads, hw_threads)`:
//! on a 1-hardware-thread container a 4-thread sweep point cannot exceed
//! 1x raw speedup, so efficiency normalises by the parallelism the host
//! can actually deliver while the raw speedup stays in the JSON.
//!
//! `EXEC_CHECK` lines carry only deterministic fields (FNV-1a output
//! hashes, spawn/region counters) so CI can run the bin twice and diff
//! them; timings live only in the table and the JSON.
//!
//! The `fast_vs_vm` study re-runs every pinned plan through a
//! registry-disabled (`FastMode::ForceVm`) executor and compares output
//! hashes: on a kernel hit the fast path must be bit-identical to the
//! VM, and a mismatch aborts the bench. Which studies hit a kernel (and
//! each fallback's reason) lands in the JSON next to both engines'
//! GFLOP/s.

use mdh_apps::{instantiate, AppInstance, Scale, StudyId, FIG3_STUDIES};
use mdh_backend::cpu::{CpuExecutor, ExecPath, FastMode};
use mdh_backend::fast;
use mdh_bench::parse_scale;
use mdh_core::buffer::{Buffer, BufferData, Column};
use mdh_lowering::{mdh_default_schedule, DeviceKind, ExecutionPlan, Schedule};
use std::fmt::Write as _;
use std::time::Instant;

/// Per-run algorithmic flop budget before a study falls back to a
/// smaller scale. Paper MatMul (2 * 1024^3 ~ 2.1e9) must fit.
const FLOP_BUDGET: f64 = 4.0e9;
/// Keep timing a sweep point until this much time has accumulated...
const MIN_TOTAL_S: f64 = 0.25;
/// ...or this many timed iterations have run, whichever comes first.
const MAX_ITERS: usize = 5;
const HOT_LOOP_ITERS: usize = 100;

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// FNV-1a over the raw bit patterns of a buffer set. Bit-identical
/// outputs (the pool's determinism guarantee) give identical hashes.
fn fnv_eat(h: &mut u64, bytes: &[u8]) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        *h = (*h ^ b as u64).wrapping_mul(PRIME);
    }
}

fn fnv_column(h: &mut u64, c: &Column) {
    match c {
        Column::F32(v) => v
            .iter()
            .for_each(|x| fnv_eat(h, &x.to_bits().to_le_bytes())),
        Column::F64(v) => v
            .iter()
            .for_each(|x| fnv_eat(h, &x.to_bits().to_le_bytes())),
        Column::I32(v) => v.iter().for_each(|x| fnv_eat(h, &x.to_le_bytes())),
        Column::I64(v) => v.iter().for_each(|x| fnv_eat(h, &x.to_le_bytes())),
        Column::Bool(v) => v.iter().for_each(|x| fnv_eat(h, &[*x as u8])),
        Column::Char(v) => fnv_eat(h, v),
    }
}

fn fnv1a(bufs: &[Buffer]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bufs {
        match &b.data {
            BufferData::F32(v) => v
                .iter()
                .for_each(|x| fnv_eat(&mut h, &x.to_bits().to_le_bytes())),
            BufferData::F64(v) => v
                .iter()
                .for_each(|x| fnv_eat(&mut h, &x.to_bits().to_le_bytes())),
            BufferData::I32(v) => v.iter().for_each(|x| fnv_eat(&mut h, &x.to_le_bytes())),
            BufferData::I64(v) => v.iter().for_each(|x| fnv_eat(&mut h, &x.to_le_bytes())),
            BufferData::Bool(v) => v.iter().for_each(|x| fnv_eat(&mut h, &[*x as u8])),
            BufferData::Char(v) => fnv_eat(&mut h, v),
            BufferData::Record(r) => r.columns.iter().for_each(|c| fnv_column(&mut h, c)),
        }
    }
    h
}

fn flops_per_run(app: &AppInstance) -> f64 {
    let per_point = app.program.md_hom.sf.flops_estimate().max(1);
    app.program.md_hom.points() as f64 * per_point as f64
}

/// Instantiate at the requested scale, stepping down while the study
/// blows the per-run flop budget. A step-down returns the reason (which
/// scale was rejected and by how much) so callers can surface it instead
/// of silently shrinking the study.
fn instantiate_within_budget(
    name: &'static str,
    requested: Scale,
    budget: f64,
) -> Option<(AppInstance, Scale, Option<String>)> {
    let ladder: &[Scale] = match requested {
        Scale::Paper => &[Scale::Paper, Scale::Medium, Scale::Small],
        Scale::Medium => &[Scale::Medium, Scale::Small],
        Scale::Small => &[Scale::Small],
    };
    let mut reason = None;
    for &scale in ladder {
        let app = match instantiate(StudyId { name, input_no: 1 }, scale) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{name} @ {scale:?}: {e}");
                return None;
            }
        };
        let flops = flops_per_run(&app);
        if flops <= budget || scale == Scale::Small {
            return Some((app, scale, reason));
        }
        reason = Some(format!(
            "{flops:.3e} flops/run at {scale:?} exceeds budget {budget:.1e}"
        ));
    }
    None
}

/// Loud marker for a scale step-down (deterministic: flop counts and the
/// budget are fixed, so CI's run-twice diff still passes).
fn announce_fallback(study: &str, requested: Scale, used: Scale, reason: &Option<String>) {
    if let Some(reason) = reason {
        println!(
            "SCALE_FALLBACK study=\"{study}\" requested={requested:?} used={used:?} \
             reason=\"{reason}\""
        );
    }
}

struct Point {
    threads: usize,
    iters: usize,
    best_ms: f64,
    gflops: f64,
    speedup: f64,
    efficiency: f64,
    threads_spawned_during: u64,
    regions_per_run: u64,
    output_hash: u64,
}

struct StudyRow {
    name: String,
    sizes: String,
    scale_used: Scale,
    scale_fallback_reason: Option<String>,
    path: String,
    flops: f64,
    plan_threads: usize,
    points: Vec<Point>,
}

/// One study's fast-path-vs-VM comparison, on the same pinned plan:
/// whether the registry compiled a kernel, why not if it didn't, and
/// the throughput + output-hash pair for both engines.
struct FastVsVm {
    name: String,
    kernel_hit: bool,
    fallback_reason: Option<String>,
    fast_gflops: f64,
    vm_gflops: f64,
    fast_hash: u64,
    vm_hash: u64,
    hash_match: bool,
}

struct HotLoop {
    app: String,
    scale_used: Scale,
    scale_fallback_reason: Option<String>,
    threads: usize,
    iterations: usize,
    threads_spawned_during: u64,
    regions_executed: u64,
    total_ms: f64,
}

fn time_point(
    exec: &CpuExecutor,
    app: &AppInstance,
    schedule: &Schedule,
    plan: &ExecutionPlan,
    threads: usize,
    quick: bool,
    flops: f64,
) -> Point {
    let spawn0 = rayon::total_threads_spawned();
    let regions0 = exec.pool().regions_executed();
    // Warmup run doubles as the determinism probe: its output hash and
    // region count are pure functions of (program, plan, width).
    let out = exec
        .run_planned(&app.program, schedule, plan, &app.inputs)
        .expect("execution failed");
    let output_hash = fnv1a(&out);
    let threads_spawned_during = rayon::total_threads_spawned() - spawn0;
    let regions_per_run = exec.pool().regions_executed() - regions0;

    let (min_total, max_iters) = if quick {
        (0.02, 2)
    } else {
        (MIN_TOTAL_S, MAX_ITERS)
    };
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut iters = 0;
    while total < min_total && iters < max_iters {
        let t0 = Instant::now();
        let r = exec.run_planned(&app.program, schedule, plan, &app.inputs);
        let dt = t0.elapsed().as_secs_f64();
        r.expect("execution failed");
        best = best.min(dt);
        total += dt;
        iters += 1;
    }
    Point {
        threads,
        iters,
        best_ms: best * 1e3,
        gflops: flops / best / 1e9,
        speedup: 0.0,    // filled in by the caller from the 1-thread point
        efficiency: 0.0, // ditto
        threads_spawned_during,
        regions_per_run,
        output_hash,
    }
}

fn run_study(
    name: &'static str,
    requested: Scale,
    base: &CpuExecutor,
    counts: &[usize],
    hw: usize,
    quick: bool,
) -> Option<(StudyRow, FastVsVm)> {
    let budget = if quick { 1.0e8 } else { FLOP_BUDGET };
    let (app, scale_used, fallback) = instantiate_within_budget(name, requested, budget)?;
    announce_fallback(name, requested, scale_used, &fallback);
    app.program.validate().ok()?;
    let flops = flops_per_run(&app);
    let path = format!("{:?}", base.path_for(&app.program));

    // One plan, pinned across every sweep point: built for the largest
    // width (the serving scenario — the plan cache hands the same
    // compiled plan to every pool width), so per-point output hashes are
    // directly comparable across thread counts.
    let plan_threads = *counts.last().expect("nonempty counts");
    let schedule = mdh_default_schedule(&app.program, DeviceKind::Cpu, plan_threads);
    if schedule.validate(&app.program, 1 << 24).is_err() {
        eprintln!("{name}: schedule rejected");
        return None;
    }
    let plan = match ExecutionPlan::build(&app.program, &schedule) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{name}: {e}");
            return None;
        }
    };

    let mut points: Vec<Point> = Vec::new();
    for &t in counts {
        let exec = CpuExecutor::with_pool(base.pool(), t);
        let mut p = time_point(&exec, &app, &schedule, &plan, t, quick, flops);
        let base_ms = points.first().map_or(p.best_ms, |b| b.best_ms);
        p.speedup = base_ms / p.best_ms;
        p.efficiency = p.speedup / t.min(hw) as f64;
        points.push(p);
    }

    // In-bin validator: one pinned plan means the width sweep must be
    // bit-identical — a hash mismatch is an executor determinism bug.
    let h0 = points.first().map(|p| p.output_hash).unwrap_or_default();
    for p in &points {
        assert_eq!(
            p.output_hash, h0,
            "{name}: output hash diverged across thread counts under a pinned plan \
             ({} threads vs {} threads)",
            points[0].threads, p.threads
        );
    }

    // The determinism marker: hashes and counters only, no timings.
    for p in &points {
        println!(
            "EXEC_CHECK study=\"{}\" scale={:?} path={} threads={} hash={:#018x} \
             spawns={} regions={}",
            name,
            scale_used,
            path,
            p.threads,
            p.output_hash,
            p.threads_spawned_during,
            p.regions_per_run
        );
    }

    // Fast-vs-VM differential: re-run the SAME pinned plan through a
    // registry-disabled executor and compare output hashes. On a kernel
    // hit the hashes must match bit for bit — that is the fast path's
    // core contract, so a mismatch aborts the bench.
    let kernel_hit = base.path_for(&app.program) == ExecPath::Fast;
    let fallback_reason = fast::classify(&app.program).err();
    let vm = CpuExecutor::with_pool(base.pool(), plan_threads).with_fast_mode(FastMode::ForceVm);
    let t0 = Instant::now();
    let vm_out = vm
        .run_planned(&app.program, &schedule, &plan, &app.inputs)
        .expect("vm execution failed");
    let vm_dt = t0.elapsed().as_secs_f64();
    let vm_hash = fnv1a(&vm_out);
    let fast_point = points
        .iter()
        .find(|p| p.threads == plan_threads)
        .unwrap_or(points.last().expect("nonempty points"));
    let fast_hash = fast_point.output_hash;
    let hash_match = fast_hash == vm_hash;
    if kernel_hit {
        assert!(
            hash_match,
            "{name}: fast-path hash {fast_hash:#018x} != vm hash {vm_hash:#018x} \
             under the same pinned plan"
        );
    }
    println!(
        "EXEC_CHECK fast_vs_vm study=\"{}\" kernel_hit={} reason=\"{}\" \
         fast_hash={:#018x} vm_hash={:#018x} match={}",
        name,
        kernel_hit,
        fallback_reason.as_deref().unwrap_or("-"),
        fast_hash,
        vm_hash,
        hash_match
    );
    let fvv = FastVsVm {
        name: app.name.clone(),
        kernel_hit,
        fallback_reason,
        fast_gflops: fast_point.gflops,
        vm_gflops: flops / vm_dt / 1e9,
        fast_hash,
        vm_hash,
        hash_match,
    };

    Some((
        StudyRow {
            name: app.name.clone(),
            sizes: app.sizes_desc.clone(),
            scale_used,
            scale_fallback_reason: fallback,
            path,
            flops,
            plan_threads,
            points,
        },
        fvv,
    ))
}

/// 100 back-to-back runs through one width-scoped handle: the serving
/// hot path. The pool was warmed by the sweep; the spawn delta across
/// all iterations must be zero.
fn run_hot_loop(
    base: &CpuExecutor,
    requested: Scale,
    threads: usize,
    quick: bool,
) -> Option<HotLoop> {
    let budget = if quick { 1.0e8 } else { FLOP_BUDGET / 10.0 };
    let (app, scale_used, fallback) = instantiate_within_budget("MatVec", requested, budget)?;
    announce_fallback("MatVec/hot_loop", requested, scale_used, &fallback);
    let exec = CpuExecutor::with_pool(base.pool(), threads);
    let schedule = mdh_default_schedule(&app.program, DeviceKind::Cpu, threads);
    let plan = ExecutionPlan::build(&app.program, &schedule).ok()?;
    // Warmup: fault in any lazily-built state before the counter window.
    exec.run_planned(&app.program, &schedule, &plan, &app.inputs)
        .ok()?;

    let spawn0 = rayon::total_threads_spawned();
    let regions0 = exec.pool().regions_executed();
    let t0 = Instant::now();
    for _ in 0..HOT_LOOP_ITERS {
        exec.run_planned(&app.program, &schedule, &plan, &app.inputs)
            .expect("hot loop execution failed");
    }
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let threads_spawned_during = rayon::total_threads_spawned() - spawn0;
    let regions_executed = exec.pool().regions_executed() - regions0;
    println!(
        "EXEC_CHECK hot_loop app=\"MatVec\" scale={:?} threads={} iters={} spawns={} regions={}",
        scale_used, threads, HOT_LOOP_ITERS, threads_spawned_during, regions_executed
    );
    Some(HotLoop {
        app: app.name.clone(),
        scale_used,
        scale_fallback_reason: fallback,
        threads,
        iterations: HOT_LOOP_ITERS,
        threads_spawned_during,
        regions_executed,
        total_ms,
    })
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    rows: &[StudyRow],
    fast_vs_vm: &[FastVsVm],
    kernel_counters: (u64, u64),
    hot: &HotLoop,
    requested: Scale,
    quick: bool,
    hw: usize,
    counts: &[usize],
    pool_spawned: u64,
    acceptance: &(f64, f64, bool),
) -> String {
    let counts_s = counts
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"exec_throughput\",");
    let _ = writeln!(j, "  \"requested_scale\": \"{requested:?}\",");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"hw_threads\": {hw},");
    let _ = writeln!(j, "  \"thread_counts\": [{counts_s}],");
    let _ = writeln!(j, "  \"pool_threads_spawned_at_build\": {pool_spawned},");
    let _ = writeln!(
        j,
        "  \"efficiency_basis\": \"speedup / min(threads, hw_threads)\","
    );
    let _ = writeln!(
        j,
        "  \"flops_note\": \"algorithmic: points * sf_flops_estimate, not a hardware counter\","
    );
    let _ = writeln!(j, "  \"studies\": [");
    for (si, s) in rows.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", json_escape(&s.name));
        let _ = writeln!(j, "      \"sizes\": \"{}\",", json_escape(&s.sizes));
        let _ = writeln!(j, "      \"scale_used\": \"{:?}\",", s.scale_used);
        let _ = writeln!(
            j,
            "      \"scale_fallback_reason\": {},",
            match &s.scale_fallback_reason {
                Some(r) => format!("\"{}\"", json_escape(r)),
                None => "null".into(),
            }
        );
        let _ = writeln!(j, "      \"path\": \"{}\",", s.path);
        let _ = writeln!(j, "      \"flops_per_run\": {:.0},", s.flops);
        let _ = writeln!(j, "      \"plan_threads\": {},", s.plan_threads);
        let _ = writeln!(j, "      \"points\": [");
        for (pi, p) in s.points.iter().enumerate() {
            let _ = write!(
                j,
                "        {{\"threads\": {}, \"iters\": {}, \"best_ms\": {:.4}, \
                 \"gflops\": {:.4}, \"speedup\": {:.4}, \"efficiency\": {:.4}, \
                 \"threads_spawned_during\": {}, \"regions_per_run\": {}, \
                 \"output_hash\": \"{:#018x}\"}}",
                p.threads,
                p.iters,
                p.best_ms,
                p.gflops,
                p.speedup,
                p.efficiency,
                p.threads_spawned_during,
                p.regions_per_run,
                p.output_hash
            );
            let _ = writeln!(j, "{}", if pi + 1 < s.points.len() { "," } else { "" });
        }
        let _ = writeln!(j, "      ]");
        let _ = writeln!(j, "    }}{}", if si + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"fast_vs_vm\": [");
    for (fi, f) in fast_vs_vm.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", json_escape(&f.name));
        let _ = writeln!(j, "      \"kernel_hit\": {},", f.kernel_hit);
        let _ = writeln!(
            j,
            "      \"fallback_reason\": {},",
            match &f.fallback_reason {
                Some(r) => format!("\"{}\"", json_escape(r)),
                None => "null".into(),
            }
        );
        let _ = writeln!(j, "      \"fast_gflops\": {:.4},", f.fast_gflops);
        let _ = writeln!(j, "      \"vm_gflops\": {:.4},", f.vm_gflops);
        let _ = writeln!(j, "      \"fast_hash\": \"{:#018x}\",", f.fast_hash);
        let _ = writeln!(j, "      \"vm_hash\": \"{:#018x}\",", f.vm_hash);
        let _ = writeln!(j, "      \"hash_match\": {}", f.hash_match);
        let _ = writeln!(
            j,
            "    }}{}",
            if fi + 1 < fast_vs_vm.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"kernel_hits\": {},", kernel_counters.0);
    let _ = writeln!(j, "  \"kernel_fallbacks\": {},", kernel_counters.1);
    let _ = writeln!(j, "  \"hot_loop\": {{");
    let _ = writeln!(j, "    \"app\": \"{}\",", json_escape(&hot.app));
    let _ = writeln!(j, "    \"scale_used\": \"{:?}\",", hot.scale_used);
    let _ = writeln!(
        j,
        "    \"scale_fallback_reason\": {},",
        match &hot.scale_fallback_reason {
            Some(r) => format!("\"{}\"", json_escape(r)),
            None => "null".into(),
        }
    );
    let _ = writeln!(j, "    \"threads\": {},", hot.threads);
    let _ = writeln!(j, "    \"iterations\": {},", hot.iterations);
    let _ = writeln!(
        j,
        "    \"threads_spawned_during\": {},",
        hot.threads_spawned_during
    );
    let _ = writeln!(j, "    \"regions_executed\": {},", hot.regions_executed);
    let _ = writeln!(j, "    \"total_ms\": {:.4},", hot.total_ms);
    let _ = writeln!(
        j,
        "    \"per_iter_ms\": {:.4}",
        hot.total_ms / hot.iterations as f64
    );
    let _ = writeln!(j, "  }},");
    let (eff, speedup, pass) = acceptance;
    let _ = writeln!(j, "  \"acceptance\": {{");
    let _ = writeln!(j, "    \"matmul_4t_efficiency\": {eff:.4},");
    let _ = writeln!(j, "    \"matmul_4t_speedup\": {speedup:.4},");
    let _ = writeln!(
        j,
        "    \"hot_loop_spawns\": {},",
        hot.threads_spawned_during
    );
    let _ = writeln!(j, "    \"pass\": {pass}");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

/// Minimal structural JSON validator: the written report must parse and
/// must carry the schema's required top-level keys. Catches a malformed
/// writer before CI's deeper check does.
mod jsonck {
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0;
        skip_ws(b, &mut i);
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            other => Err(format!("unexpected {other:?} at {i}")),
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // '{'
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, i);
            string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected ':' at {i}"));
            }
            *i += 1;
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', got {other:?} at {i}")),
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
        *i += 1; // '['
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(());
        }
        loop {
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', got {other:?} at {i}")),
            }
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected '\"' at {i}"));
        }
        *i += 1;
        while *i < b.len() {
            match b[*i] {
                b'\\' => *i += 2,
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                _ => *i += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        while *i < b.len()
            && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *i += 1;
        }
        let text = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map_err(|e| format!("bad number '{text}': {e}"))?;
        Ok(())
    }

    fn literal(b: &[u8], i: &mut usize, word: &[u8]) -> Result<(), String> {
        if b.len() - *i >= word.len() && &b[*i..*i + word.len()] == word {
            *i += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at {i}"))
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let requested = arg(&args, "--scale")
        .map(|s| parse_scale(&s))
        .unwrap_or(if quick { Scale::Small } else { Scale::Paper });
    let out_path = arg(&args, "--out").unwrap_or_else(|| "BENCH_exec.json".into());

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, 4, hw];
    counts.sort_unstable();
    counts.dedup();
    let max_threads = *counts.last().expect("nonempty");

    let spawn0 = rayon::total_threads_spawned();
    let base = CpuExecutor::new(max_threads).expect("pool");
    let pool_spawned = rayon::total_threads_spawned() - spawn0;

    println!(
        "=== exec throughput ({requested:?} scale, hw_threads={hw}, \
         pool={max_threads} threads, quick={quick}) ==="
    );

    let unique: Vec<&'static str> = {
        let mut seen = Vec::new();
        for id in FIG3_STUDIES {
            if id.input_no == 1 && !seen.contains(&id.name) {
                seen.push(id.name);
            }
        }
        seen
    };

    let mut rows = Vec::new();
    let mut fast_vs_vm = Vec::new();
    for name in unique {
        let Some((row, fvv)) = run_study(name, requested, &base, &counts, hw, quick) else {
            continue;
        };
        fast_vs_vm.push(fvv);
        println!(
            "\n--- {} ({}) — {:?} scale, {} path, {:.2e} flops/run ---",
            row.name, row.sizes, row.scale_used, row.path, row.flops
        );
        println!(
            "  {:>7}  {:>10}  {:>9}  {:>8}  {:>10}  {:>7}  {:>8}",
            "threads", "best ms", "GFLOP/s", "speedup", "efficiency", "spawns", "regions"
        );
        for p in &row.points {
            println!(
                "  {:>7}  {:>10.3}  {:>9.3}  {:>7.2}x  {:>10.2}  {:>7}  {:>8}",
                p.threads,
                p.best_ms,
                p.gflops,
                p.speedup,
                p.efficiency,
                p.threads_spawned_during,
                p.regions_per_run
            );
        }
        rows.push(row);
    }

    println!();
    let hot = run_hot_loop(&base, requested, max_threads, quick).expect("hot loop");
    println!(
        "hot loop: {} x{} @ {} threads — {:.1} ms total ({:.3} ms/iter), \
         {} threads spawned, {} regions",
        hot.app,
        hot.iterations,
        hot.threads,
        hot.total_ms,
        hot.total_ms / hot.iterations as f64,
        hot.threads_spawned_during,
        hot.regions_executed
    );

    // Acceptance inputs: the MatMul 4-thread sweep point and the hot
    // loop's spawn counter.
    let matmul = rows
        .iter()
        .find(|r| r.name == "MatMul")
        .and_then(|r| r.points.iter().find(|p| p.threads == 4));
    let (eff, speedup) = matmul.map_or((0.0, 0.0), |p| (p.efficiency, p.speedup));
    let pass = eff >= 0.5 && hot.threads_spawned_during == 0;

    let json = to_json(
        &rows,
        &fast_vs_vm,
        fast::registry().counters(),
        &hot,
        requested,
        quick,
        hw,
        &counts,
        pool_spawned,
        &(eff, speedup, pass),
    );
    jsonck::validate(&json).expect("generated BENCH_exec.json is not valid JSON");
    for key in [
        "\"experiment\"",
        "\"hw_threads\"",
        "\"thread_counts\"",
        "\"efficiency_basis\"",
        "\"studies\"",
        "\"fast_vs_vm\"",
        "\"kernel_hits\"",
        "\"kernel_fallbacks\"",
        "\"hot_loop\"",
        "\"acceptance\"",
    ] {
        assert!(json.contains(key), "schema self-check: missing {key}");
    }
    std::fs::write(&out_path, &json).expect("write BENCH_exec.json");
    println!("\nwrote {out_path}");

    if quick {
        // CI smoke mode: determinism + schema are the contract; the
        // timing-based acceptance bar only applies to the full run.
        println!("acceptance: skipped in --quick mode (schema + determinism only)");
        if hot.threads_spawned_during != 0 {
            eprintln!(
                "acceptance FAILED: hot loop spawned {} threads",
                hot.threads_spawned_during
            );
            std::process::exit(1);
        }
        return;
    }
    match matmul {
        Some(p) if pass => {
            println!(
                "acceptance: MatMul @ 4 threads efficiency {:.2} (speedup {:.2}x over \
                 min(4, hw={hw})={} usable threads; target >= 0.5) and hot-loop \
                 spawns = {} — OK",
                p.efficiency,
                p.speedup,
                4.min(hw),
                hot.threads_spawned_during
            );
        }
        Some(p) => {
            eprintln!(
                "acceptance FAILED: MatMul @ 4 threads efficiency {:.2} (need >= 0.5) \
                 or hot-loop spawns {} != 0",
                p.efficiency, hot.threads_spawned_during
            );
            std::process::exit(1);
        }
        None => {
            eprintln!("acceptance FAILED: MatMul 4-thread sweep point missing");
            std::process::exit(1);
        }
    }
}
