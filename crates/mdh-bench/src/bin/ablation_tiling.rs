//! Section 5.2's CCSD(T)/OpenACC study: what automatic tiling is worth.
//!
//! The paper reports OpenACC >150× slower than MDH without tiling and
//! ~60× slower with the best hand-applied `tile` directive. This binary
//! reproduces the three-way comparison on the GPU cost model.
//!
//! Usage: `cargo run --release -p mdh-bench --bin ablation_tiling`

use mdh_apps::{instantiate, Scale, StudyId};
use mdh_backend::gpu::GpuSim;
use mdh_baselines::schedulers::{Baseline, OpenAccLike};
use mdh_tuner::{tune_gpu, Budget, Technique};

fn main() {
    let sim = GpuSim::a100(2).expect("sim");
    println!("Ablation: automatic tiling (CCSD(T) on the A100 model)\n");
    for input_no in [1, 2] {
        let app = instantiate(
            StudyId {
                name: "CCSD(T)",
                input_no,
            },
            Scale::Paper,
        )
        .expect("ccsdt");

        let mdh = tune_gpu(&sim, &app.program, Technique::Annealing, Budget::evals(300));
        let acc_untiled = OpenAccLike {
            manual_tiling: false,
        }
        .schedule(&app.program)
        .and_then(|s| {
            sim.estimate(&app.program, &s)
                .map_err(|e| mdh_baselines::schedulers::ScheduleError {
                    system: "OpenACC".into(),
                    reason: e.to_string(),
                })
        });
        let acc_manual = OpenAccLike {
            manual_tiling: true,
        }
        .schedule(&app.program)
        .and_then(|s| {
            sim.estimate(&app.program, &s)
                .map_err(|e| mdh_baselines::schedulers::ScheduleError {
                    system: "OpenACC".into(),
                    reason: e.to_string(),
                })
        });

        println!("CCSD(T) Inp. {input_no}:");
        println!("  MDH (tuned, staged tiles)      {:>10.3} ms", mdh.cost);
        match acc_untiled {
            Ok(r) => println!(
                "  OpenACC (no tiling)            {:>10.3} ms   ({:.0}x slower than MDH)",
                r.time_ms,
                r.time_ms / mdh.cost
            ),
            Err(e) => println!("  OpenACC (no tiling)            FAIL: {e}"),
        }
        match acc_manual {
            Ok(r) => println!(
                "  OpenACC (manual tile pragma)   {:>10.3} ms   ({:.0}x slower than MDH)",
                r.time_ms,
                r.time_ms / mdh.cost
            ),
            Err(e) => println!("  OpenACC (manual tile pragma)   FAIL: {e}"),
        }
        println!();
    }
    println!("Paper reference: >150x (untiled), ~60x (manually tiled).");
}
