//! Regenerates Figure 3: the table of computation and data
//! characteristics for every case study.
//!
//! Usage: `cargo run -p mdh-bench --bin figure3 [-- --scale paper|medium|small]`
//!
//! The default scale is `paper`, reproducing the paper's sizes (no
//! computation runs — only program construction and static analysis).

use mdh_apps::instantiate;
use mdh_bench::parse_scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(|s| parse_scale(s))
        .unwrap_or(mdh_apps::Scale::Paper);

    println!("Figure 3: characteristics of computations and data (scale: {scale:?})\n");
    println!(
        "{:<12} {:>4} {:<11} {:>9} {:<9} {:>4} {:<34} {:<22} {:<17}",
        "Computation",
        "No.",
        "Iter.Space",
        "Red.Dim.",
        "Data Acc.",
        "Inp.",
        "Sizes",
        "Basic Type",
        "Domain"
    );
    println!("{}", "-".repeat(130));

    for &id in mdh_apps::FIG3_STUDIES {
        let app = match instantiate(id, scale) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{} (Inp. {}): {e}", id.name, id.input_no);
                continue;
            }
        };
        let stats = app.program.stats();
        let acc = match stats.injective_accesses {
            Some(true) => "Inj.",
            Some(false) => "Non-Inj.",
            None => "Unknown",
        };
        println!(
            "{:<12} {:>4} {:<11} {:>9} {:<9} {:>4} {:<34} {:<22} {:<17}",
            app.name,
            app.input_no,
            format!("{}D", stats.rank),
            stats.reduction_dims,
            acc,
            app.program.inp_view.buffers.len(),
            app.sizes_desc,
            app.basic_type_desc(),
            app.domain,
        );
    }
}
