//! Artifact-style validation (the paper's Appendix B workflow): run every
//! case study end-to-end — directive compile → parallel CPU execution →
//! comparison against the formal reference semantics — plus the GPU
//! functional path, and print a PASS/FAIL table.
//!
//! Usage: `cargo run --release -p mdh-bench --bin validate [-- --scale small|medium]`

use mdh_apps::{instantiate, Scale, StudyId, FIG3_STUDIES};
use mdh_backend::cpu::CpuExecutor;
use mdh_backend::gpu::GpuSim;
use mdh_bench::parse_scale;
use mdh_core::eval::evaluate_recursive;
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::heuristics::mdh_default_schedule;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(|s| parse_scale(s))
        .unwrap_or(Scale::Small);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let exec = CpuExecutor::new(threads).expect("executor");
    let sim = GpuSim::a100(threads).expect("sim");

    println!("Validation at scale {scale:?} ({threads} threads)\n");
    println!(
        "{:<14} {:>4} {:<12} {:<10} {:<10}",
        "study", "inp", "path", "cpu", "gpu(func)"
    );
    println!("{}", "-".repeat(56));

    let mut failures = 0;
    let extra = [
        StudyId {
            name: "Jacobi1D",
            input_no: 1,
        },
        StudyId {
            name: "MBBS",
            input_no: 1,
        },
    ];
    for &id in FIG3_STUDIES.iter().chain(&extra) {
        let app = match instantiate(id, scale) {
            Ok(a) => a,
            Err(e) => {
                println!("{:<14} {:>4} INSTANTIATION FAIL: {e}", id.name, id.input_no);
                failures += 1;
                continue;
            }
        };
        let expect = match evaluate_recursive(&app.program, &app.inputs) {
            Ok(o) => o,
            Err(e) => {
                println!("{:<14} {:>4} REFERENCE FAIL: {e}", app.name, app.input_no);
                failures += 1;
                continue;
            }
        };
        let path = format!("{:?}", exec.path_for(&app.program));
        let sched = mdh_default_schedule(&app.program, DeviceKind::Cpu, threads);
        let cpu_ok = match exec.run(&app.program, &sched, &app.inputs) {
            Ok(got) => got.iter().zip(&expect).all(|(g, e)| g.approx_eq(e, 1e-3)),
            Err(_) => false,
        };
        let gsched = mdh_default_schedule(&app.program, DeviceKind::Gpu, 108 * 32);
        let gpu_ok = match sim.run(&app.program, &gsched, &app.inputs) {
            Ok((got, _)) => got.iter().zip(&expect).all(|(g, e)| g.approx_eq(e, 1e-3)),
            Err(_) => false,
        };
        if !cpu_ok || !gpu_ok {
            failures += 1;
        }
        println!(
            "{:<14} {:>4} {:<12} {:<10} {:<10}",
            app.name,
            app.input_no,
            path,
            if cpu_ok { "PASS" } else { "FAIL" },
            if gpu_ok { "PASS" } else { "FAIL" },
        );
    }
    println!();
    if failures == 0 {
        println!("all studies validate ✓");
    } else {
        println!("{failures} validation failure(s)");
        std::process::exit(1);
    }
}
