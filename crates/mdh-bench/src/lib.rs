//! # mdh-bench
//!
//! The experiment harness regenerating the paper's evaluation:
//!
//! * `figure3` — the workload-characteristics table,
//! * `figure4` — the speedup series of MDH vs every baseline, per device,
//! * `ablation_*` — the Section 5.2 deep-dives (tiling on CCSD(T),
//!   reduction parallelisation, tuning techniques).
//!
//! The library half contains the shared machinery: running one case study
//! on every system and collecting times/failures.

#![allow(clippy::needless_range_loop)]
pub mod stats;

use mdh_apps::{AppInstance, Scale, StudyId};
use mdh_backend::cpu::CpuExecutor;
use mdh_backend::cpu_model::{estimate_cpu, CpuParams};
use mdh_backend::gpu::GpuSim;
use mdh_baselines::schedulers::{
    Baseline, NumbaLike, OpenAccLike, OpenMpLike, PlutoLike, PpcgLike, TvmLike,
};
use mdh_baselines::vendor::{VendorCpu, VendorCpuModel, VendorGpu};
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::schedule::Schedule;
use mdh_tuner::{tune_cpu, tune_cpu_model, tune_gpu, Budget, Technique};

/// Outcome for one system on one study.
#[derive(Debug, Clone)]
pub struct SystemResult {
    pub system: String,
    /// Execution time (seconds on CPU, milliseconds on the GPU
    /// simulator), or the failure reason.
    pub outcome: Result<f64, String>,
}

impl SystemResult {
    pub fn time(&self) -> Option<f64> {
        self.outcome.as_ref().ok().copied()
    }
}

/// All systems' results for one study on one device.
#[derive(Debug, Clone)]
pub struct StudyResult {
    pub study: String,
    pub input_no: usize,
    pub device: DeviceKind,
    pub results: Vec<SystemResult>,
}

impl StudyResult {
    /// MDH's time (the reference for speedups).
    pub fn mdh_time(&self) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.system == "MDH")
            .and_then(|r| r.time())
    }

    /// Speedup of MDH over the named system (>1 = MDH faster).
    pub fn speedup_vs(&self, system: &str) -> Option<f64> {
        let mdh = self.mdh_time()?;
        let other = self.results.iter().find(|r| r.system == system)?.time()?;
        Some(other / mdh)
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    pub threads: usize,
    /// Tuning budget for MDH (evaluations; the paper used 12 h).
    pub mdh_budget: usize,
    /// Tuning budget for tuned baselines (TVM, PPCG+ATF, Pluto+ATF).
    pub baseline_budget: usize,
    /// Measured repetitions per configuration on CPU (min taken).
    pub reps: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            mdh_budget: 24,
            baseline_budget: 8,
            reps: 2,
        }
    }
}

/// Measure a schedule's wall time with the paper's protocol (Section
/// 5.1, Hoefler & Belli): repeat until the 99% CI is within 5% of the
/// mean, using `reps` as the minimum and `8·reps` as the cap.
fn min_time(
    exec: &CpuExecutor,
    app: &AppInstance,
    s: &Schedule,
    reps: usize,
) -> Result<f64, String> {
    let mut err: Option<String> = None;
    let m = stats::measure_until_ci(
        || match exec.run_timed(&app.program, s, &app.inputs) {
            Ok((_, d)) => d.as_secs_f64(),
            Err(e) => {
                err = Some(e.to_string());
                f64::INFINITY
            }
        },
        0.99,
        0.05,
        reps.max(2),
        (reps * 8).max(4),
    );
    match err {
        Some(e) => Err(e),
        None => Ok(m.mean),
    }
}

/// CPU timing mode: modelled Xeon Gold 6140 (the default — this
/// container exposes a single core, see `mdh_backend::cpu_model`) or
/// measured wall time on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuTiming {
    /// Analytic Xeon model; times in milliseconds.
    Model,
    /// Measured host execution; times in seconds.
    Measured,
}

/// Run one study on the CPU against all CPU systems.
pub fn run_cpu_study(app: &AppInstance, cfg: &HarnessConfig, timing: CpuTiming) -> StudyResult {
    let params = CpuParams::xeon_gold_6140();
    let threads = match timing {
        CpuTiming::Model => params.smt_threads,
        CpuTiming::Measured => cfg.threads,
    };
    let exec = CpuExecutor::new(cfg.threads).expect("executor");
    let cost = |s: &Schedule| -> Result<f64, String> {
        match timing {
            CpuTiming::Model => estimate_cpu(&app.program, s, &params)
                .map(|r| r.time_ms)
                .map_err(|e| e.to_string()),
            CpuTiming::Measured => min_time(&exec, app, s, cfg.reps),
        }
    };
    let mut results = Vec::new();

    // --- MDH: auto-tuned schedule ----------------------------------------
    let tuned = match timing {
        CpuTiming::Model => tune_cpu_model(
            &app.program,
            &params,
            Technique::Annealing,
            Budget::evals(cfg.mdh_budget * 4),
        ),
        CpuTiming::Measured => tune_cpu(
            &exec,
            &app.program,
            &app.inputs,
            Technique::Annealing,
            Budget::evals(cfg.mdh_budget),
        ),
    };
    results.push(SystemResult {
        system: "MDH".into(),
        outcome: cost(&tuned.schedule),
    });

    // --- directive baselines --------------------------------------------
    let baselines: Vec<Box<dyn Baseline>> = vec![
        Box::new(OpenMpLike { threads }),
        Box::new(PlutoLike::heuristic(threads)),
        Box::new(NumbaLike { threads }),
    ];
    for b in &baselines {
        let outcome = match b.schedule(&app.program) {
            Ok(s) => cost(&s),
            Err(e) => Err(e.reason),
        };
        results.push(SystemResult {
            system: b.name().to_string(),
            outcome,
        });
    }

    // --- Pluto + ATF: tile sizes tuned ----------------------------------
    {
        let mut best: Result<f64, String> = Err("no valid tile".into());
        for tile in [8, 16, 32, 64, 128] {
            match PlutoLike::with_tile(threads, tile, "Pluto+ATF").schedule(&app.program) {
                Ok(s) => {
                    if let Ok(t) = cost(&s) {
                        best = Ok(match best {
                            Ok(b) => b.min(t),
                            Err(_) => t,
                        });
                    }
                }
                Err(e) => {
                    best = Err(e.reason);
                    break;
                }
            }
        }
        results.push(SystemResult {
            system: "Pluto+ATF".into(),
            outcome: best,
        });
    }

    // --- TVM: tuned templates, restricted reducers -----------------------
    {
        let tvm = TvmLike {
            device: DeviceKind::Cpu,
            parallel_units: threads,
        };
        let outcome = match tvm.schedule(&app.program) {
            Ok(_) => {
                let tuned = match timing {
                    CpuTiming::Model => tune_cpu_model(
                        &app.program,
                        &params,
                        Technique::Random,
                        Budget::evals(cfg.baseline_budget * 4),
                    ),
                    CpuTiming::Measured => tune_cpu(
                        &exec,
                        &app.program,
                        &app.inputs,
                        Technique::Random,
                        Budget::evals(cfg.baseline_budget),
                    ),
                };
                cost(&tuned.schedule)
            }
            Err(e) => Err(e.reason),
        };
        results.push(SystemResult {
            system: "TVM".into(),
            outcome,
        });
    }

    // --- vendor library ----------------------------------------------------
    {
        let outcome = match (&app.vendor_op, timing) {
            (Some(op), CpuTiming::Model) => Ok(VendorCpuModel::xeon_gold_6140().estimate_ms(op)),
            (Some(op), CpuTiming::Measured) => {
                let vendor = VendorCpu::new(cfg.threads);
                let mut err = None;
                let m = stats::measure_until_ci(
                    || match vendor.run(op, &app.inputs) {
                        Some((_, d)) => d.as_secs_f64(),
                        None => {
                            err = Some("unsupported input type".to_string());
                            f64::INFINITY
                        }
                    },
                    0.99,
                    0.05,
                    cfg.reps.max(2),
                    (cfg.reps * 8).max(4),
                );
                match err {
                    Some(e) => Err(e),
                    None => Ok(m.mean),
                }
            }
            (None, _) => Err("operation not covered by oneMKL/oneDNN".into()),
        };
        results.push(SystemResult {
            system: "oneMKL/oneDNN".into(),
            outcome,
        });
    }

    StudyResult {
        study: app.name.clone(),
        input_no: app.input_no,
        device: DeviceKind::Cpu,
        results,
    }
}

/// Run one study on the simulated GPU against all GPU systems. Returns
/// simulated times in milliseconds.
pub fn run_gpu_study(app: &AppInstance, cfg: &HarnessConfig) -> StudyResult {
    let sim = GpuSim::a100(cfg.threads.min(4)).expect("gpu sim");
    let mut results = Vec::new();

    // --- MDH: auto-tuned against the cost model (hybrid search, as a
    // short stand-in for the paper's 12 h ATF budget) ----------------------
    let t1 = tune_gpu(
        &sim,
        &app.program,
        Technique::Annealing,
        Budget::evals(cfg.mdh_budget * 4),
    );
    let t2 = tune_gpu(
        &sim,
        &app.program,
        Technique::Random,
        Budget::evals(cfg.mdh_budget * 4),
    );
    let tuned = if t1.cost <= t2.cost { t1 } else { t2 };
    results.push(SystemResult {
        system: "MDH".into(),
        outcome: if tuned.cost.is_finite() {
            Ok(tuned.cost)
        } else {
            Err("no valid schedule found".into())
        },
    });

    // --- directive baselines ---------------------------------------------
    let baselines: Vec<Box<dyn Baseline>> = vec![
        Box::new(OpenAccLike {
            manual_tiling: false,
        }),
        Box::new(OpenAccLike {
            manual_tiling: true,
        }),
        Box::new(PpcgLike::heuristic()),
    ];
    for b in &baselines {
        let outcome = match b.schedule(&app.program) {
            Ok(s) => sim
                .estimate(&app.program, &s)
                .map(|r| r.time_ms)
                .map_err(|e| e.to_string()),
            Err(e) => Err(e.reason),
        };
        results.push(SystemResult {
            system: b.name().to_string(),
            outcome,
        });
    }

    // --- PPCG + ATF: tile sizes tuned --------------------------------------
    {
        let mut best: Result<f64, String> = Err("no valid tile".into());
        for tile in [4, 8, 16, 32, 64] {
            match PpcgLike::with_tile(tile, "PPCG+ATF").schedule(&app.program) {
                Ok(s) => {
                    if let Ok(r) = sim.estimate(&app.program, &s) {
                        best = Ok(match best {
                            Ok(b) => b.min(r.time_ms),
                            Err(_) => r.time_ms,
                        });
                    }
                }
                Err(e) => {
                    best = Err(e.reason);
                    break;
                }
            }
        }
        results.push(SystemResult {
            system: "PPCG+ATF".into(),
            outcome: best,
        });
    }

    // --- TVM -----------------------------------------------------------------
    {
        let tvm = TvmLike {
            device: DeviceKind::Gpu,
            parallel_units: sim.params.num_sms * 32,
        };
        let outcome = match tvm.schedule(&app.program) {
            Ok(_) => {
                let tuned = tune_gpu(
                    &sim,
                    &app.program,
                    Technique::Random,
                    Budget::evals(cfg.baseline_budget * 8),
                );
                if tuned.cost.is_finite() {
                    Ok(tuned.cost)
                } else {
                    Err("no valid schedule".into())
                }
            }
            Err(e) => Err(e.reason),
        };
        results.push(SystemResult {
            system: "TVM".into(),
            outcome,
        });
    }

    // --- vendor library --------------------------------------------------------
    {
        let outcome = match &app.vendor_op {
            Some(op) => Ok(VendorGpu::a100().estimate_ms(op)),
            None => Err("operation not covered by cuBLAS/cuDNN".into()),
        };
        results.push(SystemResult {
            system: "cuBLAS/cuDNN".into(),
            outcome,
        });
    }

    StudyResult {
        study: app.name.clone(),
        input_no: app.input_no,
        device: DeviceKind::Gpu,
        results,
    }
}

/// Pretty-print one study's results as a Figure-4 row block.
pub fn print_study(res: &StudyResult, unit: &str) {
    println!("\n{} (Inp. {}) — {}", res.study, res.input_no, res.device);
    let mdh = res.mdh_time();
    for r in &res.results {
        match (&r.outcome, mdh) {
            (Ok(t), Some(m)) if r.system != "MDH" => {
                println!(
                    "  {:<22} {:>12.4} {unit}   speedup of MDH: {:>8.2}x",
                    r.system,
                    t,
                    t / m
                );
            }
            (Ok(t), _) => {
                println!("  {:<22} {:>12.4} {unit}", r.system, t);
            }
            (Err(e), _) => {
                println!("  {:<22} {:>12} FAIL: {e}", r.system, "-");
            }
        }
    }
}

/// Parse a scale name.
pub fn parse_scale(s: &str) -> Scale {
    match s {
        "paper" => Scale::Paper,
        "small" => Scale::Small,
        _ => Scale::Medium,
    }
}

/// Parse a study filter like "MatVec" or "all".
pub fn select_studies(filter: &str) -> Vec<StudyId> {
    mdh_apps::FIG3_STUDIES
        .iter()
        .copied()
        .filter(|id| filter == "all" || id.name.eq_ignore_ascii_case(filter))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_apps::instantiate;

    fn small_cfg() -> HarnessConfig {
        HarnessConfig {
            threads: 2,
            mdh_budget: 4,
            baseline_budget: 2,
            reps: 1,
        }
    }

    #[test]
    fn cpu_harness_runs_matvec() {
        let app = instantiate(
            StudyId {
                name: "MatVec",
                input_no: 1,
            },
            Scale::Small,
        )
        .unwrap();
        for timing in [CpuTiming::Measured, CpuTiming::Model] {
            let res = run_cpu_study(&app, &small_cfg(), timing);
            assert!(res.mdh_time().is_some(), "{timing:?}");
            assert!(res
                .results
                .iter()
                .any(|r| r.system == "OpenMP" && r.time().is_some()));
            assert!(res.speedup_vs("OpenMP").is_some());
        }
    }

    #[test]
    fn gpu_harness_runs_matvec_and_ppcg_fails_on_dot() {
        let cfg = small_cfg();
        let app = instantiate(
            StudyId {
                name: "MatVec",
                input_no: 1,
            },
            Scale::Small,
        )
        .unwrap();
        let res = run_gpu_study(&app, &cfg);
        assert!(res.mdh_time().is_some());

        let dot = instantiate(
            StudyId {
                name: "Dot",
                input_no: 1,
            },
            Scale::Small,
        )
        .unwrap();
        let res = run_gpu_study(&dot, &cfg);
        let ppcg = res.results.iter().find(|r| r.system == "PPCG").unwrap();
        assert!(ppcg.outcome.is_err(), "PPCG must fail on Dot");
    }

    #[test]
    fn prl_fails_for_pluto_and_tvm_in_harness() {
        let app = instantiate(
            StudyId {
                name: "PRL",
                input_no: 1,
            },
            Scale::Small,
        )
        .unwrap();
        let res = run_cpu_study(&app, &small_cfg(), CpuTiming::Model);
        let pluto = res.results.iter().find(|r| r.system == "Pluto").unwrap();
        assert!(pluto.outcome.is_err());
        let tvm = res.results.iter().find(|r| r.system == "TVM").unwrap();
        assert!(tvm.outcome.is_err());
        // vendor does not cover PRL
        let vendor = res
            .results
            .iter()
            .find(|r| r.system == "oneMKL/oneDNN")
            .unwrap();
        assert!(vendor.outcome.is_err());
    }

    #[test]
    fn study_selection() {
        assert_eq!(select_studies("all").len(), mdh_apps::FIG3_STUDIES.len());
        assert_eq!(select_studies("matvec").len(), 2);
        assert!(select_studies("nonexistent").is_empty());
    }
}
