//! Statistical measurement protocol (Section 5.1).
//!
//! The paper follows Hoefler & Belli's *Scientific Benchmarking of
//! Parallel Computing Systems* (SC'15): "we collect measurements until
//! the 99% confidence interval was within 5% of our reported means".
//! [`measure_until_ci`] implements exactly that stopping rule with a
//! Student-t confidence interval.

/// Two-sided Student-t critical value for the given confidence level and
/// degrees of freedom (piecewise table + normal asymptote; 99% and 95%
/// supported exactly, others fall back to 95%).
pub fn t_critical(confidence: f64, dof: usize) -> f64 {
    // tables for p = 0.995 (99% two-sided) and p = 0.975 (95% two-sided)
    const T99: &[f64] = &[
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
        2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
        2.771, 2.763, 2.756, 2.750,
    ];
    const T95: &[f64] = &[
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    let table = if confidence >= 0.985 { T99 } else { T95 };
    let asymptote = if confidence >= 0.985 { 2.576 } else { 1.960 };
    if dof == 0 {
        return f64::INFINITY;
    }
    if dof <= table.len() {
        table[dof - 1]
    } else if dof <= 60 {
        // linear-ish interpolation toward the asymptote
        let t30 = table[table.len() - 1];
        t30 + (asymptote - t30) * ((dof - 30) as f64 / 30.0)
    } else {
        asymptote
    }
}

/// Summary of a measurement session.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    pub mean: f64,
    pub std_dev: f64,
    /// Half-width of the confidence interval.
    pub ci_half_width: f64,
    pub samples: usize,
    /// Whether the stopping criterion was met (false = hit `max_samples`).
    pub converged: bool,
}

impl Measurement {
    /// Relative CI half-width (the paper's 5% criterion).
    pub fn rel_ci(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci_half_width / self.mean.abs()
        }
    }
}

/// Compute mean, sample standard deviation, and CI half-width.
pub fn summarize(samples: &[f64], confidence: f64) -> Measurement {
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n.max(1) as f64;
    if n < 2 {
        return Measurement {
            mean,
            std_dev: 0.0,
            ci_half_width: f64::INFINITY,
            samples: n,
            converged: false,
        };
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    let std_dev = var.sqrt();
    let ci_half_width = t_critical(confidence, n - 1) * std_dev / (n as f64).sqrt();
    Measurement {
        mean,
        std_dev,
        ci_half_width,
        samples: n,
        converged: false,
    }
}

/// Run `f` repeatedly until the `confidence` CI is within `rel_width` of
/// the mean (the paper uses 0.99 and 0.05), bounded by `max_samples`.
pub fn measure_until_ci(
    mut f: impl FnMut() -> f64,
    confidence: f64,
    rel_width: f64,
    min_samples: usize,
    max_samples: usize,
) -> Measurement {
    let mut samples = Vec::with_capacity(min_samples.max(4));
    loop {
        samples.push(f());
        if samples.len() >= min_samples.max(2) {
            let mut m = summarize(&samples, confidence);
            if m.rel_ci() <= rel_width {
                m.converged = true;
                return m;
            }
            if samples.len() >= max_samples {
                return m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_spot_checks() {
        assert!((t_critical(0.99, 1) - 63.657).abs() < 1e-3);
        assert!((t_critical(0.99, 10) - 3.169).abs() < 1e-3);
        assert!((t_critical(0.95, 5) - 2.571).abs() < 1e-3);
        assert!((t_critical(0.99, 1000) - 2.576).abs() < 1e-3);
        assert!(t_critical(0.99, 4) > t_critical(0.95, 4), "99% CI is wider");
        assert_eq!(t_critical(0.99, 0), f64::INFINITY);
    }

    #[test]
    fn constant_samples_converge_immediately() {
        let m = measure_until_ci(|| 5.0, 0.99, 0.05, 3, 100);
        assert!(m.converged);
        assert_eq!(m.samples, 3);
        assert!((m.mean - 5.0).abs() < 1e-12);
        assert!(m.ci_half_width < 1e-9);
    }

    #[test]
    fn noisy_samples_take_more_measurements() {
        // deterministic "noise": alternating values
        let mut i = 0usize;
        let m = measure_until_ci(
            move || {
                i += 1;
                if i.is_multiple_of(2) {
                    10.0
                } else {
                    11.0
                }
            },
            0.99,
            0.05,
            3,
            500,
        );
        assert!(m.converged, "{m:?}");
        assert!(m.samples > 3, "alternating values need several samples");
        assert!((m.mean - 10.5).abs() < 0.3);
    }

    #[test]
    fn divergent_noise_hits_cap() {
        let mut i = 0.0f64;
        let m = measure_until_ci(
            move || {
                i += 1.0;
                i * i // growing values never stabilise
            },
            0.99,
            0.05,
            3,
            25,
        );
        assert!(!m.converged);
        assert_eq!(m.samples, 25);
    }

    #[test]
    fn summarize_matches_hand_computation() {
        let s = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m = summarize(&s, 0.95);
        assert!((m.mean - 5.0).abs() < 1e-12);
        // sample std dev of this classic set is ~2.138
        assert!((m.std_dev - 2.13809).abs() < 1e-4);
        assert_eq!(m.samples, 8);
        // CI half width = t(0.975, 7) * sd / sqrt(8)
        let expect = 2.365 * m.std_dev / (8f64).sqrt();
        assert!((m.ci_half_width - expect).abs() < 1e-9);
    }
}
