//! Work-stealing is invisible in the results: for a FIXED execution
//! plan, running it through width-1, width-2, and width-4 handles of
//! one persistent pool must produce bit-identical outputs.
//!
//! This is the strong form of the claim. Chunk boundaries are a pure
//! function of `(n, width)`, every chunk writes index-addressed slots,
//! and partials are folded in task order — so which OS thread steals
//! which chunk can never reorder a float accumulation. Inputs here are
//! deliberately NOT integer-valued: if stealing could reassociate a
//! reduction, inexact values would surface it as a bit difference.
//!
//! (Across different plans the outputs legitimately differ — a
//! 4-thread default schedule splits reductions differently from a
//! 1-thread one. The guarantee under test is plan-for-plan.)

use mdh_apps::{instantiate, Scale, StudyId, FIG3_STUDIES};
use mdh_backend::cpu::CpuExecutor;
use mdh_core::buffer::{Buffer, BufferData, Column};
use mdh_core::combine::{BuiltinReduce, CombineOp, PwFunc};
use mdh_core::dsl::{DslBuilder, DslProgram};
use mdh_core::expr::ScalarFunction;
use mdh_core::index_fn::{AffineExpr, IndexFn};
use mdh_core::shape::Shape;
use mdh_core::types::{BasicType, ScalarKind};
use mdh_lowering::{mdh_default_schedule, DeviceKind, ExecutionPlan};
use proptest::prelude::*;

/// Bitwise equality: distinguishes -0.0 from 0.0 and compares NaNs by
/// payload, unlike `PartialEq` on float vectors.
fn bits_eq(a: &[Buffer], b: &[Buffer]) -> bool {
    fn col_eq(a: &Column, b: &Column) -> bool {
        match (a, b) {
            (Column::F32(x), Column::F32(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
            }
            (Column::F64(x), Column::F64(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
            }
            _ => a == b,
        }
    }
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (&x.data, &y.data) {
            (BufferData::F32(p), BufferData::F32(q)) => {
                p.len() == q.len() && p.iter().zip(q).all(|(s, t)| s.to_bits() == t.to_bits())
            }
            (BufferData::F64(p), BufferData::F64(q)) => {
                p.len() == q.len() && p.iter().zip(q).all(|(s, t)| s.to_bits() == t.to_bits())
            }
            (BufferData::Record(p), BufferData::Record(q)) => {
                p.columns.len() == q.columns.len()
                    && p.columns.iter().zip(&q.columns).all(|(s, t)| col_eq(s, t))
            }
            (p, q) => p == q,
        })
}

/// Inexact, position-dependent fill: values like 0.1*k are not binary
/// floats, so any reassociation changes low-order bits.
fn inexact_fill(buf: &mut Buffer, salt: usize) {
    buf.fill_with(move |i| {
        let k = i.wrapping_add(salt).wrapping_mul(2654435761) % 1000;
        k as f64 * 0.1 - 31.7
    });
}

/// Run one program under widths {1, 2, 4} of a shared pool with the
/// SAME plan and assert bitwise identity against the width-1 result.
/// Returns whether the width-4 run actually published parallel regions
/// (plans under the small-`n` cutoff stay on the caller).
fn shared_base() -> &'static CpuExecutor {
    static POOL: std::sync::OnceLock<CpuExecutor> = std::sync::OnceLock::new();
    POOL.get_or_init(|| CpuExecutor::new(4).expect("pool"))
}

fn assert_width_identity(prog: &DslProgram, inputs: &[Buffer], label: &str) -> bool {
    let base = shared_base();
    let schedule = mdh_default_schedule(prog, DeviceKind::Cpu, 4);
    schedule
        .validate(prog, 1 << 24)
        .unwrap_or_else(|e| panic!("{label}: schedule: {e}"));
    let plan = ExecutionPlan::build(prog, &schedule).expect("plan");

    let reference = CpuExecutor::with_pool(base.pool(), 1)
        .run_planned(prog, &schedule, &plan, inputs)
        .unwrap_or_else(|e| panic!("{label} @ width 1: {e}"));
    let mut crossed = false;
    for width in [2usize, 4] {
        let exec = CpuExecutor::with_pool(base.pool(), width);
        let regions0 = exec.pool().regions_executed();
        let outs = exec
            .run_planned(prog, &schedule, &plan, inputs)
            .unwrap_or_else(|e| panic!("{label} @ width {width}: {e}"));
        crossed |= exec.pool().regions_executed() > regions0;
        assert!(
            bits_eq(&reference, &outs),
            "{label}: width {width} diverged from width 1 on a fixed plan"
        );
        // Run-to-run determinism at the same width, too.
        let again = exec
            .run_planned(prog, &schedule, &plan, inputs)
            .unwrap_or_else(|e| panic!("{label} @ width {width} rerun: {e}"));
        assert!(
            bits_eq(&outs, &again),
            "{label}: width {width} differs between runs"
        );
    }
    crossed
}

/// Pick the largest scale whose iteration space stays affordable for a
/// test (3 widths x reruns), so most studies genuinely cross the
/// parallel threshold without minutes of runtime.
fn scaled_instance(id: StudyId) -> (Scale, mdh_apps::AppInstance) {
    const POINT_BUDGET: usize = 20_000_000;
    for scale in [Scale::Medium, Scale::Small] {
        let app = instantiate(id, scale).expect("registry instantiates");
        if app.program.md_hom.points() <= POINT_BUDGET || scale == Scale::Small {
            return (scale, app);
        }
    }
    unreachable!("ladder ends at Small")
}

#[test]
fn registry_apps_are_bit_identical_across_pool_widths() {
    let mut crossed = 0usize;
    let mut names = Vec::new();
    for id in FIG3_STUDIES {
        if id.input_no != 1 || names.contains(&id.name) {
            continue;
        }
        names.push(id.name);
        let (scale, app) = scaled_instance(*id);
        let label = format!("{} ({scale:?})", app.name);
        if assert_width_identity(&app.program, &app.inputs, &label) {
            crossed += 1;
        }
    }
    assert_eq!(names.len(), 11, "expected every unique Fig. 3 study");
    // The sweep must not be vacuous: most studies have to publish real
    // parallel regions (only cutoff-sized plans may stay sequential).
    assert!(
        crossed >= 5,
        "only {crossed} studies crossed the parallel threshold"
    );
}

/// MatVec-shaped program: a `cc` dimension over rows, `pw(+)` over
/// columns.
fn cc_pw_program(i: usize, k: usize) -> (DslProgram, Vec<Buffer>) {
    let prog = DslBuilder::new("ident_matvec", vec![i, k])
        .out_buffer("w", BasicType::F32)
        .out_access("w", IndexFn::select(2, &[0]))
        .inp_buffer("M", BasicType::F32)
        .inp_access("M", IndexFn::identity(2, 2))
        .inp_buffer("v", BasicType::F32)
        .inp_access("v", IndexFn::select(2, &[1]))
        .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
        .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
        .build()
        .expect("cc/pw program");
    let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![i, k]));
    let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![k]));
    inexact_fill(&mut m, 11);
    inexact_fill(&mut v, 23);
    (prog, vec![m, v])
}

/// Dot-shaped program: one `pw(+)` dimension, pure reduction.
fn pw_program(n: usize) -> (DslProgram, Vec<Buffer>) {
    let prog = DslBuilder::new("ident_dot", vec![n])
        .out_buffer("res", BasicType::F32)
        .out_access("res", IndexFn::affine(vec![AffineExpr::constant(1, 0)]))
        .inp_buffer("x", BasicType::F32)
        .inp_access("x", IndexFn::identity(1, 1))
        .inp_buffer("y", BasicType::F32)
        .inp_access("y", IndexFn::identity(1, 1))
        .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
        .combine_ops(vec![CombineOp::pw_add()])
        .build()
        .expect("pw program");
    let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![n]));
    let mut y = Buffer::zeros("y", BasicType::F32, Shape::new(vec![n]));
    inexact_fill(&mut x, 37);
    inexact_fill(&mut y, 41);
    (prog, vec![x, y])
}

/// Running-max program: one `ps(max)` scan dimension.
fn ps_program(n: usize) -> (DslProgram, Vec<Buffer>) {
    let prog = DslBuilder::new("ident_scan", vec![n])
        .out_buffer("out", BasicType::F64)
        .out_access("out", IndexFn::identity(1, 1))
        .inp_buffer("x", BasicType::F64)
        .inp_access("x", IndexFn::identity(1, 1))
        .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
        .combine_ops(vec![CombineOp::Ps(PwFunc::builtin(BuiltinReduce::Max))])
        .build()
        .expect("ps program");
    let mut x = Buffer::zeros("x", BasicType::F64, Shape::new(vec![n]));
    inexact_fill(&mut x, 53);
    (prog, vec![x])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Sizes straddle the small-plan cutoff (2048 points) so both the
    // sequential shortcut and genuine multi-chunk stealing are hit.

    #[test]
    fn cc_pw_fixed_plan_is_width_invariant(i in 1usize..90, k in 1usize..90) {
        let (prog, inputs) = cc_pw_program(i, k);
        assert_width_identity(&prog, &inputs, "proptest cc/pw");
    }

    #[test]
    fn pw_fixed_plan_is_width_invariant(n in 1usize..6000) {
        let (prog, inputs) = pw_program(n);
        assert_width_identity(&prog, &inputs, "proptest pw");
    }

    #[test]
    fn ps_fixed_plan_is_width_invariant(n in 1usize..6000) {
        let (prog, inputs) = ps_program(n);
        assert_width_identity(&prog, &inputs, "proptest ps");
    }
}
