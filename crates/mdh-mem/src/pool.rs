//! Per-device memory pools: size-class allocation under a capacity budget,
//! LRU eviction, and the double-buffered H2D/compute overlap model.
//!
//! # Allocation model
//!
//! Device memory is modelled, not real (the executors are simulators), but
//! the pool is accounted exactly the way a real CUDA pool would be:
//!
//! * requests are rounded up to a **power-of-two size class** (min
//!   [`MIN_CLASS_BYTES`]); each class keeps a free list of previously
//!   allocated blocks so steady-state serving reuses device allocations
//!   instead of alloc/free churn;
//! * the sum of all pooled bytes on a device (resident **plus** free-listed)
//!   never exceeds the configured per-device **budget** — `acquire` frees
//!   free-list blocks first, then evicts resident blocks in LRU order,
//!   *before* allocating, so the budget holds at every instant;
//! * a block whose size class alone exceeds the budget is an **unpooled
//!   passthrough**: it is shipped every launch and never tracked, so one
//!   oversized operand cannot wedge the pool.
//!
//! # Residency
//!
//! Resident blocks are keyed by [`BlockKey`] (content fingerprint ×
//! explicit version × plan-visible region signature). A hit means the
//! device already holds the current bytes for exactly the shard slice the
//! plan wants — H2D is skipped entirely. A miss uploads, and the upload is
//! **double-buffered**: the modelled device starts computing after the
//! first half of the transfer, so H2D overlaps compute
//! ([`double_buffered_phase_ms`]).
//!
//! Fault interaction: when `mdh-dist` evicts a crashed device, it calls
//! [`MemPool::invalidate_device`] — every block on that device is dropped
//! in O(1) bookkeeping, so a re-planned launch can never read a stale
//! resident buffer. Bit-identity is structural: residency only decides
//! whether the *modelled transfer* happens; shard values are always
//! computed from the host operands.

use crate::operand::{fingerprint_buffer, BlockKey, OperandId, VersionTable};
use mdh_core::buffer::Buffer;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Smallest size class (bytes). Sub-256-byte blocks round up to this.
pub const MIN_CLASS_BYTES: u64 = 256;

/// Round `bytes` up to its power-of-two size class (≥ [`MIN_CLASS_BYTES`]).
#[inline]
pub fn size_class_bytes(bytes: u64) -> u64 {
    bytes.max(MIN_CLASS_BYTES).next_power_of_two()
}

/// Outcome of one [`DeviceMemPool::acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// Current bytes already resident — H2D skipped entirely.
    Hit,
    /// Not resident: H2D happens this launch.
    Miss {
        /// Whether the block is now tracked (false ⇒ oversized passthrough).
        pooled: bool,
        /// Resident blocks evicted to make room for this one.
        evicted: u64,
    },
}

impl Acquire {
    pub fn is_hit(&self) -> bool {
        matches!(self, Acquire::Hit)
    }
}

/// Counters for one device pool (or an aggregate over all devices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Residency hits (H2D skipped).
    pub hits: u64,
    /// Residency misses (H2D happened), including unpooled passthroughs.
    pub misses: u64,
    /// Resident blocks evicted under capacity pressure (LRU).
    pub evictions: u64,
    /// Blocks dropped by [`MemPool::invalidate_device`] (crash/evict path).
    pub invalidations: u64,
    /// Fresh device allocations (free list empty for the class).
    pub allocs: u64,
    /// Allocations served from a size-class free list.
    pub reuses: u64,
    /// Bytes currently resident (live blocks only, class-rounded).
    pub bytes_resident: u64,
    /// Bytes currently pooled: resident + free-listed. Never exceeds budget.
    pub bytes_pooled: u64,
    /// High-water mark of `bytes_pooled`.
    pub peak_bytes: u64,
    /// Payload bytes actually uploaded (misses).
    pub bytes_uploaded: u64,
    /// Payload bytes whose upload was skipped (hits).
    pub bytes_avoided: u64,
    /// Resident blocks whose fingerprint revalidation failed
    /// ([`DeviceMemPool::detect_corruption`]): counted here *and* as an
    /// invalidation, since the block is dropped.
    pub corruptions_detected: u64,
}

impl MemStats {
    /// Element-wise accumulate (gauges take the max/sum as appropriate:
    /// byte gauges sum across devices, peak sums too — it is a fleet-wide
    /// footprint bound, not a single-device maximum).
    fn absorb(&mut self, o: &MemStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.evictions += o.evictions;
        self.invalidations += o.invalidations;
        self.allocs += o.allocs;
        self.reuses += o.reuses;
        self.bytes_resident += o.bytes_resident;
        self.bytes_pooled += o.bytes_pooled;
        self.peak_bytes += o.peak_bytes;
        self.bytes_uploaded += o.bytes_uploaded;
        self.bytes_avoided += o.bytes_avoided;
        self.corruptions_detected += o.corruptions_detected;
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    class_bytes: u64,
    tick: u64,
}

/// One device's pool: resident map + per-class free lists + counters.
///
/// Eviction scans for the minimum LRU tick — O(resident) per eviction,
/// which is fine at the block counts a plan produces (one block per
/// operand×shard, tens at most); a heap would be noise here.
#[derive(Debug, Default)]
pub struct DeviceMemPool {
    budget_bytes: u64,
    resident: HashMap<BlockKey, Entry>,
    /// class_bytes → number of allocated-but-free blocks of that class.
    free: HashMap<u64, u64>,
    tick: u64,
    stats: MemStats,
}

impl DeviceMemPool {
    pub fn new(budget_bytes: u64) -> DeviceMemPool {
        DeviceMemPool {
            budget_bytes,
            ..DeviceMemPool::default()
        }
    }

    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Current counters (byte gauges reflect this instant).
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Drop one allocated-but-free block, largest class first (frees the
    /// most budget per bookkeeping step). Returns false if none exist.
    fn drop_one_free(&mut self) -> bool {
        let Some(&class) = self.free.keys().max() else {
            return false;
        };
        let n = self.free.get_mut(&class).expect("class present");
        *n -= 1;
        if *n == 0 {
            self.free.remove(&class);
        }
        self.stats.bytes_pooled -= class;
        true
    }

    /// Evict the least-recently-used resident block into its free list.
    /// Returns false if nothing is resident.
    fn evict_lru(&mut self) -> bool {
        let Some((&key, _)) = self.resident.iter().min_by_key(|(_, e)| e.tick) else {
            return false;
        };
        let entry = self.resident.remove(&key).expect("key present");
        self.stats.bytes_resident -= entry.class_bytes;
        self.stats.evictions += 1;
        *self.free.entry(entry.class_bytes).or_insert(0) += 1;
        true
    }

    /// Look up / install the block for `key` (`bytes` = payload size).
    ///
    /// Hit ⇒ the resident copy is current, H2D is skipped. Miss ⇒ the
    /// caller models the upload; the pool makes room first (free blocks,
    /// then LRU residents), so `bytes_pooled ≤ budget` holds throughout.
    pub fn acquire(&mut self, key: BlockKey, bytes: u64) -> Acquire {
        self.tick += 1;
        if let Some(entry) = self.resident.get_mut(&key) {
            entry.tick = self.tick;
            self.stats.hits += 1;
            self.stats.bytes_avoided += bytes;
            return Acquire::Hit;
        }
        self.stats.misses += 1;
        self.stats.bytes_uploaded += bytes;
        let class = size_class_bytes(bytes);
        if class > self.budget_bytes {
            // Oversized passthrough: shipped every launch, never tracked.
            return Acquire::Miss {
                pooled: false,
                evicted: 0,
            };
        }
        // Obtain a block: reuse a same-class free block when one exists,
        // allocate fresh when the budget has room, and otherwise make room
        // (drop idle free blocks, then evict residents in LRU order — an
        // eviction frees a block into its class list, so a same-class
        // eviction is claimed as a reuse on the next pass). Room is made
        // *before* allocating, so the budget is never exceeded, even
        // transiently.
        let evicted_before = self.stats.evictions;
        loop {
            if let Some(n) = self.free.get_mut(&class) {
                *n -= 1;
                if *n == 0 {
                    self.free.remove(&class);
                }
                self.stats.reuses += 1;
                break;
            }
            if self.stats.bytes_pooled + class <= self.budget_bytes {
                self.stats.allocs += 1;
                self.stats.bytes_pooled += class;
                self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes_pooled);
                break;
            }
            if !self.drop_one_free() && !self.evict_lru() {
                unreachable!("class ≤ budget yet nothing left to free");
            }
        }
        self.resident.insert(
            key,
            Entry {
                class_bytes: class,
                tick: self.tick,
            },
        );
        self.stats.bytes_resident += class;
        Acquire::Miss {
            pooled: true,
            evicted: self.stats.evictions - evicted_before,
        }
    }

    /// Drop every block (resident and free) — the device's memory is gone
    /// (crash) or untrusted (pool eviction). Counters other than the byte
    /// gauges are preserved; each live block counts one invalidation.
    pub fn invalidate_all(&mut self) {
        self.stats.invalidations += self.resident.len() as u64;
        self.resident.clear();
        self.free.clear();
        self.stats.bytes_resident = 0;
        self.stats.bytes_pooled = 0;
    }

    /// Number of live resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }

    /// Revalidation of a resident block's fingerprint failed (the strided
    /// re-sample of the device copy no longer matches the key): drop the
    /// block so the caller's next [`DeviceMemPool::acquire`] misses into a
    /// fresh upload. Returns whether a resident block was actually
    /// dropped — a non-resident key has nothing to corrupt. Counts one
    /// detected corruption *and* one invalidation; values are never read
    /// from residency, so the result of the launch is unchanged.
    pub fn detect_corruption(&mut self, key: BlockKey) -> bool {
        let Some(entry) = self.resident.remove(&key) else {
            return false;
        };
        self.stats.bytes_resident -= entry.class_bytes;
        self.stats.corruptions_detected += 1;
        self.stats.invalidations += 1;
        // the block's allocation itself is fine — only the bytes are
        // untrusted — so it returns to its class free list for reuse
        *self.free.entry(entry.class_bytes).or_insert(0) += 1;
        true
    }
}

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The multi-device pool `mdh-dist`/`mdh-runtime` thread through the
/// stack: one [`DeviceMemPool`] per device (independently locked, so
/// scoped shard threads touch disjoint devices without contention) plus
/// the shared [`VersionTable`].
#[derive(Debug)]
pub struct MemPool {
    devices: Vec<Mutex<DeviceMemPool>>,
    versions: VersionTable,
    budget_bytes: u64,
}

impl MemPool {
    /// `budget_bytes` is **per device**; 0 disables pooling entirely
    /// (every acquire is an unpooled miss — useful as the pool-off
    /// baseline in A/B tests).
    pub fn new(devices: usize, budget_bytes: u64) -> MemPool {
        MemPool {
            devices: (0..devices)
                .map(|_| Mutex::new(DeviceMemPool::new(budget_bytes)))
                .collect(),
            versions: VersionTable::new(),
            budget_bytes,
        }
    }

    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Whether pooling is active (budget > 0 and at least one device).
    pub fn enabled(&self) -> bool {
        self.budget_bytes > 0 && !self.devices.is_empty()
    }

    /// Content/version identity of `buf` under the pool's version table.
    pub fn operand_id(&self, buf: &Buffer) -> OperandId {
        OperandId::new(fingerprint_buffer(buf), self.versions.version_of(&buf.name))
    }

    /// Declare a host operand mutated in place; returns the new version.
    pub fn bump_version(&self, name: &str) -> u64 {
        self.versions.bump(name)
    }

    pub fn version_of(&self, name: &str) -> u64 {
        self.versions.version_of(name)
    }

    /// Acquire `key` on device `dev`. Out-of-range devices (host shards,
    /// CPU executors) are unpooled misses.
    pub fn acquire(&self, dev: usize, key: BlockKey, bytes: u64) -> Acquire {
        match self.devices.get(dev) {
            Some(d) => plock(d).acquire(key, bytes),
            None => Acquire::Miss {
                pooled: false,
                evicted: 0,
            },
        }
    }

    /// Crash/evict path: drop all residency on `dev`.
    pub fn invalidate_device(&self, dev: usize) {
        if let Some(d) = self.devices.get(dev) {
            plock(d).invalidate_all();
        }
    }

    /// Corruption path: the resident copy of `key` on `dev` failed its
    /// fingerprint revalidation. Drops the block (returning whether it
    /// was resident) so the next acquire misses into a fresh H2D.
    pub fn detect_corruption(&self, dev: usize, key: BlockKey) -> bool {
        match self.devices.get(dev) {
            Some(d) => plock(d).detect_corruption(key),
            None => false,
        }
    }

    /// Counters for one device.
    pub fn device_stats(&self, dev: usize) -> MemStats {
        self.devices
            .get(dev)
            .map(|d| plock(d).stats())
            .unwrap_or_default()
    }

    /// Aggregate counters over every device.
    pub fn stats(&self) -> MemStats {
        let mut total = MemStats::default();
        for d in &self.devices {
            total.absorb(&plock(d).stats());
        }
        total
    }
}

/// Modelled phase time (ms) for shards whose uploads share one serialized
/// host link, with **double-buffered** H2D: each shard's device starts
/// computing after the first half of its transfer, so the second half
/// overlaps compute.
///
/// Shard `i` (link occupied in shard order): compute finishes at
/// `link_start_i + h2d_i/2 + max(exec_i, h2d_i/2)`, and the link frees at
/// `link_start_i + h2d_i`. A hit (`h2d = 0`) degenerates to pure `exec`.
/// The phase is the slowest shard's finish time.
pub fn double_buffered_phase_ms(shards: &[(f64, f64)]) -> f64 {
    let mut link_cursor = 0.0f64;
    let mut phase = 0.0f64;
    for &(h2d, exec) in shards {
        let finish = link_cursor + h2d * 0.5 + exec.max(h2d * 0.5);
        phase = phase.max(finish);
        link_cursor += h2d;
    }
    phase
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u64, ver: u64, region: u64) -> BlockKey {
        BlockKey::new(OperandId::new(fp, ver), region)
    }

    #[test]
    fn miss_then_hit_then_version_miss() {
        let mut p = DeviceMemPool::new(1 << 20);
        let k = key(7, 0, 1);
        assert_eq!(
            p.acquire(k, 1000),
            Acquire::Miss {
                pooled: true,
                evicted: 0
            }
        );
        assert!(p.acquire(k, 1000).is_hit());
        assert!(p.acquire(k, 1000).is_hit());
        // version bump ⇒ different key ⇒ miss
        assert!(!p.acquire(key(7, 1, 1), 1000).is_hit());
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        assert_eq!(s.bytes_avoided, 2000);
        assert_eq!(s.bytes_uploaded, 2000);
    }

    #[test]
    fn size_classes_round_up_to_pow2() {
        assert_eq!(size_class_bytes(0), 256);
        assert_eq!(size_class_bytes(1), 256);
        assert_eq!(size_class_bytes(256), 256);
        assert_eq!(size_class_bytes(257), 512);
        assert_eq!(size_class_bytes(5000), 8192);
        assert_eq!(size_class_bytes(1 << 20), 1 << 20);
    }

    #[test]
    fn eviction_pressure_never_exceeds_budget() {
        // budget holds 4 × 1 KiB classes; working set is 16 blocks.
        let budget = 4 * 1024;
        let mut p = DeviceMemPool::new(budget);
        let mut last_evictions = 0;
        for round in 0..3u64 {
            for i in 0..16u64 {
                let out = p.acquire(key(i, 0, 0), 1000);
                assert!(!out.is_hit() || round > 0, "first round is all misses");
                let s = p.stats();
                assert!(
                    s.bytes_pooled <= budget,
                    "capacity exceeded: {} > {budget}",
                    s.bytes_pooled
                );
                assert!(s.bytes_resident <= s.bytes_pooled);
                assert!(s.evictions >= last_evictions, "monotone evictions");
                last_evictions = s.evictions;
            }
        }
        let s = p.stats();
        assert!(s.evictions > 0, "thrash must evict");
        assert_eq!(
            s.hits, 0,
            "LRU + round-robin sweep larger than budget ⇒ no hits"
        );
        assert_eq!(s.peak_bytes, budget);
        // churned blocks are same-class ⇒ free-list reuse after warmup
        assert!(s.reuses > 0, "expected size-class reuse, got {s:?}");
        assert_eq!(s.allocs, 4, "only the initial budget-filling allocs");
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let budget = 2 * 1024; // two 1 KiB-class blocks
        let mut p = DeviceMemPool::new(budget);
        let (a, b, c) = (key(1, 0, 0), key(2, 0, 0), key(3, 0, 0));
        p.acquire(a, 1000);
        p.acquire(b, 1000);
        assert!(p.acquire(a, 1000).is_hit()); // a is now most recent
        let out = p.acquire(c, 1000); // must evict b, not a
        assert_eq!(
            out,
            Acquire::Miss {
                pooled: true,
                evicted: 1
            }
        );
        assert!(p.acquire(a, 1000).is_hit(), "a survived");
        assert!(!p.acquire(b, 1000).is_hit(), "b was evicted");
    }

    #[test]
    fn oversized_blocks_are_unpooled_passthrough() {
        let mut p = DeviceMemPool::new(1024);
        let k = key(9, 0, 0);
        for _ in 0..3 {
            assert_eq!(
                p.acquire(k, 10_000),
                Acquire::Miss {
                    pooled: false,
                    evicted: 0
                }
            );
        }
        let s = p.stats();
        assert_eq!(s.bytes_pooled, 0, "passthrough never allocates");
        assert_eq!(s.misses, 3);
        // and it cannot evict pooled residents
        p.acquire(key(1, 0, 0), 512);
        p.acquire(k, 10_000);
        assert_eq!(p.stats().evictions, 0);
        assert!(p.acquire(key(1, 0, 0), 512).is_hit());
    }

    #[test]
    fn invalidate_drops_everything_but_keeps_history() {
        let mut p = DeviceMemPool::new(1 << 20);
        p.acquire(key(1, 0, 0), 4096);
        p.acquire(key(2, 0, 0), 4096);
        p.invalidate_all();
        let s = p.stats();
        assert_eq!(s.bytes_resident, 0);
        assert_eq!(s.bytes_pooled, 0);
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.misses, 2, "history preserved");
        assert!(!p.acquire(key(1, 0, 0), 4096).is_hit(), "no stale hits");
    }

    #[test]
    fn corruption_detection_invalidates_only_the_bad_block() {
        let mut p = DeviceMemPool::new(1 << 20);
        let (good, bad) = (key(1, 0, 0), key(2, 0, 0));
        p.acquire(good, 1000);
        p.acquire(bad, 1000);
        assert!(p.detect_corruption(bad), "resident block dropped");
        assert!(!p.detect_corruption(bad), "already gone: nothing to drop");
        let s = p.stats();
        assert_eq!(s.corruptions_detected, 1);
        assert_eq!(s.invalidations, 1);
        assert!(p.acquire(good, 1000).is_hit(), "good block untouched");
        assert!(!p.acquire(bad, 1000).is_hit(), "bad block re-uploads");
        // the dropped allocation was reusable: the re-upload claims it
        // from the free list instead of allocating fresh
        assert_eq!(p.stats().reuses, 1);
        assert!(p.acquire(bad, 1000).is_hit(), "fresh copy resident again");
    }

    #[test]
    fn corruption_on_unknown_key_or_device_is_inert() {
        let pool = MemPool::new(1, 1 << 20);
        assert!(!pool.detect_corruption(0, key(9, 0, 0)), "never resident");
        assert!(!pool.detect_corruption(5, key(9, 0, 0)), "no such device");
        assert_eq!(pool.stats().corruptions_detected, 0);
    }

    #[test]
    fn mempool_routes_devices_and_aggregates() {
        let pool = MemPool::new(2, 1 << 20);
        assert!(pool.enabled());
        let k = key(5, 0, 0);
        assert!(!pool.acquire(0, k, 100).is_hit());
        assert!(pool.acquire(0, k, 100).is_hit());
        assert!(!pool.acquire(1, k, 100).is_hit(), "devices are independent");
        // out-of-range device (host shard) is a passthrough miss
        assert_eq!(
            pool.acquire(7, k, 100),
            Acquire::Miss {
                pooled: false,
                evicted: 0
            }
        );
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        pool.invalidate_device(0);
        assert_eq!(pool.device_stats(0).bytes_resident, 0);
        assert!(pool.device_stats(1).bytes_resident > 0);
    }

    #[test]
    fn zero_budget_disables_pooling() {
        let pool = MemPool::new(2, 0);
        assert!(!pool.enabled());
        let k = key(5, 0, 0);
        for _ in 0..3 {
            assert_eq!(
                pool.acquire(0, k, 100),
                Acquire::Miss {
                    pooled: false,
                    evicted: 0
                }
            );
        }
    }

    #[test]
    fn double_buffered_model_degenerates_and_overlaps() {
        // all hits: pure exec, max across shards
        assert_eq!(double_buffered_phase_ms(&[(0.0, 2.0), (0.0, 3.0)]), 3.0);
        // single miss, exec dominates: h2d/2 + exec
        assert!((double_buffered_phase_ms(&[(1.0, 4.0)]) - 4.5).abs() < 1e-12);
        // single miss, transfer dominates: full h2d
        assert!((double_buffered_phase_ms(&[(4.0, 1.0)]) - 4.0).abs() < 1e-12);
        // serialized link: second shard waits for the first upload
        let two = double_buffered_phase_ms(&[(2.0, 1.0), (2.0, 1.0)]);
        // shard0: 0 + 1 + max(1,1) = 2; shard1: 2 + 1 + max(1,1) = 4
        assert!((two - 4.0).abs() < 1e-12);
        // double-buffering is never slower than the serialized model
        for shards in [
            vec![(1.0, 1.0), (0.5, 2.0), (3.0, 0.25)],
            vec![(0.0, 1.0), (2.0, 2.0)],
        ] {
            let serial: f64 = {
                let mut cum = 0.0f64;
                let mut phase = 0.0f64;
                for &(h2d, exec) in &shards {
                    cum += h2d;
                    phase = phase.max(cum + exec);
                }
                phase
            };
            assert!(double_buffered_phase_ms(&shards) <= serial + 1e-12);
        }
    }
}
