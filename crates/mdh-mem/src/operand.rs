//! Operand identity: the content/version key residency tracking hangs off.
//!
//! A resident device block is current exactly when the *host operand it
//! was uploaded from* is unchanged. Two signals decide that:
//!
//! * a **cheap content fingerprint** ([`fingerprint_buffer`]): FNV-1a over
//!   the buffer's name, element type, shape, and a strided sample of its
//!   element bit patterns. Sampling keeps the cost O(1)-ish (at most
//!   [`FINGERPRINT_SAMPLES`] elements, however large the operand), so a
//!   16M-element weights matrix fingerprints in sub-microsecond time on a
//!   serving hot path. The price of sampling is that a mutation confined
//!   to unsampled elements is invisible to the fingerprint — which is why
//!   the second signal exists;
//! * an **explicit version** ([`VersionTable`]): callers that mutate an
//!   operand in place bump its version (`bump("weights")`), which changes
//!   every [`BlockKey`] derived from it and forces re-upload regardless of
//!   what the sampled fingerprint sees. This is the `acc update device`
//!   analogue: the host declares staleness instead of the pool guessing.
//!
//! The composed [`OperandId`] (fingerprint × version) plus a plan-visible
//! region signature (which sub-range of the operand a device actually
//! holds — computed by `mdh_lowering::partition`) forms the full residency
//! key, [`BlockKey`].

use mdh_core::buffer::{Buffer, BufferData};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Maximum elements sampled by [`fingerprint_buffer`]. 128 strided probes
/// catch whole-buffer refills (the common case: a new request payload)
/// while keeping fingerprinting cost independent of operand size.
pub const FINGERPRINT_SAMPLES: usize = 128;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_eat(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fnv_str(h: &mut u64, s: &str) {
    fnv_eat(h, s.as_bytes());
    fnv_eat(h, &[0xff]); // terminator so "ab"+"c" != "a"+"bc"
}

/// Strided sample of `len` positions: always the first and last elements,
/// plus evenly spaced interior probes, `FINGERPRINT_SAMPLES` at most.
fn sample_positions(len: usize) -> impl Iterator<Item = usize> {
    let n = len.clamp(1, FINGERPRINT_SAMPLES);
    let last = len.saturating_sub(1);
    (0..n).map(move |i| {
        if n == 1 {
            0
        } else {
            // exact endpoints, monotone interior stride
            (i * last) / (n - 1)
        }
    })
}

/// Cheap content fingerprint of a host operand. See the module docs for
/// the sampling contract; identical buffers always agree, and any change
/// visible in the sampled positions (or in name/type/shape/length)
/// changes the fingerprint.
pub fn fingerprint_buffer(buf: &Buffer) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_str(&mut h, &buf.name);
    fnv_eat(&mut h, &(buf.len() as u64).to_le_bytes());
    fnv_eat(&mut h, &(buf.size_bytes() as u64).to_le_bytes());
    for &d in buf.shape.0.iter() {
        fnv_eat(&mut h, &(d as u64).to_le_bytes());
    }
    match &buf.data {
        BufferData::F32(v) => {
            for i in sample_positions(v.len()) {
                fnv_eat(&mut h, &v[i].to_bits().to_le_bytes());
            }
        }
        BufferData::F64(v) => {
            for i in sample_positions(v.len()) {
                fnv_eat(&mut h, &v[i].to_bits().to_le_bytes());
            }
        }
        BufferData::I32(v) => {
            for i in sample_positions(v.len()) {
                fnv_eat(&mut h, &v[i].to_le_bytes());
            }
        }
        BufferData::I64(v) => {
            for i in sample_positions(v.len()) {
                fnv_eat(&mut h, &v[i].to_le_bytes());
            }
        }
        BufferData::Bool(v) => {
            for i in sample_positions(v.len()) {
                fnv_eat(&mut h, &[u8::from(v[i])]);
            }
        }
        BufferData::Char(v) => {
            for i in sample_positions(v.len()) {
                fnv_eat(&mut h, &[v[i]]);
            }
        }
        BufferData::Record(rec) => {
            // record buffers: sample every column (they are independent
            // field arrays, so a probe per column is the cheap analogue)
            for col in &rec.columns {
                for i in sample_positions(col.len()) {
                    let bits = col.get(i).as_f64().unwrap_or(f64::NAN).to_bits();
                    fnv_eat(&mut h, &bits.to_le_bytes());
                }
            }
        }
    }
    h
}

/// Content/version identity of one host operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandId {
    /// Sampled content fingerprint of the host buffer.
    pub fingerprint: u64,
    /// Explicit version from the [`VersionTable`] (0 until first bump).
    pub version: u64,
}

impl OperandId {
    pub fn new(fingerprint: u64, version: u64) -> OperandId {
        OperandId {
            fingerprint,
            version,
        }
    }
}

/// Full residency key of one device-resident block: *which data*
/// ([`OperandId`]) covering *which sub-range* (the plan-visible region
/// signature the partitioner computes for each shard's slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    pub operand: OperandId,
    /// Plan-visible region signature (hash of the shard sub-range along
    /// the dimensions the operand's accesses depend on).
    pub region: u64,
}

impl BlockKey {
    pub fn new(operand: OperandId, region: u64) -> BlockKey {
        BlockKey { operand, region }
    }
}

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Explicit operand versions, keyed by buffer name. Bumping a name
/// invalidates every resident block derived from that operand, on every
/// device, without touching the pools: the version is part of the key, so
/// stale blocks simply stop being addressable and age out via LRU.
#[derive(Debug, Default)]
pub struct VersionTable {
    versions: Mutex<HashMap<String, u64>>,
}

impl VersionTable {
    pub fn new() -> VersionTable {
        VersionTable::default()
    }

    /// Current version of `name` (0 until first bump).
    pub fn version_of(&self, name: &str) -> u64 {
        plock(&self.versions).get(name).copied().unwrap_or(0)
    }

    /// Declare `name` host-mutated; returns the new version. Every
    /// subsequent [`BlockKey`] for this operand misses until re-upload.
    pub fn bump(&self, name: &str) -> u64 {
        let mut v = plock(&self.versions);
        let slot = v.entry(name.to_string()).or_insert(0);
        *slot += 1;
        *slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::shape::Shape;
    use mdh_core::types::BasicType;

    fn filled(name: &str, n: usize, salt: usize) -> Buffer {
        let mut b = Buffer::zeros(name, BasicType::F32, Shape::new(vec![n]));
        b.fill_with(move |i| ((i.wrapping_add(salt).wrapping_mul(2654435761)) % 97) as f64);
        b
    }

    #[test]
    fn identical_buffers_agree() {
        let a = filled("w", 10_000, 3);
        let b = filled("w", 10_000, 3);
        assert_eq!(fingerprint_buffer(&a), fingerprint_buffer(&b));
    }

    #[test]
    fn content_name_and_shape_all_matter() {
        let base = filled("w", 4096, 1);
        assert_ne!(
            fingerprint_buffer(&base),
            fingerprint_buffer(&filled("w", 4096, 2)),
            "different fill"
        );
        assert_ne!(
            fingerprint_buffer(&base),
            fingerprint_buffer(&filled("v", 4096, 1)),
            "different name"
        );
        assert_ne!(
            fingerprint_buffer(&base),
            fingerprint_buffer(&filled("w", 4097, 1)),
            "different length"
        );
        let mut reshaped = filled("w", 4096, 1);
        reshaped.shape = Shape::new(vec![64, 64]);
        assert_ne!(
            fingerprint_buffer(&base),
            fingerprint_buffer(&reshaped),
            "different shape, same bytes"
        );
    }

    #[test]
    fn endpoint_mutations_are_always_visible() {
        // first and last elements are always sampled, whatever the size
        for n in [1usize, 2, 100, 100_000] {
            let base = filled("w", n, 5);
            let mut head = base.clone();
            head.set_flat(0, &mdh_core::types::Value::F64(1234.5))
                .unwrap();
            assert_ne!(fingerprint_buffer(&base), fingerprint_buffer(&head));
            let mut tail = base.clone();
            tail.set_flat(n - 1, &mdh_core::types::Value::F64(-77.0))
                .unwrap();
            assert_ne!(fingerprint_buffer(&base), fingerprint_buffer(&tail));
        }
    }

    #[test]
    fn sample_positions_are_bounded_and_cover_endpoints() {
        for n in [1usize, 7, 128, 129, 1 << 20] {
            let pos: Vec<usize> = sample_positions(n).collect();
            assert!(pos.len() <= FINGERPRINT_SAMPLES);
            assert_eq!(pos[0], 0);
            assert_eq!(*pos.last().unwrap(), n - 1);
            assert!(pos.windows(2).all(|w| w[0] <= w[1]), "monotone");
        }
    }

    #[test]
    fn version_table_bumps_invalidate_keys() {
        let table = VersionTable::new();
        assert_eq!(table.version_of("weights"), 0);
        let fp = fingerprint_buffer(&filled("weights", 64, 1));
        let before = BlockKey::new(OperandId::new(fp, table.version_of("weights")), 42);
        assert_eq!(table.bump("weights"), 1);
        assert_eq!(table.bump("weights"), 2);
        let after = BlockKey::new(OperandId::new(fp, table.version_of("weights")), 42);
        assert_ne!(before, after, "bump must change the residency key");
        assert_eq!(table.version_of("other"), 0, "names are independent");
    }
}
