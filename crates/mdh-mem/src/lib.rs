//! # mdh-mem — device-resident buffer pool
//!
//! The transfer wall is the standout gap in the dist numbers: every launch
//! re-ships every input, so `transfer_share` ≈ 0.99 for bandwidth-bound
//! programs and adding devices buys nothing cold. This crate is the
//! missing layer between the partitioner and the executors: a per-device
//! **memory pool with residency tracking**, so the "millions of requests
//! hitting shared weights" shape uploads the weights once and then serves
//! from device memory.
//!
//! Three pieces:
//!
//! * [`operand`] — *what is resident*: a cheap sampled content fingerprint
//!   plus an explicit version-bump API ([`VersionTable`]) compose into an
//!   [`OperandId`]; together with the plan-visible region signature (which
//!   slice of the operand a shard holds) that forms the [`BlockKey`].
//! * [`pool`] — *where it lives*: per-device size-class sub-pools under a
//!   capacity budget with LRU eviction ([`DeviceMemPool`]), wrapped for
//!   concurrent multi-device use ([`MemPool`]), plus the double-buffered
//!   H2D/compute overlap model ([`double_buffered_phase_ms`]).
//! * The integration lives downstream: `mdh-dist` consults the pool before
//!   shipping shard inputs and invalidates residency when it evicts a
//!   crashed device; `mdh-runtime` owns one pool per device pool and
//!   surfaces the counters in `RuntimeStats`.
//!
//! Correctness stance: residency is a *performance model* decision only.
//! Shard values are always computed from host operands, so results are
//! bit-identical with the pool on or off, across widths, device counts,
//! and fault schedules — property-tested in `mdh-dist/tests/mem_props.rs`.

pub mod operand;
pub mod pool;

pub use operand::{fingerprint_buffer, BlockKey, OperandId, VersionTable, FINGERPRINT_SAMPLES};
pub use pool::{
    double_buffered_phase_ms, size_class_bytes, Acquire, DeviceMemPool, MemPool, MemStats,
    MIN_CLASS_BYTES,
};
