//! Golden-hash registry coverage over the Fig. 3 studies.
//!
//! Every study runs twice — once through the fast-path registry (Auto)
//! and once with the registry force-disabled (ForceVm) — and the two
//! output hashes must be identical, bit for bit. The test also records
//! *which* studies compile a fast kernel and pins that set: if a future
//! change silently drops a study off the fast path (or silently adds
//! one), the expectation table here fails loudly instead of the
//! regression hiding inside a benchmark delta.

use mdh_apps::{instantiate, Scale, FIG3_STUDIES};
use mdh_backend::fast;
use mdh_backend::{CpuExecutor, ExecPath, FastMode};
use mdh_core::buffer::{Buffer, BufferData, Column};
use mdh_lowering::{mdh_default_schedule, DeviceKind};

/// FNV-1a over the raw output bits, mirroring `exec_throughput`'s
/// output hashing so divergence here matches divergence in the bench.
fn fnv1a(bufs: &[Buffer]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    let column = |c: &Column, eat: &mut dyn FnMut(&[u8])| match c {
        Column::F32(v) => v.iter().for_each(|x| eat(&x.to_bits().to_le_bytes())),
        Column::F64(v) => v.iter().for_each(|x| eat(&x.to_bits().to_le_bytes())),
        Column::I32(v) => v.iter().for_each(|x| eat(&x.to_le_bytes())),
        Column::I64(v) => v.iter().for_each(|x| eat(&x.to_le_bytes())),
        Column::Bool(v) => v.iter().for_each(|x| eat(&[*x as u8])),
        Column::Char(v) => eat(v),
    };
    for b in bufs {
        match &b.data {
            BufferData::F32(v) => v.iter().for_each(|x| eat(&x.to_bits().to_le_bytes())),
            BufferData::F64(v) => v.iter().for_each(|x| eat(&x.to_bits().to_le_bytes())),
            BufferData::I32(v) => v.iter().for_each(|x| eat(&x.to_le_bytes())),
            BufferData::I64(v) => v.iter().for_each(|x| eat(&x.to_le_bytes())),
            BufferData::Bool(v) => v.iter().for_each(|x| eat(&[*x as u8])),
            BufferData::Char(v) => eat(v),
            BufferData::Record(r) => r.columns.iter().for_each(|c| column(c, &mut eat)),
        }
    }
    h
}

/// Studies expected to compile a fast kernel at Small scale. PRL is the
/// lone exception: its record-tuple custom combine is outside the
/// `cc`/`pw(add)` subset the fast path admits.
fn expect_fast(name: &str) -> bool {
    name != "PRL"
}

#[test]
fn fig3_fast_path_hashes_match_vm_and_coverage_is_pinned() {
    let auto = CpuExecutor::new(4).unwrap();
    let vm = CpuExecutor::new(4)
        .unwrap()
        .with_fast_mode(FastMode::ForceVm);
    assert_eq!(auto.fast_mode(), FastMode::Auto);
    assert_eq!(vm.fast_mode(), FastMode::ForceVm);

    let mut seen = Vec::new();
    for &id in FIG3_STUDIES {
        let app = instantiate(id, Scale::Small).unwrap();
        let path = auto.path_for(&app.program);
        if expect_fast(&app.name) {
            assert_eq!(
                path,
                ExecPath::Fast,
                "{} no.{} silently fell off the fast path",
                app.name,
                app.input_no
            );
        } else {
            assert_ne!(
                path,
                ExecPath::Fast,
                "{} no.{} unexpectedly joined the fast path — update the table",
                app.name,
                app.input_no
            );
            let reason = fast::classify(&app.program).unwrap_err();
            assert!(!reason.is_empty(), "{}: empty fallback reason", app.name);
        }

        let schedule = mdh_default_schedule(&app.program, DeviceKind::Cpu, 4);
        let (hits0, _) = fast::registry().counters();
        let fast_out = auto.run(&app.program, &schedule, &app.inputs).unwrap();
        let (hits1, _) = fast::registry().counters();
        if path == ExecPath::Fast {
            assert!(
                hits1 > hits0,
                "{} routed Fast but recorded no kernel hit",
                app.name
            );
        }
        let vm_out = vm.run(&app.program, &schedule, &app.inputs).unwrap();
        let fh = fnv1a(&fast_out);
        let vh = fnv1a(&vm_out);
        assert_eq!(
            fh, vh,
            "{} no.{}: fast hash {fh:#018x} != vm hash {vh:#018x}",
            app.name, app.input_no
        );
        seen.push((app.name.clone(), path == ExecPath::Fast));
    }

    // every unique study appears, and the fast set is exactly the table
    let fast_names: Vec<&str> = seen
        .iter()
        .filter(|(_, f)| *f)
        .map(|(n, _)| n.as_str())
        .collect();
    assert!(fast_names.contains(&"MatMul"));
    assert!(fast_names.contains(&"Dot"));
    assert!(!fast_names.contains(&"PRL"));
}
