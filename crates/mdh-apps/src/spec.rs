//! Case-study framework: instances, scales, and Fig. 3 metadata.

use mdh_baselines::vendor::VendorOp;
use mdh_core::buffer::Buffer;
use mdh_core::dsl::DslProgram;

/// Input-size scale.
///
/// `Paper` reproduces Fig. 3's sizes exactly (intended for the GPU
/// simulator's analytic timing and for one-shot CPU runs); `Medium`
/// shrinks the largest dimensions so repeated *measured* CPU runs finish
/// quickly while preserving each study's shape character (e.g. PRL input
/// 1 keeps its small-cc/large-reduction skew); `Small` is for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Paper,
    Medium,
    Small,
}

impl Scale {
    /// Pick a size by scale.
    pub fn pick(self, paper: usize, medium: usize, small: usize) -> usize {
        match self {
            Scale::Paper => paper,
            Scale::Medium => medium,
            Scale::Small => small,
        }
    }
}

/// A fully-instantiated case study.
pub struct AppInstance {
    /// Fig. 3 computation name, e.g. "MatVec".
    pub name: String,
    /// Data-set number within the study (Fig. 3's "No." column).
    pub input_no: usize,
    /// Fig. 3 domain, e.g. "Simulation".
    pub domain: String,
    pub program: DslProgram,
    pub inputs: Vec<Buffer>,
    /// The vendor-library operation covering this study, if any.
    pub vendor_op: Option<VendorOp>,
    /// Human-readable input sizes (Fig. 3's "Sizes" columns).
    pub sizes_desc: String,
}

impl AppInstance {
    /// Fig. 3 "Basic Type" column.
    pub fn basic_type_desc(&self) -> String {
        let mut tys: Vec<String> = self
            .program
            .inp_view
            .buffers
            .iter()
            .map(|b| b.ty.to_string())
            .collect();
        tys.dedup();
        if tys.len() == 1 {
            tys.pop().unwrap()
        } else {
            format!("{{{}}}", tys.join(", "))
        }
    }
}
