//! Deep-learning case studies: MCC (multi-channel convolution,
//! Listing 12) and MCC_Caps (its capsule-network generalisation, the
//! 10-dimensional workload of Fig. 3).

use crate::data::f32_buffer;
use crate::spec::{AppInstance, Scale};
use mdh_baselines::vendor::VendorOp;
use mdh_core::error::Result;
use mdh_directive::{compile, DirectiveEnv};

/// Multi-channel convolution with stride 2 (Listing 12): 7D iteration
/// space `(n, p, q, k, r, s, c)`, three `pw(add)` reduction dimensions.
///
/// Input 1 is the deep ResNet-50 layer (`K=C=512`, 7×7 output); input 2
/// the first layer (`230×230×3` image, 64 7×7 filters).
pub fn mcc(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let (n, p, q, k, r, s, c) = match input_no {
        1 => (
            1,
            scale.pick(7, 7, 2),
            scale.pick(7, 7, 2),
            scale.pick(512, 128, 4),
            3,
            3,
            scale.pick(512, 128, 3),
        ),
        _ => (
            1,
            scale.pick(112, 56, 3),
            scale.pick(112, 56, 3),
            scale.pick(64, 32, 4),
            scale.pick(7, 7, 3),
            scale.pick(7, 7, 3),
            3,
        ),
    };
    let src = "\
@mdh( out( res = Buffer[fp32] ),
      inp( img = Buffer[fp32, [N, 2*P+R-1, 2*Q+S-1, C]],
           flt = Buffer[fp32] ),
      combine_ops( cc, cc, cc, cc, pw(add), pw(add), pw(add) ) )
def mcc(res, img, flt):
    for n in range(N):
        for p in range(P):
            for q in range(Q):
                for k in range(K):
                    for r in range(R):
                        for s in range(S):
                            for c in range(C):
                                res[n, p, q, k] = img[n, 2*p+r, 2*q+s, c] * flt[k, r, s, c]
";
    let env = DirectiveEnv::new()
        .size("N", n as i64)
        .size("P", p as i64)
        .size("Q", q as i64)
        .size("K", k as i64)
        .size("R", r as i64)
        .size("S", s as i64)
        .size("C", c as i64);
    let program = compile(src, &env)?;
    let (ih, iw) = (2 * p + r - 1, 2 * q + s - 1);
    Ok(AppInstance {
        name: "MCC".into(),
        input_no,
        domain: "Deep Learning".into(),
        program,
        inputs: vec![
            f32_buffer("mcc_img", vec![n, ih, iw, c]),
            f32_buffer("mcc_flt", vec![k, r, s, c]),
        ],
        vendor_op: Some(VendorOp::Conv2d {
            n,
            p,
            q,
            o: k,
            r,
            s,
            c,
            caps: 1,
        }),
        sizes_desc: format!("{n}x{ih}x{iw}x{c} | {k}x{r}x{s}x{c}"),
    })
}

/// Capsule-style convolution: each spatial position carries a 4×4 pose
/// matrix; the kernel contracts pose matrices while convolving — a
/// 10-dimensional iteration space `(n, p, q, k, m1, m2, u, r, s, c)` with
/// four reduction dimensions. "Known to be particularly challenging to
/// optimize" [Barham & Isard, HotOS'19].
pub fn mcc_caps(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let (n, p, q, k, r, s, c) = match input_no {
        1 => (
            scale.pick(16, 2, 1),
            scale.pick(112, 28, 2),
            scale.pick(112, 28, 2),
            scale.pick(64, 16, 2),
            scale.pick(7, 7, 3),
            scale.pick(7, 7, 3),
            3,
        ),
        _ => (
            1,
            scale.pick(112, 40, 2),
            scale.pick(112, 40, 2),
            scale.pick(64, 16, 2),
            scale.pick(7, 7, 3),
            scale.pick(7, 7, 3),
            3,
        ),
    };
    let m = scale.pick(4, 4, 2); // pose-matrix dimension
    let src = "\
@mdh( out( res = Buffer[fp32] ),
      inp( img = Buffer[fp32, [N, 2*P+R-1, 2*Q+S-1, C, M, M]],
           flt = Buffer[fp32] ),
      combine_ops( cc, cc, cc, cc, cc, cc, pw(add), pw(add), pw(add), pw(add) ) )
def mcc_caps(res, img, flt):
    for n in range(N):
        for p in range(P):
            for q in range(Q):
                for k in range(K):
                    for m1 in range(M):
                        for m2 in range(M):
                            for u in range(M):
                                for r in range(R):
                                    for s in range(S):
                                        for c in range(C):
                                            res[n, p, q, k, m1, m2] = img[n, 2*p+r, 2*q+s, c, u, m2] * flt[k, r, s, c, m1, u]
";
    let env = DirectiveEnv::new()
        .size("N", n as i64)
        .size("P", p as i64)
        .size("Q", q as i64)
        .size("K", k as i64)
        .size("M", m as i64)
        .size("R", r as i64)
        .size("S", s as i64)
        .size("C", c as i64);
    let program = compile(src, &env)?;
    let (ih, iw) = (2 * p + r - 1, 2 * q + s - 1);
    Ok(AppInstance {
        name: "MCC_Caps".into(),
        input_no,
        domain: "Deep Learning".into(),
        program,
        inputs: vec![
            f32_buffer("caps_img", vec![n, ih, iw, c, m, m]),
            f32_buffer("caps_flt", vec![k, r, s, c, m, m]),
        ],
        // the vendor library has no capsule primitive; the closest
        // (timing-only) mapping folds poses into channels
        vendor_op: Some(VendorOp::Conv2d {
            n,
            p,
            q,
            o: k,
            r,
            s,
            c,
            caps: m * m,
        }),
        sizes_desc: format!("{n}x{ih}x{iw}x{c}x{m}x{m} | {k}x{r}x{s}x{c}x{m}x{m}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_backend::cpu::{CpuExecutor, ExecPath};
    use mdh_core::eval::evaluate_recursive;
    use mdh_lowering::asm::DeviceKind;
    use mdh_lowering::heuristics::mdh_default_schedule;

    #[test]
    fn mcc_small_matches_handwritten() {
        let app = mcc(Scale::Small, 1).unwrap();
        let out = evaluate_recursive(&app.program, &app.inputs).unwrap();
        let (n, p, q, k, r, s, c) = (1usize, 2usize, 2usize, 4usize, 3usize, 3usize, 3usize);
        let (ih, iw) = (2 * p + r - 1, 2 * q + s - 1);
        let img = app.inputs[0].as_f32().unwrap();
        let flt = app.inputs[1].as_f32().unwrap();
        let res = out[0].as_f32().unwrap();
        for nn in 0..n {
            for pp in 0..p {
                for qq in 0..q {
                    for kk in 0..k {
                        let mut e = 0f32;
                        for rr in 0..r {
                            for ss in 0..s {
                                for cc in 0..c {
                                    let ii = ((nn * ih + 2 * pp + rr) * iw + 2 * qq + ss) * c + cc;
                                    let fi = ((kk * r + rr) * s + ss) * c + cc;
                                    e += img[ii] * flt[fi];
                                }
                            }
                        }
                        let oi = ((nn * p + pp) * q + qq) * k + kk;
                        assert!((res[oi] - e).abs() < 1e-3, "res[{nn},{pp},{qq},{kk}]");
                    }
                }
            }
        }
    }

    #[test]
    fn mcc_matches_vendor_conv() {
        let app = mcc(Scale::Small, 2).unwrap();
        let vendor = mdh_baselines::vendor::VendorCpu::new(2);
        let (vout, _) = vendor
            .run(app.vendor_op.as_ref().unwrap(), &app.inputs)
            .unwrap();
        let expect = evaluate_recursive(&app.program, &app.inputs).unwrap();
        for (a, b) in vout[0]
            .as_f32()
            .unwrap()
            .iter()
            .zip(expect[0].as_f32().unwrap())
        {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn mcc_caps_is_10d_with_4_reductions() {
        let app = mcc_caps(Scale::Small, 1).unwrap();
        assert_eq!(app.program.rank(), 10);
        assert_eq!(app.program.md_hom.reduction_dims().len(), 4);
    }

    #[test]
    fn mcc_caps_small_runs_and_matches_reference() {
        let app = mcc_caps(Scale::Small, 2).unwrap();
        let exec = CpuExecutor::new(4).unwrap();
        assert_eq!(exec.path_for(&app.program), ExecPath::Fast);
        let expect = evaluate_recursive(&app.program, &app.inputs).unwrap();
        let s = mdh_default_schedule(&app.program, DeviceKind::Cpu, 4);
        let got = exec.run(&app.program, &s, &app.inputs).unwrap();
        assert!(got[0].approx_eq(&expect[0], 1e-3));
    }

    #[test]
    fn mcc_buffer_shapes_match_fig3() {
        // input 2 at paper scale: the 230x230x3 image of Fig. 3
        let app = mcc(Scale::Paper, 2).unwrap();
        assert_eq!(app.program.input_shapes().unwrap()[0], vec![1, 230, 230, 3]);
        assert_eq!(app.program.input_shapes().unwrap()[1], vec![64, 7, 7, 3]);
    }
}
