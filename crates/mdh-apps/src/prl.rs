//! Probabilistic Record Linkage (PRL) — the data-mining case study
//! (Listing 11, [Rasch et al., SAC 2019]).
//!
//! For each of `N` new records (patients to be added), PRL scans all `I`
//! database records, computes a probabilistic match weight per pair, and
//! keeps the best match — a reduction with a *custom tuple-valued combine
//! operator* over three output buffers (`match_id`, `match_weight`,
//! `id_measure`). This operator is exactly what OpenMP/OpenACC reduction
//! clauses and TVM's `comm_reducer` cannot express, and the
//! control-flow-carrying body is what breaks Pluto's polyhedral
//! extraction.
//!
//! Data: synthetic EKR-style registry records (see DESIGN.md §4); the
//! real German cancer-registry data is not redistributable.

use crate::data::{record_buffer, rng_for};
use crate::spec::{AppInstance, Scale};
use mdh_core::combine::PwFunc;
use mdh_core::error::Result;
use mdh_core::expr::{BinOp, Expr, ScalarFunction, Stmt};
use mdh_core::types::{BasicType, FieldType, RecordType, ScalarKind, Value};
use mdh_directive::{compile, DirectiveEnv};
use rand::Rng;
use std::sync::Arc;

/// Number of compared record fields.
pub const FIELDS: usize = 12;

/// Per-field agreement weights (match weights in the Fellegi–Sunter
/// sense).
pub const AGREE_W: [f64; FIELDS] = [2.5, 1.8, 3.1, 1.2, 2.2, 0.9, 1.4, 2.8, 0.7, 1.9, 3.3, 1.1];

/// Per-field disagreement penalty.
pub const DISAGREE_W: f64 = -0.3;

/// The database record type (`db18`-style, Listing 11).
pub fn db_record() -> Arc<RecordType> {
    RecordType::new(
        "db_rec",
        vec![
            ("id".into(), FieldType::Scalar(ScalarKind::I64)),
            ("values".into(), FieldType::Array(ScalarKind::F64, FIELDS)),
        ],
    )
}

/// The query record type.
pub fn query_record() -> Arc<RecordType> {
    RecordType::new(
        "qr_rec",
        vec![("values".into(), FieldType::Array(ScalarKind::F64, FIELDS))],
    )
}

/// The custom combine operator `prl_max`: priority to full matches
/// (`id_measure == FIELDS`), then leftmost-maximum match weight.
/// Associative and (up to leftmost tie-breaking) the fold the paper's
/// Listing 11 computes.
pub fn prl_max() -> PwFunc {
    let assign = |suffix: &str, from: usize| -> Vec<Stmt> {
        vec![Stmt::Assign {
            name: format!("res_{suffix}"),
            value: Expr::Param(from),
        }]
    };
    let take = |side: usize| -> Vec<Stmt> {
        // side 0 = lhs (params 0..3), side 1 = rhs (params 3..6)
        let base = side * 3;
        let mut v = assign("id", base);
        v.extend(assign("w", base + 1));
        v.extend(assign("m", base + 2));
        v
    };
    let full = Expr::lit_i64(FIELDS as i64);
    let lhs_full = Expr::eq(Expr::Param(2), full.clone());
    let rhs_full = Expr::eq(Expr::Param(5), full);
    let f = ScalarFunction {
        name: "prl_max".into(),
        params: vec![
            ("lhs_id".into(), BasicType::I64),
            ("lhs_w".into(), BasicType::F64),
            ("lhs_m".into(), BasicType::I32),
            ("rhs_id".into(), BasicType::I64),
            ("rhs_w".into(), BasicType::F64),
            ("rhs_m".into(), BasicType::I32),
        ],
        results: vec![
            ("res_id".into(), BasicType::I64),
            ("res_w".into(), BasicType::F64),
            ("res_m".into(), BasicType::I32),
        ],
        body: vec![Stmt::If {
            cond: Expr::and(
                lhs_full.clone(),
                Expr::Un(mdh_core::expr::UnOp::Not, Box::new(rhs_full.clone())),
            ),
            then_branch: take(0),
            else_branch: vec![Stmt::If {
                cond: Expr::and(
                    rhs_full,
                    Expr::Un(mdh_core::expr::UnOp::Not, Box::new(lhs_full)),
                ),
                then_branch: take(1),
                else_branch: vec![Stmt::If {
                    cond: Expr::Bin(
                        BinOp::Ge,
                        Box::new(Expr::Param(1)),
                        Box::new(Expr::Param(4)),
                    ),
                    then_branch: take(0),
                    else_branch: take(1),
                }],
            }],
        }],
    };
    PwFunc::custom(f).expect("prl_max is a valid combine function")
}

/// The PRL directive source: six unrolled field comparisons accumulating
/// the match weight and agreement count, then per-pair results combined
/// with `pw(prl_max)` along the database dimension.
fn prl_source() -> String {
    let mut body = String::new();
    for f in 0..FIELDS {
        let w = AGREE_W[f];
        body.push_str(&format!(
            "            if abs(queries[n].values[{f}] - probM[i].values[{f}]) < 0.1:\n\
             \x20               tmp_w = tmp_w + {w}\n\
             \x20               tmp_m = tmp_m + 1\n\
             \x20           else:\n\
             \x20               tmp_w = tmp_w - 0.3\n"
        ));
    }
    format!(
        "\
@mdh( out( match_id = Buffer[int64], match_weight = Buffer[fp64], id_measure = Buffer[int32] ),
      inp( queries = Buffer[qr_rec], probM = Buffer[db_rec] ),
      combine_ops( cc, pw(prl_max) ) )
def prl(match_id, match_weight, id_measure, queries, probM):
    for n in range(N):
        for i in range(I):
            tmp_w: fp64
            tmp_m: int32
{body}            match_id[n] = probM[i].id
            match_weight[n] = tmp_w
            id_measure[n] = tmp_m
"
    )
}

/// Quantised field value generator (agreement = exact quantised match).
fn field_value(rng: &mut impl Rng) -> f64 {
    (rng.gen_range(0..16) as f64) * 0.5
}

/// Build the PRL instance. Input 1 is the realistic skew (small `N` of
/// new patients, large database `I`); input 2 artificially enlarges `N`
/// (Section 5.2's discussion).
pub fn prl(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let (n, i) = match input_no {
        1 => (
            scale.pick(1 << 10, 1 << 8, 6),
            scale.pick(1 << 15, 1 << 12, 24),
        ),
        _ => (
            scale.pick(1 << 15, 1 << 11, 16),
            scale.pick(1 << 15, 1 << 11, 24),
        ),
    };
    let db = db_record();
    let qr = query_record();
    let env = DirectiveEnv::new()
        .size("N", n as i64)
        .size("I", i as i64)
        .record(db.clone())
        .record(qr.clone())
        .combine_fn(prl_max());
    let program = compile(&prl_source(), &env)?;

    // synthetic registry: every query has a planted near-duplicate
    let mut rng = rng_for("prl_db");
    let mut db_vals: Vec<[f64; FIELDS]> = Vec::with_capacity(i);
    for _ in 0..i {
        let mut v = [0f64; FIELDS];
        for x in v.iter_mut() {
            *x = field_value(&mut rng);
        }
        db_vals.push(v);
    }
    let probm = record_buffer("probM", BasicType::Record(db.clone()), i, |idx| {
        Value::Record(vec![
            Value::I64(idx as i64),
            Value::Array(db_vals[idx].iter().map(|&v| Value::F64(v)).collect()),
        ])
    });
    let mut qrng = rng_for("prl_queries");
    let queries = record_buffer("queries", BasicType::Record(qr.clone()), n, move |idx| {
        // planted duplicate with a few perturbed fields; query 0 is an
        // exact duplicate so a full match always exists
        let src = &db_vals[(idx * 31) % i];
        let mut v = *src;
        let perturb = if idx == 0 {
            0
        } else {
            qrng.gen_range(0..FIELDS)
        };
        for x in v.iter_mut().take(perturb) {
            *x = field_value(&mut qrng);
        }
        Value::Record(vec![Value::Array(
            v.iter().map(|&x| Value::F64(x)).collect(),
        )])
    });

    Ok(AppInstance {
        name: "PRL".into(),
        input_no,
        domain: "Data Mining".into(),
        program,
        inputs: vec![queries, probm],
        vendor_op: None, // no vendor library covers record linkage
        sizes_desc: format!("2^{} | 2^{}", n.ilog2(), i.ilog2()),
    })
}

/// Independent reference implementation (plain Rust, leftmost-max fold).
pub fn prl_reference(app: &AppInstance) -> (Vec<i64>, Vec<f64>, Vec<i32>) {
    let queries = app.inputs[0].record_storage().unwrap();
    let probm = app.inputs[1].record_storage().unwrap();
    let n = app.program.md_hom.sizes[0];
    let i = app.program.md_hom.sizes[1];
    let qvals = &queries.columns[0];
    let ids = &probm.columns[0];
    let dvals = &probm.columns[1];
    let mut out_id = vec![0i64; n];
    let mut out_w = vec![0f64; n];
    let mut out_m = vec![0i32; n];
    for nn in 0..n {
        let mut best: Option<(i64, f64, i32)> = None;
        for ii in 0..i {
            let mut w = 0f64;
            let mut m = 0i32;
            for f in 0..FIELDS {
                let q = qvals.get_f64(nn * FIELDS + f);
                let d = dvals.get_f64(ii * FIELDS + f);
                if (q - d).abs() < 0.1 {
                    w += AGREE_W[f];
                    m += 1;
                } else {
                    w += DISAGREE_W;
                }
            }
            let cand = (ids.get_i64(ii), w, m);
            best = Some(match best {
                None => cand,
                Some(b) => {
                    let bf = b.2 == FIELDS as i32;
                    let cf = cand.2 == FIELDS as i32;
                    if bf && !cf {
                        b
                    } else if cf && !bf {
                        cand
                    } else if b.1 >= cand.1 {
                        b
                    } else {
                        cand
                    }
                }
            });
        }
        let (id, w, m) = best.unwrap();
        out_id[nn] = id;
        out_w[nn] = w;
        out_m[nn] = m;
    }
    (out_id, out_w, out_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_backend::cpu::{CpuExecutor, ExecPath};
    use mdh_core::eval::evaluate_recursive;
    use mdh_core::types::Tuple;
    use mdh_lowering::asm::DeviceKind;
    use mdh_lowering::heuristics::mdh_default_schedule;

    #[test]
    fn prl_max_is_associative_and_priority_correct() {
        let f = prl_max();
        let t = |id: i64, w: f64, m: i32| -> Tuple {
            vec![Value::I64(id), Value::F64(w), Value::I32(m)]
        };
        // full match beats higher weight
        let full = t(1, 2.0, FIELDS as i32);
        let heavy = t(2, 99.0, 3);
        assert_eq!(f.combine(&full, &heavy).unwrap(), full);
        assert_eq!(f.combine(&heavy, &full).unwrap(), full);
        // otherwise max weight, leftmost on ties
        let a = t(3, 5.0, 2);
        let b = t(4, 5.0, 2);
        assert_eq!(f.combine(&a, &b).unwrap(), a);
        // associativity samples
        let samples: Vec<Tuple> = vec![
            t(1, 1.0, 0),
            t(2, 9.9, FIELDS as i32),
            t(3, 5.0, 3),
            t(4, -1.0, 1),
        ];
        assert!(f.check_associative(&samples, 1e-12).unwrap());
    }

    #[test]
    fn prl_small_matches_reference_implementation() {
        let app = prl(Scale::Small, 1).unwrap();
        let (rid, rw, rm) = prl_reference(&app);
        let out = evaluate_recursive(&app.program, &app.inputs).unwrap();
        assert_eq!(out[0].as_i64().unwrap(), &rid[..]);
        assert_eq!(out[1].as_f64().unwrap(), &rw[..]);
        for (got, want) in (0..rm.len()).map(|j| (out[2].get_flat(j), Value::I32(rm[j]))) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn prl_parallel_vm_path_matches_reference() {
        let app = prl(Scale::Small, 2).unwrap();
        let exec = CpuExecutor::new(4).unwrap();
        assert_eq!(exec.path_for(&app.program), ExecPath::Vm);
        let (rid, rw, _) = prl_reference(&app);
        // MDH splits the reduction dimension: custom tuple combine across
        // thread partials
        let s = mdh_default_schedule(&app.program, DeviceKind::Cpu, 4);
        let got = exec.run(&app.program, &s, &app.inputs).unwrap();
        assert_eq!(got[0].as_i64().unwrap(), &rid[..]);
        assert_eq!(got[1].as_f64().unwrap(), &rw[..]);
    }

    #[test]
    fn planted_duplicates_are_found() {
        let app = prl(Scale::Small, 1).unwrap();
        let out = evaluate_recursive(&app.program, &app.inputs).unwrap();
        // at least one query should achieve a full match (measure == FIELDS)
        let any_full = (0..app.program.md_hom.sizes[0])
            .any(|j| out[2].get_flat(j) == Value::I32(FIELDS as i32));
        assert!(any_full, "planted duplicates should yield full matches");
    }

    #[test]
    fn prl_defeats_polyhedral_and_tvm_baselines() {
        use mdh_baselines::schedulers::{Baseline, PlutoLike, TvmLike};
        let app = prl(Scale::Small, 1).unwrap();
        assert!(PlutoLike::heuristic(4).schedule(&app.program).is_err());
        assert!(TvmLike {
            device: DeviceKind::Cpu,
            parallel_units: 4
        }
        .schedule(&app.program)
        .is_err());
    }
}
