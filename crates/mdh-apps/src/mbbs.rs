//! Maximum Bottom Box Sum (MBBS) [Farzan & Nicolet, PLDI 2019] —
//! Listing 13's prefix-sum workload: prefix sums over accumulated row
//! vectors of a matrix, using the `ps` combine operator that no baseline
//! system expresses.

use crate::data::f64_buffer;
use crate::spec::{AppInstance, Scale};
use mdh_core::error::Result;
use mdh_directive::{compile, DirectiveEnv};

/// `out[i] = Σ_{i' ≤ i} Σ_j M[i', j]` — a scan (`ps(add)`) over the row
/// dimension of row sums (`pw(add)`).
pub fn mbbs(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let (i, j) = match input_no {
        1 => (
            scale.pick(1 << 14, 1 << 11, 9),
            scale.pick(1 << 10, 1 << 8, 5),
        ),
        _ => (
            scale.pick(1 << 12, 1 << 10, 7),
            scale.pick(1 << 12, 1 << 9, 6),
        ),
    };
    let src = "\
@mdh( out( bbs = Buffer[fp64] ),
      inp( M = Buffer[fp64] ),
      combine_ops( ps(add), pw(add) ) )
def mbbs(bbs, M):
    for i in range(I):
        for j in range(J):
            bbs[i] = M[i, j]
";
    let env = DirectiveEnv::new().size("I", i as i64).size("J", j as i64);
    let program = compile(src, &env)?;
    Ok(AppInstance {
        name: "MBBS".into(),
        input_no,
        domain: "Data Mining".into(),
        program,
        inputs: vec![f64_buffer("mbbs_M", vec![i, j])],
        vendor_op: None,
        sizes_desc: format!("{i}x{j}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_backend::cpu::{CpuExecutor, ExecPath};
    use mdh_core::eval::evaluate_recursive;
    use mdh_lowering::asm::DeviceKind;
    use mdh_lowering::schedule::{ReductionStrategy, Schedule};

    fn reference(app: &AppInstance) -> Vec<f64> {
        let (i, j) = (app.program.md_hom.sizes[0], app.program.md_hom.sizes[1]);
        let m = app.inputs[0].as_f64().unwrap();
        let mut out = vec![0f64; i];
        let mut acc = 0f64;
        for ii in 0..i {
            for jj in 0..j {
                acc += m[ii * j + jj];
            }
            out[ii] = acc;
        }
        out
    }

    #[test]
    fn mbbs_matches_reference() {
        let app = mbbs(Scale::Small, 1).unwrap();
        let expect = reference(&app);
        let out = evaluate_recursive(&app.program, &app.inputs).unwrap();
        let got = out[0].as_f64().unwrap();
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn mbbs_parallel_scan_matches_reference() {
        let app = mbbs(Scale::Small, 2).unwrap();
        let exec = CpuExecutor::new(4).unwrap();
        assert_eq!(exec.path_for(&app.program), ExecPath::Vm);
        let expect = reference(&app);
        // split the scan dimension across tasks: exercises scan stitching
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.par_chunks = vec![3, 1];
        s.reduction = ReductionStrategy::Tree;
        let got = exec.run(&app.program, &s, &app.inputs).unwrap();
        let g = got[0].as_f64().unwrap();
        for (gv, e) in g.iter().zip(&expect) {
            assert!((gv - e).abs() < 1e-9);
        }
    }

    #[test]
    fn baselines_cannot_express_mbbs() {
        use mdh_baselines::schedulers::{Baseline, TvmLike};
        let app = mbbs(Scale::Small, 1).unwrap();
        let tvm = TvmLike {
            device: DeviceKind::Cpu,
            parallel_units: 4,
        };
        assert!(tvm.schedule(&app.program).is_err());
    }
}
