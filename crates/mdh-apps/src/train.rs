//! Training-shaped case studies: Histogram (the canonical indexed
//! reduction) and AD-emitted adjoints of the differentiable Fig. 3 apps.
//!
//! Histogram cannot be written in the textual directive — its output
//! subscript `hist[key[i]]` is data-dependent, which is exactly what the
//! `rbi(add)` combine operator exists for — so it is built through the
//! DSL builder with a `General` output access capturing the key stream.
//!
//! The adjoint instances are *derived*, not hand-written: [`adjoints_of`]
//! runs [`mdh_ad::grad_all`] on a forward study and packages each emitted
//! adjoint part as a regular [`AppInstance`], so gradients flow through
//! every harness (executors, tuner, sharding, serving) exactly like
//! forward programs.

use crate::data::rng_for;
use crate::registry::{instantiate, StudyId};
use crate::spec::{AppInstance, Scale};
use mdh_ad::part_inputs;
use mdh_core::buffer::Buffer;
use mdh_core::combine::CombineOp;
use mdh_core::dsl::DslBuilder;
use mdh_core::error::Result;
use mdh_core::expr::ScalarFunction;
use mdh_core::index_fn::IndexFn;
use mdh_core::shape::Shape;
use mdh_core::types::{BasicType, ScalarKind};
use rand::Rng;

/// Fig. 3 studies whose adjoints the AD transform emits today: a single
/// output access and a polynomial scalar function. (PRL reduces records
/// with a user-defined combine; CCSD(T)/MCC are differentiable in
/// principle but their 7–10-D instances are exercised elsewhere.)
pub const DIFFERENTIABLE_FIG3: &[&str] = &[
    "Dot",
    "MatVec",
    "MatMul",
    "MatMul^T",
    "bMatMul",
    "Gaussian_2D",
    "Jacobi_3D",
];

/// Histogram: `hist[key[i]] += w[i]` — the indexed reduction (`rbi`)
/// study. The key stream is seeded and captured by the output access.
pub fn histogram(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let (n, buckets) = match input_no {
        1 => (scale.pick(1 << 22, 1 << 20, 4000), scale.pick(256, 256, 16)),
        // adversarial: almost all keys collide into one bucket
        _ => (scale.pick(1 << 20, 1 << 18, 2000), scale.pick(16, 16, 4)),
    };
    let mut rng = rng_for(&format!("hist_keys_{input_no}"));
    let keys: Vec<usize> = (0..n)
        .map(|_| {
            if input_no == 1 {
                rng.gen_range(0..buckets as i64) as usize
            } else {
                // 7/8 of the stream lands in bucket 0
                let r = rng.gen_range(0..(8 * buckets) as i64) as usize;
                r.saturating_sub(7 * buckets)
            }
        })
        .collect();
    let program = DslBuilder::new("histogram", vec![n])
        .out_buffer_with_shape("hist", BasicType::F32, vec![buckets])
        .out_access(
            "hist",
            IndexFn::General {
                out_rank: 1,
                f: std::sync::Arc::new(move |i: &[usize]| vec![keys[i[0]]]),
                label: "key".into(),
            },
        )
        .inp_buffer("w", BasicType::F32)
        .inp_access("w", IndexFn::identity(1, 1))
        .scalar_function(ScalarFunction::identity("f_id", ScalarKind::F32))
        .combine_ops(vec![CombineOp::rbi_add()])
        .build()?;
    // quantized weights (counts in [-8, 8)): integer-valued f32 is exact
    // under addition, so the scatter is bit-identical under *any* legal
    // reassociation — across pool widths, device counts, and fault
    // recovery — not just the structurally-fixed single-node chunk tree
    let mut w = Buffer::zeros(
        format!("hist_w_{input_no}"),
        BasicType::F32,
        Shape::new(vec![n]),
    );
    let wrng = std::cell::RefCell::new(rng_for(&format!("hist_w_{input_no}")));
    w.fill_with(move |_| wrng.borrow_mut().gen_range(0..16) as f64 - 8.0);
    Ok(AppInstance {
        name: "Histogram".into(),
        input_no,
        domain: "Data Mining".into(),
        program,
        inputs: vec![w],
        vendor_op: None,
        sizes_desc: format!("{n} -> {buckets} bins"),
    })
}

/// Deterministic cotangent for a forward study's output (the `ȳ` a
/// training step would feed back).
pub fn cotangent_for(app: &AppInstance) -> Result<Buffer> {
    let shape = app.program.output_shapes()?.remove(0);
    let decl = &app.program.out_view.buffers[0];
    let mut cot = Buffer::zeros(
        format!("{}_bar", decl.name),
        decl.ty.clone(),
        Shape::new(shape),
    );
    let rng = std::cell::RefCell::new(rng_for(&format!("cot_{}_{}", app.name, app.input_no)));
    cot.fill_with(move |_| rng.borrow_mut().gen_range(-1.0..1.0));
    Ok(cot)
}

/// Instantiate the adjoints of one forward study: one [`AppInstance`] per
/// AD-emitted adjoint part, inputs pre-assembled as `[cotangent] ++
/// forward inputs`.
pub fn adjoints_of(id: StudyId, scale: Scale) -> Result<Vec<AppInstance>> {
    let fwd = instantiate(id, scale)?;
    let gp = mdh_ad::grad_all(&fwd.program)?;
    let cot = cotangent_for(&fwd)?;
    Ok(gp
        .parts
        .iter()
        .map(|part| AppInstance {
            name: part.program.name.clone(),
            input_no: fwd.input_no,
            domain: fwd.domain.clone(),
            inputs: part_inputs(part, &cot, &fwd.inputs),
            program: part.program.clone(),
            vendor_op: None,
            sizes_desc: fwd.sizes_desc.clone(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_ad::{eval_gradients, grad_all, oracle};
    use mdh_backend::cpu::{CpuExecutor, ExecPath};
    use mdh_core::eval::evaluate_recursive;
    use mdh_lowering::asm::DeviceKind;
    use mdh_lowering::heuristics::mdh_default_schedule;

    #[test]
    fn histogram_matches_scalar_reference() {
        for input_no in [1, 2] {
            let app = histogram(Scale::Small, input_no).unwrap();
            let out = evaluate_recursive(&app.program, &app.inputs).unwrap();
            // independent reference: walk the weight stream and re-derive
            // the keys from the access closure
            let key_fn = &app.program.out_view.accesses[0].index_fn;
            let w = app.inputs[0].as_f32().unwrap();
            let buckets = out[0].len();
            let mut expect = vec![0.0f32; buckets];
            for (i, &wi) in w.iter().enumerate() {
                expect[key_fn.eval(&[i]).unwrap()[0]] += wi;
            }
            assert_eq!(out[0].as_f32().unwrap(), &expect[..], "input {input_no}");
        }
    }

    #[test]
    fn histogram_takes_the_scatter_path() {
        let app = histogram(Scale::Small, 1).unwrap();
        let exec = CpuExecutor::new(2).unwrap();
        assert_eq!(exec.path_for(&app.program), ExecPath::Scatter);
        // the scatter path's fixed combine tree sums chunks in a
        // different order than the recursive evaluator, so with real
        // float weights the comparison is approximate — but across pool
        // widths the tree is identical, so those runs must agree bitwise
        let expect = evaluate_recursive(&app.program, &app.inputs).unwrap();
        let mut runs = Vec::new();
        for width in [1usize, 2, 4] {
            let ex = CpuExecutor::new(width).unwrap();
            let sched = mdh_default_schedule(&app.program, DeviceKind::Cpu, width);
            let got = ex.run(&app.program, &sched, &app.inputs).unwrap();
            assert!(got[0].approx_eq(&expect[0], 1e-3), "width {width}");
            runs.push(
                got[0]
                    .as_f32()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<u32>>(),
            );
        }
        assert!(runs.windows(2).all(|p| p[0] == p[1]), "widths diverged");
    }

    #[test]
    fn differentiable_studies_have_adjoints_matching_fd() {
        // f32 forwards + random fills: central differences with a large
        // probe (the loss is multilinear, so the probe size only has to
        // beat f32 rounding, not curvature)
        for &name in DIFFERENTIABLE_FIG3 {
            let id = StudyId { name, input_no: 1 };
            let fwd = instantiate(id, Scale::Small).unwrap();
            let gp = grad_all(&fwd.program).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!gp.parts.is_empty(), "{name}: no adjoint parts");
            let cot = cotangent_for(&fwd).unwrap();
            let grads = eval_gradients(&gp, &fwd.inputs, &cot).unwrap();
            for (gi, &w) in gp.wrt.iter().enumerate() {
                let fd = oracle::central_diff(&fwd.program, &fwd.inputs, &cot, w, 0.125).unwrap();
                for e in 0..grads[gi].len() {
                    let a = grads[gi].get_flat(e).as_f64().unwrap();
                    let f = fd[e];
                    assert!(
                        (a - f).abs() <= 1e-4 * f.abs().max(1.0),
                        "{name} wrt {w} elem {e}: AD {a} vs FD {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn adjoint_instances_run_on_the_executor() {
        let exec = CpuExecutor::new(2).unwrap();
        for &name in &["MatVec", "Jacobi_3D"] {
            let parts = adjoints_of(StudyId { name, input_no: 1 }, Scale::Small).unwrap();
            for app in &parts {
                app.program.validate().unwrap();
                let sched = mdh_default_schedule(&app.program, DeviceKind::Cpu, 2);
                let got = exec.run(&app.program, &sched, &app.inputs).unwrap();
                let expect = evaluate_recursive(&app.program, &app.inputs).unwrap();
                for (g, e) in got.iter().zip(&expect) {
                    assert!(g.approx_eq(e, 1e-3), "{} mismatch", app.name);
                }
            }
        }
    }
}
