//! Quantum-chemistry case study: a CCSD(T)-style tensor contraction
//! [Kim et al., CGO 2019] — a 7-dimensional iteration space with one
//! reduction dimension:
//!
//! ```text
//! res[a,b,c,d,e,f] = Σ_k  T2[a,b,c,k] · V[k,d,e,f]
//! ```
//!
//! This is the study where OpenACC's lack of automatic tiling costs over
//! 150× (Section 5.2).

use crate::data::f32_buffer;
use crate::spec::{AppInstance, Scale};
use mdh_core::error::Result;
use mdh_directive::{compile, DirectiveEnv};

/// The CCSD(T) contraction. Fig. 3's size columns are ambiguous about
/// axis order; we fix consistent operand shapes with the same magnitudes
/// (documented in DESIGN.md).
pub fn ccsdt(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let (a, b, c, d, e, f, k) = match input_no {
        1 => (
            scale.pick(24, 12, 3),
            scale.pick(16, 8, 2),
            scale.pick(16, 8, 2),
            scale.pick(24, 12, 3),
            scale.pick(16, 8, 2),
            scale.pick(24, 12, 2),
            scale.pick(16, 16, 4),
        ),
        _ => (
            scale.pick(24, 12, 2),
            scale.pick(16, 8, 2),
            scale.pick(24, 12, 3),
            scale.pick(24, 12, 2),
            scale.pick(16, 8, 2),
            scale.pick(24, 12, 3),
            scale.pick(16, 16, 4),
        ),
    };
    let src = "\
@mdh( out( res = Buffer[fp32] ),
      inp( T2 = Buffer[fp32], V = Buffer[fp32] ),
      combine_ops( cc, cc, cc, cc, cc, cc, pw(add) ) )
def ccsdt(res, T2, V):
    for a in range(A):
        for b in range(B):
            for c in range(C):
                for d in range(D):
                    for e in range(E):
                        for f in range(F):
                            for k in range(K):
                                res[a, b, c, d, e, f] = T2[a, b, c, k] * V[k, d, e, f]
";
    let env = DirectiveEnv::new()
        .size("A", a as i64)
        .size("B", b as i64)
        .size("C", c as i64)
        .size("D", d as i64)
        .size("E", e as i64)
        .size("F", f as i64)
        .size("K", k as i64);
    let program = compile(src, &env)?;
    Ok(AppInstance {
        name: "CCSD(T)".into(),
        input_no,
        domain: "Quantum Chem.".into(),
        program,
        inputs: vec![
            f32_buffer("ccsdt_T2", vec![a, b, c, k]),
            f32_buffer("ccsdt_V", vec![k, d, e, f]),
        ],
        vendor_op: None, // BLAS has no native 7D contraction
        sizes_desc: format!("{a}x{b}x{c}x{k} | {k}x{d}x{e}x{f}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_backend::cpu::{CpuExecutor, ExecPath};
    use mdh_core::eval::evaluate_recursive;
    use mdh_lowering::asm::DeviceKind;
    use mdh_lowering::heuristics::mdh_default_schedule;

    #[test]
    fn ccsdt_small_matches_handwritten() {
        let app = ccsdt(Scale::Small, 1).unwrap();
        let (a, b, c, d, e, f, k) = (3usize, 2, 2, 3, 2, 2, 4);
        let out = evaluate_recursive(&app.program, &app.inputs).unwrap();
        let t2 = app.inputs[0].as_f32().unwrap();
        let v = app.inputs[1].as_f32().unwrap();
        let res = out[0].as_f32().unwrap();
        for ia in 0..a {
            for ib in 0..b {
                for ic in 0..c {
                    for id in 0..d {
                        for ie in 0..e {
                            for iff in 0..f {
                                let mut expect = 0f32;
                                for ik in 0..k {
                                    let ti = ((ia * b + ib) * c + ic) * k + ik;
                                    let vi = ((ik * d + id) * e + ie) * f + iff;
                                    expect += t2[ti] * v[vi];
                                }
                                let oi = ((((ia * b + ib) * c + ic) * d + id) * e + ie) * f + iff;
                                assert!((res[oi] - expect).abs() < 1e-3);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ccsdt_is_7d_single_reduction() {
        let app = ccsdt(Scale::Small, 2).unwrap();
        assert_eq!(app.program.rank(), 7);
        assert_eq!(app.program.md_hom.reduction_dims(), vec![6]);
    }

    #[test]
    fn ccsdt_parallel_run_matches_reference() {
        let app = ccsdt(Scale::Small, 1).unwrap();
        let exec = CpuExecutor::new(4).unwrap();
        assert_eq!(exec.path_for(&app.program), ExecPath::Fast);
        let expect = evaluate_recursive(&app.program, &app.inputs).unwrap();
        let s = mdh_default_schedule(&app.program, DeviceKind::Cpu, 4);
        let got = exec.run(&app.program, &s, &app.inputs).unwrap();
        assert!(got[0].approx_eq(&expect[0], 1e-3));
    }
}
