//! Deterministic input-data generators.
//!
//! All case studies use seeded generators so every run (and every system
//! under comparison) sees identical inputs. The PRL generator synthesises
//! EKR-style cancer-registry records (see DESIGN.md §4 for the
//! substitution rationale).

use mdh_core::buffer::Buffer;
use mdh_core::shape::Shape;
use mdh_core::types::{BasicType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded RNG for a named stream.
pub fn rng_for(tag: &str) -> StdRng {
    let mut seed: u64 = 0x5DCA_95D1_2025_0705;
    for b in tag.bytes() {
        seed = seed.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(seed)
}

/// f32 buffer with values in `[-1, 1)`.
pub fn f32_buffer(name: &str, dims: Vec<usize>) -> Buffer {
    let mut rng = rng_for(name);
    let shape = Shape::new(dims);
    let data: Vec<f32> = (0..shape.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Buffer::from_f32(name, shape, data)
}

/// f64 buffer with values in `[-1, 1)`.
pub fn f64_buffer(name: &str, dims: Vec<usize>) -> Buffer {
    let mut rng = rng_for(name);
    let shape = Shape::new(dims);
    let data: Vec<f64> = (0..shape.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Buffer::from_f64(name, shape, data)
}

/// i64 buffer of consecutive identifiers.
pub fn id_buffer(name: &str, n: usize) -> Buffer {
    Buffer::from_i64(name, Shape::new(vec![n]), (0..n as i64).collect())
}

/// Fill a record buffer's element fields from per-field closures.
pub fn record_buffer(
    name: &str,
    ty: BasicType,
    n: usize,
    mut fill: impl FnMut(usize) -> Value,
) -> Buffer {
    let mut b = Buffer::zeros(name, ty, Shape::new(vec![n]));
    for i in 0..n {
        let v = fill(i);
        b.set(&[i], &v).expect("record fill");
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = f32_buffer("M", vec![8, 8]);
        let b = f32_buffer("M", vec![8, 8]);
        assert_eq!(a, b);
        let c = f32_buffer("other", vec![8, 8]);
        assert_ne!(a.as_f32(), c.as_f32());
    }

    #[test]
    fn values_in_range() {
        let b = f64_buffer("x", vec![1000]);
        assert!(b.as_f64().unwrap().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn id_buffer_consecutive() {
        let b = id_buffer("ids", 5);
        assert_eq!(b.as_i64().unwrap(), &[0, 1, 2, 3, 4]);
    }
}
