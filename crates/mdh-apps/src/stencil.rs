//! Stencil case studies: Gaussian_2D, Jacobi_3D, and the introductory
//! Jacobi1D of Listing 10. Reduction-free (cc-only) computations.

use crate::data::f32_buffer;
use crate::spec::{AppInstance, Scale};
use mdh_core::error::Result;
use mdh_directive::{compile, DirectiveEnv};

/// 3×3 Gaussian blur over an `n×n` image (input padded to `(n+2)²`).
pub fn gaussian_2d(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let n = match input_no {
        1 => scale.pick(224, 224, 6),
        _ => scale.pick(4096, 4096, 9),
    };
    // weights 1/16 * [1 2 1; 2 4 2; 1 2 1]
    let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( cc, cc ) )
def gaussian_2d(y, x):
    for i in range(N):
        for j in range(N):
            y[i, j] = 0.0625 * x[i, j]     + 0.125 * x[i, j+1]     + 0.0625 * x[i, j+2] \
                    + 0.125  * x[i+1, j]   + 0.25  * x[i+1, j+1]   + 0.125  * x[i+1, j+2] \
                    + 0.0625 * x[i+2, j]   + 0.125 * x[i+2, j+1]   + 0.0625 * x[i+2, j+2]
";
    // the directive language has no line continuations; join lines
    let src = src.replace("\\\n", " ");
    let env = DirectiveEnv::new().size("N", n as i64);
    let program = compile(&src, &env)?;
    Ok(AppInstance {
        name: "Gaussian_2D".into(),
        input_no,
        domain: "Image Processing".into(),
        program,
        inputs: vec![f32_buffer("gauss_x", vec![n + 2, n + 2])],
        vendor_op: None, // vendor libraries cover no general stencils
        sizes_desc: format!("{n}x{n}"),
    })
}

/// 7-point 3D Jacobi over an `n³` grid (input padded to `(n+2)³`).
pub fn jacobi_3d(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let n = match input_no {
        1 => scale.pick(254, 254, 5),
        _ => scale.pick(510, 320, 7),
    };
    let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( cc, cc, cc ) )
def jacobi_3d(y, x):
    for i in range(N):
        for j in range(N):
            for k in range(N):
                y[i, j, k] = 0.142 * x[i+1, j+1, k+1] + 0.143 * x[i, j+1, k+1] + 0.143 * x[i+2, j+1, k+1] + 0.143 * x[i+1, j, k+1] + 0.143 * x[i+1, j+2, k+1] + 0.143 * x[i+1, j+1, k] + 0.143 * x[i+1, j+1, k+2]
";
    let env = DirectiveEnv::new().size("N", n as i64);
    let program = compile(src, &env)?;
    Ok(AppInstance {
        name: "Jacobi_3D".into(),
        input_no,
        domain: "Simulation".into(),
        program,
        inputs: vec![f32_buffer("jac3_x", vec![n + 2, n + 2, n + 2])],
        vendor_op: None,
        sizes_desc: format!("{n}x{n}x{n}"),
    })
}

/// The introductory 3-point Jacobi1D of Listing 10.
pub fn jacobi_1d(scale: Scale) -> Result<AppInstance> {
    let n = scale.pick(1 << 24, 1 << 20, 16);
    let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( cc ) )
def jacobi1d(y, x):
    for i in range(N):
        y[i] = 0.333 * (x[i] + x[i+1] + x[i+2])
";
    let env = DirectiveEnv::new().size("N", n as i64);
    let program = compile(src, &env)?;
    Ok(AppInstance {
        name: "Jacobi1D".into(),
        input_no: 1,
        domain: "Simulation".into(),
        program,
        inputs: vec![f32_buffer("jac1_x", vec![n + 2])],
        vendor_op: None,
        sizes_desc: format!("{n}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_backend::cpu::{CpuExecutor, ExecPath};
    use mdh_core::eval::evaluate_recursive;
    use mdh_lowering::asm::DeviceKind;
    use mdh_lowering::heuristics::mdh_default_schedule;

    #[test]
    fn gaussian_small_matches_handwritten() {
        let app = gaussian_2d(Scale::Small, 1).unwrap();
        let out = evaluate_recursive(&app.program, &app.inputs).unwrap();
        let n = 6;
        let x = app.inputs[0].as_f32().unwrap();
        let y = out[0].as_f32().unwrap();
        let w = [
            [0.0625f32, 0.125, 0.0625],
            [0.125, 0.25, 0.125],
            [0.0625, 0.125, 0.0625],
        ];
        for i in 0..n {
            for j in 0..n {
                let mut e = 0f32;
                for (di, row) in w.iter().enumerate() {
                    for (dj, &wv) in row.iter().enumerate() {
                        e += wv * x[(i + di) * (n + 2) + (j + dj)];
                    }
                }
                assert!((y[i * n + j] - e).abs() < 1e-4, "y[{i},{j}]");
            }
        }
    }

    #[test]
    fn jacobi3d_small_matches_handwritten() {
        let app = jacobi_3d(Scale::Small, 1).unwrap();
        let out = evaluate_recursive(&app.program, &app.inputs).unwrap();
        let n = 5;
        let m = n + 2;
        let x = app.inputs[0].as_f32().unwrap();
        let y = out[0].as_f32().unwrap();
        let at = |i: usize, j: usize, k: usize| x[(i * m + j) * m + k];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let e = 0.142 * at(i + 1, j + 1, k + 1)
                        + 0.143
                            * (at(i, j + 1, k + 1)
                                + at(i + 2, j + 1, k + 1)
                                + at(i + 1, j, k + 1)
                                + at(i + 1, j + 2, k + 1)
                                + at(i + 1, j + 1, k)
                                + at(i + 1, j + 1, k + 2));
                    assert!((y[(i * n + j) * n + k] - e).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn stencils_take_map_path_and_run_parallel() {
        let exec = CpuExecutor::new(4).unwrap();
        // gaussian_2d/jacobi_3d are strict weighted sums and compile on the
        // fast path; jacobi_1d's `0.333 * (a + b + c)` directive is not a
        // strict weighted sum, so it stays on the legacy map kernel.
        for (app, want) in [
            (gaussian_2d(Scale::Small, 1).unwrap(), ExecPath::Fast),
            (jacobi_3d(Scale::Small, 1).unwrap(), ExecPath::Fast),
            (jacobi_1d(Scale::Small).unwrap(), ExecPath::Map),
        ] {
            assert_eq!(exec.path_for(&app.program), want, "{}", app.name);
            let expect = evaluate_recursive(&app.program, &app.inputs).unwrap();
            let s = mdh_default_schedule(&app.program, DeviceKind::Cpu, 4);
            let got = exec.run(&app.program, &s, &app.inputs).unwrap();
            assert!(got[0].approx_eq(&expect[0], 1e-4), "{}", app.name);
        }
    }

    #[test]
    fn no_reduction_dims() {
        let app = gaussian_2d(Scale::Small, 1).unwrap();
        assert!(app.program.md_hom.reduction_dims().is_empty());
    }
}
