//! Linear-algebra case studies: Dot, MatVec, MatMul, MatMul^T, bMatMul.
//!
//! All are expressed through the textual MDH directive (the paper's
//! Listings 8 and 9 for MatVec/MatMul) and compiled by the full front
//! end; reference implementations live in the tests.

use crate::data::f32_buffer;
use crate::spec::{AppInstance, Scale};
use mdh_baselines::vendor::VendorOp;
use mdh_core::error::Result;
use mdh_directive::{compile, DirectiveEnv};

/// Dot product (1D, reduction-only — the study where polyhedral
/// compilers fail outright).
pub fn dot(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let n = match input_no {
        1 => scale.pick(1 << 24, 1 << 24, 256),
        _ => scale.pick(10_000_000, 10_000_000, 100),
    };
    let src = "\
@mdh( out( res = Buffer[fp32] ),
      inp( x = Buffer[fp32], y = Buffer[fp32] ),
      combine_ops( pw(add) ) )
def dot(res, x, y):
    for k in range(N):
        res[0] = x[k] * y[k]
";
    let env = DirectiveEnv::new().size("N", n as i64);
    let program = compile(src, &env)?;
    Ok(AppInstance {
        name: "Dot".into(),
        input_no,
        domain: "Simulation".into(),
        program,
        inputs: vec![f32_buffer("dot_x", vec![n]), f32_buffer("dot_y", vec![n])],
        vendor_op: Some(VendorOp::Dot { n }),
        sizes_desc: format!("{n} | {n}"),
    })
}

/// Matrix-vector multiplication (Listing 8).
pub fn matvec(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let n = match input_no {
        1 => scale.pick(4096, 4096, 16),
        _ => scale.pick(8192, 8192, 24),
    };
    let (i, k) = (n, n);
    let src = "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
";
    let env = DirectiveEnv::new().size("I", i as i64).size("K", k as i64);
    let program = compile(src, &env)?;
    Ok(AppInstance {
        name: "MatVec".into(),
        input_no,
        domain: "Simulation".into(),
        program,
        inputs: vec![f32_buffer("mv_M", vec![i, k]), f32_buffer("mv_v", vec![k])],
        vendor_op: Some(VendorOp::Gemv { i, k }),
        sizes_desc: format!("{i}x{k} | {k}"),
    })
}

const MATMUL_SRC: &str = "\
@mdh( out( C = Buffer[fp32] ),
      inp( A = Buffer[fp32], B = Buffer[fp32] ),
      combine_ops( cc, cc, pw(add) ) )
def matmul(C, A, B):
    for i in range(I):
        for j in range(J):
            for k in range(K):
                C[i, j] = A[i, k] * B[k, j]
";

/// Matrix multiplication (Listing 9). Input 1 is the square HPC shape;
/// input 2 is the skinny deep-learning shape (`1×2048 · 2048×1000`) where
/// vendor GEMMs underperform.
pub fn matmul(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let (i, j, k) = match input_no {
        1 => {
            let n = scale.pick(1024, 768, 12);
            (n, n, n)
        }
        _ => (
            scale.pick(1, 1, 1),
            scale.pick(1000, 1000, 10),
            scale.pick(2048, 2048, 16),
        ),
    };
    let env = DirectiveEnv::new()
        .size("I", i as i64)
        .size("J", j as i64)
        .size("K", k as i64);
    let program = compile(MATMUL_SRC, &env)?;
    Ok(AppInstance {
        name: "MatMul".into(),
        input_no,
        domain: if input_no == 1 {
            "Simulation".into()
        } else {
            "Deep Learning".into()
        },
        program,
        inputs: vec![
            f32_buffer("mm_A", vec![i, k]),
            f32_buffer("mm_B", vec![k, j]),
        ],
        vendor_op: Some(VendorOp::Gemm {
            i,
            j,
            k,
            transpose_b: false,
        }),
        sizes_desc: format!("{i}x{k} | {k}x{j}"),
    })
}

/// Transposed matrix multiplication (the "NT" backward-pass GEMM):
/// `C[i,j] = Σ_k A[i,k] · B[j,k]` with the `64×10 / 500×64` shapes of
/// Fig. 3.
pub fn matmul_t(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let _ = input_no;
    let (i, j, k) = (
        scale.pick(10, 10, 5),
        scale.pick(500, 500, 7),
        scale.pick(64, 64, 6),
    );
    let src = "\
@mdh( out( C = Buffer[fp32] ),
      inp( A = Buffer[fp32], B = Buffer[fp32] ),
      combine_ops( cc, cc, pw(add) ) )
def matmul_t(C, A, B):
    for i in range(I):
        for j in range(J):
            for k in range(K):
                C[i, j] = A[i, k] * B[j, k]
";
    let env = DirectiveEnv::new()
        .size("I", i as i64)
        .size("J", j as i64)
        .size("K", k as i64);
    let program = compile(src, &env)?;
    Ok(AppInstance {
        name: "MatMul^T".into(),
        input_no: 1,
        domain: "Deep Learning".into(),
        program,
        inputs: vec![
            f32_buffer("mmt_A", vec![i, k]),
            f32_buffer("mmt_B", vec![j, k]),
        ],
        vendor_op: Some(VendorOp::Gemm {
            i,
            j,
            k,
            transpose_b: true,
        }),
        sizes_desc: format!("{i}x{k} | {j}x{k}"),
    })
}

/// Batched matrix multiplication (`16×10×64 · 16×64×500`).
pub fn bmatmul(scale: Scale, input_no: usize) -> Result<AppInstance> {
    let _ = input_no;
    let (b, i, j, k) = (
        scale.pick(16, 16, 3),
        scale.pick(10, 10, 4),
        scale.pick(500, 500, 5),
        scale.pick(64, 64, 6),
    );
    let src = "\
@mdh( out( C = Buffer[fp32] ),
      inp( A = Buffer[fp32], B = Buffer[fp32] ),
      combine_ops( cc, cc, cc, pw(add) ) )
def bmatmul(C, A, B):
    for b in range(BT):
        for i in range(I):
            for j in range(J):
                for k in range(K):
                    C[b, i, j] = A[b, i, k] * B[b, k, j]
";
    let env = DirectiveEnv::new()
        .size("BT", b as i64)
        .size("I", i as i64)
        .size("J", j as i64)
        .size("K", k as i64);
    let program = compile(src, &env)?;
    Ok(AppInstance {
        name: "bMatMul".into(),
        input_no: 1,
        domain: "Deep Learning".into(),
        program,
        inputs: vec![
            f32_buffer("bmm_A", vec![b, i, k]),
            f32_buffer("bmm_B", vec![b, k, j]),
        ],
        vendor_op: Some(VendorOp::BatchedGemm { b, i, j, k }),
        sizes_desc: format!("{b}x{i}x{k} | {b}x{k}x{j}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_backend::cpu::{CpuExecutor, ExecPath};
    use mdh_core::eval::evaluate_recursive;
    use mdh_lowering::asm::DeviceKind;
    use mdh_lowering::heuristics::mdh_default_schedule;

    fn check_against_reference(app: &AppInstance) {
        let exec = CpuExecutor::new(4).unwrap();
        let expect = evaluate_recursive(&app.program, &app.inputs).unwrap();
        let sched = mdh_default_schedule(&app.program, DeviceKind::Cpu, 4);
        let got = exec.run(&app.program, &sched, &app.inputs).unwrap();
        for (g, e) in got.iter().zip(&expect) {
            assert!(g.approx_eq(e, 1e-3), "{} mismatch", app.name);
        }
    }

    #[test]
    fn dot_small_matches_reference() {
        let app = dot(Scale::Small, 1).unwrap();
        assert_eq!(app.program.md_hom.reduction_dims(), vec![0]);
        check_against_reference(&app);
    }

    #[test]
    fn matvec_small_matches_reference() {
        let app = matvec(Scale::Small, 1).unwrap();
        check_against_reference(&app);
    }

    #[test]
    fn matmul_small_matches_reference_both_inputs() {
        for no in [1, 2] {
            let app = matmul(Scale::Small, no).unwrap();
            check_against_reference(&app);
        }
    }

    #[test]
    fn matmul_t_small_matches_reference() {
        let app = matmul_t(Scale::Small, 1).unwrap();
        check_against_reference(&app);
    }

    #[test]
    fn bmatmul_small_matches_reference() {
        let app = bmatmul(Scale::Small, 1).unwrap();
        check_against_reference(&app);
    }

    #[test]
    fn linalg_apps_take_fast_path() {
        let exec = CpuExecutor::new(2).unwrap();
        for app in [
            dot(Scale::Small, 1).unwrap(),
            matvec(Scale::Small, 1).unwrap(),
            matmul(Scale::Small, 1).unwrap(),
            matmul_t(Scale::Small, 1).unwrap(),
            bmatmul(Scale::Small, 1).unwrap(),
        ] {
            assert_eq!(exec.path_for(&app.program), ExecPath::Fast, "{}", app.name);
        }
    }

    #[test]
    fn vendor_ops_match_programs() {
        let app = matmul(Scale::Small, 1).unwrap();
        let vendor = mdh_baselines::vendor::VendorCpu::new(2);
        let (vout, _) = vendor
            .run(app.vendor_op.as_ref().unwrap(), &app.inputs)
            .unwrap();
        let expect = evaluate_recursive(&app.program, &app.inputs).unwrap();
        // vendor output is i×j; program output matches
        assert_eq!(
            vout[0].as_f32().unwrap().len(),
            expect[0].as_f32().unwrap().len()
        );
        for (a, b) in vout[0]
            .as_f32()
            .unwrap()
            .iter()
            .zip(expect[0].as_f32().unwrap())
        {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn vendor_matmul_t_matches_program() {
        let app = matmul_t(Scale::Small, 1).unwrap();
        let vendor = mdh_baselines::vendor::VendorCpu::new(2);
        let (vout, _) = vendor
            .run(app.vendor_op.as_ref().unwrap(), &app.inputs)
            .unwrap();
        let expect = evaluate_recursive(&app.program, &app.inputs).unwrap();
        for (a, b) in vout[0]
            .as_f32()
            .unwrap()
            .iter()
            .zip(expect[0].as_f32().unwrap())
        {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
