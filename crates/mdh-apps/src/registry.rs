//! The case-study registry: all Fig. 3 computations × data sets.

use crate::spec::{AppInstance, Scale};
use crate::{chem, dl, linalg, mbbs, prl, stencil, train};
use mdh_core::error::Result;

/// Identifier of one (computation, data set) experiment of Fig. 3/4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyId {
    pub name: &'static str,
    pub input_no: usize,
}

/// The Fig. 3 study list, in the paper's order.
pub const FIG3_STUDIES: &[StudyId] = &[
    StudyId {
        name: "Dot",
        input_no: 1,
    },
    StudyId {
        name: "Dot",
        input_no: 2,
    },
    StudyId {
        name: "MatVec",
        input_no: 1,
    },
    StudyId {
        name: "MatVec",
        input_no: 2,
    },
    StudyId {
        name: "MatMul",
        input_no: 1,
    },
    StudyId {
        name: "MatMul",
        input_no: 2,
    },
    StudyId {
        name: "MatMul^T",
        input_no: 1,
    },
    StudyId {
        name: "bMatMul",
        input_no: 1,
    },
    StudyId {
        name: "Gaussian_2D",
        input_no: 1,
    },
    StudyId {
        name: "Gaussian_2D",
        input_no: 2,
    },
    StudyId {
        name: "Jacobi_3D",
        input_no: 1,
    },
    StudyId {
        name: "Jacobi_3D",
        input_no: 2,
    },
    StudyId {
        name: "PRL",
        input_no: 1,
    },
    StudyId {
        name: "PRL",
        input_no: 2,
    },
    StudyId {
        name: "CCSD(T)",
        input_no: 1,
    },
    StudyId {
        name: "CCSD(T)",
        input_no: 2,
    },
    StudyId {
        name: "MCC",
        input_no: 1,
    },
    StudyId {
        name: "MCC",
        input_no: 2,
    },
    StudyId {
        name: "MCC_Caps",
        input_no: 1,
    },
    StudyId {
        name: "MCC_Caps",
        input_no: 2,
    },
];

/// Instantiate one study at a scale.
pub fn instantiate(id: StudyId, scale: Scale) -> Result<AppInstance> {
    match id.name {
        "Dot" => linalg::dot(scale, id.input_no),
        "MatVec" => linalg::matvec(scale, id.input_no),
        "MatMul" => linalg::matmul(scale, id.input_no),
        "MatMul^T" => linalg::matmul_t(scale, id.input_no),
        "bMatMul" => linalg::bmatmul(scale, id.input_no),
        "Gaussian_2D" => stencil::gaussian_2d(scale, id.input_no),
        "Jacobi_3D" => stencil::jacobi_3d(scale, id.input_no),
        "Jacobi1D" => stencil::jacobi_1d(scale),
        "PRL" => prl::prl(scale, id.input_no),
        "CCSD(T)" => chem::ccsdt(scale, id.input_no),
        "MCC" => dl::mcc(scale, id.input_no),
        "MCC_Caps" => dl::mcc_caps(scale, id.input_no),
        "MBBS" => mbbs::mbbs(scale, id.input_no),
        "Histogram" => train::histogram(scale, id.input_no),
        other => Err(mdh_core::error::MdhError::Validation(format!(
            "unknown case study '{other}'"
        ))),
    }
}

/// Instantiate all Fig. 3 studies.
pub fn all_fig3(scale: Scale) -> Result<Vec<AppInstance>> {
    FIG3_STUDIES
        .iter()
        .map(|&id| instantiate(id, scale))
        .collect()
}

/// The training-shaped studies added alongside the AD transform: the
/// Histogram indexed reduction (uniform and skewed key streams).
pub const TRAINING_STUDIES: &[StudyId] = &[
    StudyId {
        name: "Histogram",
        input_no: 1,
    },
    StudyId {
        name: "Histogram",
        input_no: 2,
    },
];

/// Instantiate the adjoints of one forward study (see
/// [`train::adjoints_of`]): one instance per AD-emitted adjoint part.
pub fn instantiate_adjoints(id: StudyId, scale: Scale) -> Result<Vec<AppInstance>> {
    train::adjoints_of(id, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_studies_instantiate_small() {
        let apps = all_fig3(Scale::Small).unwrap();
        assert_eq!(apps.len(), FIG3_STUDIES.len());
        for app in &apps {
            app.program.validate().unwrap();
            assert!(!app.inputs.is_empty());
        }
    }

    #[test]
    fn fig3_characteristics_match_paper() {
        // iteration-space dimensionality and reduction-dim presence per
        // Fig. 3's left columns
        let expect: &[(&str, usize, bool)] = &[
            ("Dot", 1, true),
            ("MatVec", 2, true),
            ("MatMul", 3, true),
            ("MatMul^T", 3, true),
            ("bMatMul", 4, true),
            ("Gaussian_2D", 2, false),
            ("Jacobi_3D", 3, false),
            ("PRL", 2, true),
            ("CCSD(T)", 7, true),
            ("MCC", 7, true),
            ("MCC_Caps", 10, true),
        ];
        for &(name, rank, has_red) in expect {
            let app = instantiate(StudyId { name, input_no: 1 }, Scale::Small).unwrap();
            assert_eq!(app.program.rank(), rank, "{name} rank");
            assert_eq!(
                !app.program.md_hom.reduction_dims().is_empty(),
                has_red,
                "{name} reductions"
            );
        }
    }

    #[test]
    fn extra_studies_instantiate() {
        for name in ["Jacobi1D", "MBBS"] {
            let app = instantiate(StudyId { name, input_no: 1 }, Scale::Small).unwrap();
            app.program.validate().unwrap();
        }
    }
}
