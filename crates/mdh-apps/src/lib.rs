//! # mdh-apps
//!
//! The paper's case studies (Fig. 3) — linear algebra (Dot, MatVec,
//! MatMul variants), stencils (Gaussian_2D, Jacobi_3D), data mining
//! (PRL), quantum chemistry (CCSD(T)), deep learning (MCC, MCC_Caps) —
//! plus the introductory Jacobi1D and MBBS examples of Section 4. Each is
//! expressed through the textual MDH directive, compiled by the full
//! front end, fed by deterministic data generators, and verified against
//! an independent reference implementation in its module's tests.

#![allow(clippy::needless_range_loop)]
pub mod chem;
pub mod data;
pub mod dl;
pub mod linalg;
pub mod mbbs;
pub mod prl;
pub mod registry;
pub mod spec;
pub mod stencil;
pub mod train;

pub use registry::{
    all_fig3, instantiate, instantiate_adjoints, StudyId, FIG3_STUDIES, TRAINING_STUDIES,
};
pub use spec::{AppInstance, Scale};
pub use train::DIFFERENTIABLE_FIG3;
