//! C front end — the paper's future-work direction (Section 8):
//! "incorporating our directive into OpenMP and OpenACC, thereby paving
//! the way for MDH-based optimizations to become part of widely adopted
//! directive standards and thus broadly accessible also for C, C++, and
//! Fortran programmers."
//!
//! This module implements that direction for a C subset: a `#pragma mdh`
//! annotation over a perfect C loop nest, in the style of the paper's
//! Listings 1–3:
//!
//! ```c
//! #pragma mdh out(w: float[I]) inp(M: float[I][K], v: float[K]) \
//!             combine_ops(cc, pw(add))
//! for (int i = 0; i < I; i++) {
//!     for (int k = 0; k < K; k++) {
//!         w[i] = M[i][k] * v[k];
//!     }
//! }
//! ```
//!
//! The C surface is lowered into the *same* [`crate::ast::DirectiveAst`]
//! as the Python-like front end, so analysis, validation (including the
//! `+=` guidance), and the Figure-1/2 transformation are shared verbatim.

use crate::ast::{
    AssignTarget, BufferSpec, CombineOpSpec, DirectiveAst, DirectiveEnv, SurfBinOp, SurfUnOp,
    SurfaceExpr, SurfaceStmt,
};
use crate::semantic::analyze;
use crate::transform::to_dsl;
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};

// ---------------------------------------------------------------------------
// Lexer (C subset)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum CTok {
    Ident(String),
    Int(i64),
    Float(f64),
    Pragma(String), // raw text after "#pragma"
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Colon,
    Assign,
    PlusAssign,
    PlusPlus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Eof,
}

#[derive(Debug, Clone)]
struct CToken {
    tok: CTok,
    line: usize,
}

fn c_err(line: usize, message: impl Into<String>) -> MdhError {
    MdhError::Parse {
        line,
        col: 1,
        message: message.into(),
    }
}

fn c_tokenize(src: &str) -> Result<Vec<CToken>> {
    let mut out = Vec::new();
    for (ln, raw) in src.lines().enumerate() {
        let line = ln + 1;
        // join pragma continuation lines (trailing backslash) is handled
        // by the caller via preprocessing; here detect pragma lines
        let trimmed = raw.trim_start();
        if let Some(rest) = trimmed.strip_prefix("#pragma") {
            out.push(CToken {
                tok: CTok::Pragma(rest.trim().to_string()),
                line,
            });
            continue;
        }
        // strip // comments
        let code = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        };
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' | '\r' => i += 1,
                '(' => {
                    out.push(CToken {
                        tok: CTok::LParen,
                        line,
                    });
                    i += 1;
                }
                ')' => {
                    out.push(CToken {
                        tok: CTok::RParen,
                        line,
                    });
                    i += 1;
                }
                '[' => {
                    out.push(CToken {
                        tok: CTok::LBracket,
                        line,
                    });
                    i += 1;
                }
                ']' => {
                    out.push(CToken {
                        tok: CTok::RBracket,
                        line,
                    });
                    i += 1;
                }
                '{' => {
                    out.push(CToken {
                        tok: CTok::LBrace,
                        line,
                    });
                    i += 1;
                }
                '}' => {
                    out.push(CToken {
                        tok: CTok::RBrace,
                        line,
                    });
                    i += 1;
                }
                ';' => {
                    out.push(CToken {
                        tok: CTok::Semi,
                        line,
                    });
                    i += 1;
                }
                ',' => {
                    out.push(CToken {
                        tok: CTok::Comma,
                        line,
                    });
                    i += 1;
                }
                ':' => {
                    out.push(CToken {
                        tok: CTok::Colon,
                        line,
                    });
                    i += 1;
                }
                '+' => {
                    if bytes.get(i + 1) == Some(&b'+') {
                        out.push(CToken {
                            tok: CTok::PlusPlus,
                            line,
                        });
                        i += 2;
                    } else if bytes.get(i + 1) == Some(&b'=') {
                        out.push(CToken {
                            tok: CTok::PlusAssign,
                            line,
                        });
                        i += 2;
                    } else {
                        out.push(CToken {
                            tok: CTok::Plus,
                            line,
                        });
                        i += 1;
                    }
                }
                '-' => {
                    out.push(CToken {
                        tok: CTok::Minus,
                        line,
                    });
                    i += 1;
                }
                '*' => {
                    out.push(CToken {
                        tok: CTok::Star,
                        line,
                    });
                    i += 1;
                }
                '/' => {
                    out.push(CToken {
                        tok: CTok::Slash,
                        line,
                    });
                    i += 1;
                }
                '%' => {
                    out.push(CToken {
                        tok: CTok::Percent,
                        line,
                    });
                    i += 1;
                }
                '=' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        out.push(CToken {
                            tok: CTok::EqEq,
                            line,
                        });
                        i += 2;
                    } else {
                        out.push(CToken {
                            tok: CTok::Assign,
                            line,
                        });
                        i += 1;
                    }
                }
                '!' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        out.push(CToken {
                            tok: CTok::NotEq,
                            line,
                        });
                        i += 2;
                    } else {
                        out.push(CToken {
                            tok: CTok::Not,
                            line,
                        });
                        i += 1;
                    }
                }
                '<' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        out.push(CToken {
                            tok: CTok::Le,
                            line,
                        });
                        i += 2;
                    } else {
                        out.push(CToken {
                            tok: CTok::Lt,
                            line,
                        });
                        i += 1;
                    }
                }
                '>' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        out.push(CToken {
                            tok: CTok::Ge,
                            line,
                        });
                        i += 2;
                    } else {
                        out.push(CToken {
                            tok: CTok::Gt,
                            line,
                        });
                        i += 1;
                    }
                }
                '&' => {
                    if bytes.get(i + 1) == Some(&b'&') {
                        out.push(CToken {
                            tok: CTok::AndAnd,
                            line,
                        });
                        i += 2;
                    } else {
                        return Err(c_err(line, "bitwise '&' is not supported"));
                    }
                }
                '|' => {
                    if bytes.get(i + 1) == Some(&b'|') {
                        out.push(CToken {
                            tok: CTok::OrOr,
                            line,
                        });
                        i += 2;
                    } else {
                        return Err(c_err(line, "bitwise '|' is not supported"));
                    }
                }
                d if d.is_ascii_digit() => {
                    let start = i;
                    let mut is_float = false;
                    while i < bytes.len() {
                        let ch = bytes[i] as char;
                        if ch.is_ascii_digit() {
                            i += 1;
                        } else if ch == '.' && !is_float {
                            is_float = true;
                            i += 1;
                        } else if ch == 'f' || ch == 'F' {
                            is_float = true;
                            i += 1;
                            break;
                        } else {
                            break;
                        }
                    }
                    let text = code[start..i].trim_end_matches(['f', 'F']);
                    if is_float {
                        out.push(CToken {
                            tok: CTok::Float(
                                text.parse()
                                    .map_err(|_| c_err(line, format!("bad float '{text}'")))?,
                            ),
                            line,
                        });
                    } else {
                        out.push(CToken {
                            tok: CTok::Int(
                                text.parse()
                                    .map_err(|_| c_err(line, format!("bad integer '{text}'")))?,
                            ),
                            line,
                        });
                    }
                }
                a if a.is_ascii_alphabetic() || a == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.push(CToken {
                        tok: CTok::Ident(code[start..i].to_string()),
                        line,
                    });
                }
                other => return Err(c_err(line, format!("unexpected character '{other}'"))),
            }
        }
    }
    out.push(CToken {
        tok: CTok::Eof,
        line: src.lines().count() + 1,
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// Pragma-clause parsing
// ---------------------------------------------------------------------------

/// Map a C element type to the directive type name.
fn c_type_name(t: &str) -> Option<&'static str> {
    match t {
        "float" => Some("fp32"),
        "double" => Some("fp64"),
        "int" | "int32_t" => Some("int32"),
        "long" | "int64_t" => Some("int64"),
        "char" => Some("char"),
        "bool" | "_Bool" => Some("bool"),
        _ => None,
    }
}

struct PragmaParser<'a> {
    toks: Vec<CToken>,
    pos: usize,
    line: usize,
    depth: usize,
    _src: &'a str,
}

impl<'a> PragmaParser<'a> {
    fn new(text: &'a str, line: usize) -> Result<Self> {
        let toks = c_tokenize(text)?;
        Ok(PragmaParser {
            toks,
            pos: 0,
            line,
            depth: 0,
            _src: text,
        })
    }

    /// Bound recursive descent to [`crate::MAX_NEST_DEPTH`]; paired with
    /// `self.depth -= 1` on the success path.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > crate::MAX_NEST_DEPTH {
            return Err(c_err(
                self.line,
                format!("nesting deeper than {} levels", crate::MAX_NEST_DEPTH),
            ));
        }
        Ok(())
    }

    fn peek(&self) -> &CTok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn next(&mut self) -> CTok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: CTok) -> Result<()> {
        let got = self.next();
        if got == t {
            Ok(())
        } else {
            Err(c_err(self.line, format!("expected {t:?}, found {got:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            CTok::Ident(s) => Ok(s),
            other => Err(c_err(
                self.line,
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    /// `( name : type [dim]... , ... )`
    fn buffers(&mut self) -> Result<Vec<BufferSpec>> {
        self.expect(CTok::LParen)?;
        let mut specs = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect(CTok::Colon)?;
            let cty = self.ident()?;
            let ty_name = c_type_name(&cty)
                .ok_or_else(|| c_err(self.line, format!("unknown C type '{cty}'")))?
                .to_string();
            let mut dims = Vec::new();
            while *self.peek() == CTok::LBracket {
                self.next();
                dims.push(self.expr()?);
                self.expect(CTok::RBracket)?;
            }
            specs.push(BufferSpec {
                name,
                ty_name,
                shape: if dims.is_empty() { None } else { Some(dims) },
                line: self.line,
            });
            match self.next() {
                CTok::Comma => continue,
                CTok::RParen => break,
                other => {
                    return Err(c_err(
                        self.line,
                        format!("expected ',' or ')', found {other:?}"),
                    ))
                }
            }
        }
        Ok(specs)
    }

    /// `( cc, pw(add), ps(f), ... )`
    fn combine_ops(&mut self) -> Result<Vec<CombineOpSpec>> {
        self.expect(CTok::LParen)?;
        let mut ops = Vec::new();
        loop {
            let name = self.ident()?;
            let spec = match name.as_str() {
                "cc" => CombineOpSpec::Cc,
                "pw" | "ps" => {
                    self.expect(CTok::LParen)?;
                    let f = self.ident()?;
                    self.expect(CTok::RParen)?;
                    if name == "pw" {
                        CombineOpSpec::Pw(f)
                    } else {
                        CombineOpSpec::Ps(f)
                    }
                }
                other => {
                    return Err(c_err(
                        self.line,
                        format!("unknown combine operator '{other}'"),
                    ))
                }
            };
            ops.push(spec);
            match self.next() {
                CTok::Comma => continue,
                CTok::RParen => break,
                other => {
                    return Err(c_err(
                        self.line,
                        format!("expected ',' or ')', found {other:?}"),
                    ))
                }
            }
        }
        Ok(ops)
    }

    /// Pragma-level size expression (constants and size identifiers).
    fn expr(&mut self) -> Result<SurfaceExpr> {
        self.descend()?;
        let e = self.additive();
        self.depth -= 1;
        e
    }

    fn additive(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                CTok::Plus => SurfBinOp::Add,
                CTok::Minus => SurfBinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.multiplicative()?;
            lhs = SurfaceExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                CTok::Star => SurfBinOp::Mul,
                CTok::Slash => SurfBinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.primary()?;
            lhs = SurfaceExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<SurfaceExpr> {
        match self.next() {
            CTok::Int(v) => Ok(SurfaceExpr::Int(v)),
            CTok::Ident(n) => Ok(SurfaceExpr::Name(n)),
            CTok::LParen => {
                let e = self.expr()?;
                self.expect(CTok::RParen)?;
                Ok(e)
            }
            other => Err(c_err(
                self.line,
                format!("unexpected {other:?} in size expression"),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// C statement parsing
// ---------------------------------------------------------------------------

struct CParser {
    toks: Vec<CToken>,
    pos: usize,
    depth: usize,
}

impl CParser {
    /// Bound recursive descent (expression *and* statement nesting) to
    /// [`crate::MAX_NEST_DEPTH`]; paired with `self.depth -= 1` on the
    /// success path.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > crate::MAX_NEST_DEPTH {
            return Err(c_err(
                self.line(),
                format!("nesting deeper than {} levels", crate::MAX_NEST_DEPTH),
            ));
        }
        Ok(())
    }
    fn peek(&self) -> &CTok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek2(&self) -> &CTok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn next(&mut self) -> CTok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: CTok) -> Result<()> {
        let line = self.line();
        let got = self.next();
        if got == t {
            Ok(())
        } else {
            Err(c_err(line, format!("expected {t:?}, found {got:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        let line = self.line();
        match self.next() {
            CTok::Ident(s) => Ok(s),
            other => Err(c_err(line, format!("expected identifier, found {other:?}"))),
        }
    }

    /// `for (int VAR = 0; VAR < EXPR; VAR++) { ... }` or a plain statement.
    fn stmt(&mut self) -> Result<SurfaceStmt> {
        let line = self.line();
        match self.peek().clone() {
            CTok::Ident(kw) if kw == "for" => {
                self.next();
                self.expect(CTok::LParen)?;
                // `int` / `long` / `size_t` induction declaration
                let decl = self.ident()?;
                let var = if c_type_name(&decl).is_some() || decl == "size_t" {
                    self.ident()?
                } else {
                    decl
                };
                self.expect(CTok::Assign)?;
                match self.next() {
                    CTok::Int(0) => {}
                    other => {
                        return Err(c_err(
                            line,
                            format!("loops must start at 0 (found {other:?})"),
                        ))
                    }
                }
                self.expect(CTok::Semi)?;
                let v2 = self.ident()?;
                if v2 != var {
                    return Err(c_err(
                        line,
                        "loop condition must test the induction variable",
                    ));
                }
                self.expect(CTok::Lt)?;
                let count = self.expr()?;
                self.expect(CTok::Semi)?;
                // `VAR++` or `++VAR`
                match self.next() {
                    CTok::Ident(v3) => {
                        if v3 != var {
                            return Err(c_err(
                                line,
                                "loop increment must use the induction variable",
                            ));
                        }
                        self.expect(CTok::PlusPlus)?;
                    }
                    CTok::PlusPlus => {
                        let v3 = self.ident()?;
                        if v3 != var {
                            return Err(c_err(
                                line,
                                "loop increment must use the induction variable",
                            ));
                        }
                    }
                    other => {
                        return Err(c_err(line, format!("expected increment, found {other:?}")))
                    }
                }
                self.expect(CTok::RParen)?;
                let body = self.block()?;
                Ok(SurfaceStmt::For {
                    var,
                    count,
                    body,
                    line,
                })
            }
            CTok::Ident(kw) if kw == "if" => {
                self.next();
                self.expect(CTok::LParen)?;
                let cond = self.expr()?;
                self.expect(CTok::RParen)?;
                let then_branch = self.block()?;
                let else_branch = if matches!(self.peek(), CTok::Ident(k) if k == "else") {
                    self.next();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(SurfaceStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    line,
                })
            }
            CTok::Ident(first) => {
                // declaration (`float t = e;` / `float t;`) or assignment
                if c_type_name(&first).is_some() && matches!(self.peek2(), CTok::Ident(_)) {
                    self.next();
                    let ty_name = c_type_name(&first).unwrap().to_string();
                    let name = self.ident()?;
                    match self.next() {
                        CTok::Semi => Ok(SurfaceStmt::Decl {
                            name,
                            ty_name,
                            line,
                        }),
                        CTok::Assign => {
                            let value = self.expr()?;
                            self.expect(CTok::Semi)?;
                            // a declaration with initialiser = Decl + Assign;
                            // collapse into Assign after a zero-decl is not
                            // needed because Assign binds fresh locals
                            let _ = ty_name;
                            Ok(SurfaceStmt::Assign {
                                target: AssignTarget::Name(name),
                                value,
                                line,
                            })
                        }
                        other => Err(c_err(line, format!("expected ';' or '=', found {other:?}"))),
                    }
                } else {
                    // assignment to local or buffer element
                    let name = self.ident()?;
                    let mut indices = Vec::new();
                    while *self.peek() == CTok::LBracket {
                        self.next();
                        indices.push(self.expr()?);
                        self.expect(CTok::RBracket)?;
                    }
                    let target = if indices.is_empty() {
                        AssignTarget::Name(name)
                    } else {
                        AssignTarget::Subscript(name, indices)
                    };
                    match self.next() {
                        CTok::Assign => {
                            let value = self.expr()?;
                            self.expect(CTok::Semi)?;
                            Ok(SurfaceStmt::Assign {
                                target,
                                value,
                                line,
                            })
                        }
                        CTok::PlusAssign => {
                            let _ = self.expr()?;
                            let _ = self.expect(CTok::Semi);
                            Ok(SurfaceStmt::AugAssign { target, line })
                        }
                        other => Err(c_err(
                            line,
                            format!("expected '=' or '+=', found {other:?}"),
                        )),
                    }
                }
            }
            other => Err(c_err(line, format!("unexpected {other:?}"))),
        }
    }

    /// `{ stmt* }` or a single statement.
    fn block(&mut self) -> Result<Vec<SurfaceStmt>> {
        self.descend()?;
        let body = if *self.peek() == CTok::LBrace {
            self.next();
            let mut body = Vec::new();
            while *self.peek() != CTok::RBrace {
                if *self.peek() == CTok::Eof {
                    return Err(c_err(self.line(), "unterminated block"));
                }
                body.push(self.stmt()?);
            }
            self.next();
            body
        } else {
            vec![self.stmt()?]
        };
        self.depth -= 1;
        Ok(body)
    }

    // expressions -----------------------------------------------------------

    fn expr(&mut self) -> Result<SurfaceExpr> {
        self.descend()?;
        let e = self.or_expr();
        self.depth -= 1;
        e
    }

    fn or_expr(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == CTok::OrOr {
            self.next();
            let rhs = self.and_expr()?;
            lhs = SurfaceExpr::Bin(SurfBinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == CTok::AndAnd {
            self.next();
            let rhs = self.cmp_expr()?;
            lhs = SurfaceExpr::Bin(SurfBinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<SurfaceExpr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            CTok::EqEq => Some(SurfBinOp::Eq),
            CTok::NotEq => Some(SurfBinOp::Ne),
            CTok::Lt => Some(SurfBinOp::Lt),
            CTok::Le => Some(SurfBinOp::Le),
            CTok::Gt => Some(SurfBinOp::Gt),
            CTok::Ge => Some(SurfBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let rhs = self.add_expr()?;
            Ok(SurfaceExpr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                CTok::Plus => SurfBinOp::Add,
                CTok::Minus => SurfBinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = SurfaceExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                CTok::Star => SurfBinOp::Mul,
                CTok::Slash => SurfBinOp::Div,
                CTok::Percent => SurfBinOp::Mod,
                _ => break,
            };
            self.next();
            let rhs = self.unary()?;
            lhs = SurfaceExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<SurfaceExpr> {
        match self.peek() {
            CTok::Minus => {
                self.next();
                self.descend()?;
                let e = self.unary();
                self.depth -= 1;
                Ok(SurfaceExpr::Un(SurfUnOp::Neg, Box::new(e?)))
            }
            CTok::Not => {
                self.next();
                self.descend()?;
                let e = self.unary();
                self.depth -= 1;
                Ok(SurfaceExpr::Un(SurfUnOp::Not, Box::new(e?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<SurfaceExpr> {
        let line = self.line();
        match self.next() {
            CTok::Int(v) => Ok(SurfaceExpr::Int(v)),
            CTok::Float(v) => Ok(SurfaceExpr::Float(v)),
            CTok::LParen => {
                let e = self.expr()?;
                self.expect(CTok::RParen)?;
                Ok(e)
            }
            CTok::Ident(name) => {
                if *self.peek() == CTok::LParen {
                    // math call: map C names to directive intrinsics
                    self.next();
                    let mut args = Vec::new();
                    if *self.peek() != CTok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == CTok::Comma {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(CTok::RParen)?;
                    let mapped = match name.as_str() {
                        "fabsf" | "fabs" | "abs" => "abs",
                        "sqrtf" | "sqrt" => "sqrt",
                        "expf" | "exp" => "exp",
                        "logf" | "log" => "log",
                        "fminf" | "fmin" | "min" => "min",
                        "fmaxf" | "fmax" | "max" => "max",
                        other => return Err(c_err(line, format!("unknown function '{other}'"))),
                    };
                    Ok(SurfaceExpr::Call(mapped.to_string(), args))
                } else {
                    let mut e = SurfaceExpr::Name(name);
                    while *self.peek() == CTok::LBracket {
                        self.next();
                        let idx = self.expr()?;
                        self.expect(CTok::RBracket)?;
                        // C multi-dim indexing nests subscripts; flatten
                        // into the multi-index form the analysis expects
                        e = match e {
                            SurfaceExpr::Subscript(base, mut idxs) => {
                                idxs.push(idx);
                                SurfaceExpr::Subscript(base, idxs)
                            }
                            other => SurfaceExpr::Subscript(Box::new(other), vec![idx]),
                        };
                    }
                    Ok(e)
                }
            }
            other => Err(c_err(line, format!("unexpected {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Parse a `#pragma mdh`-annotated C loop nest into a directive AST.
pub fn parse_c(src: &str) -> Result<DirectiveAst> {
    // pre-process: splice pragma continuation lines (trailing backslash)
    let mut joined = String::new();
    let mut pending: Option<String> = None;
    for line in src.lines() {
        let in_pragma = pending.is_some() || line.trim_start().starts_with("#pragma");
        if in_pragma {
            let body = line.trim_end();
            let (body, cont) = match body.strip_suffix('\\') {
                Some(b) => (b, true),
                None => (body, false),
            };
            let acc = pending.get_or_insert_with(String::new);
            acc.push_str(body);
            acc.push(' ');
            if !cont {
                joined.push_str(pending.take().unwrap().trim_end());
                joined.push('\n');
            }
        } else {
            joined.push_str(line);
            joined.push('\n');
        }
    }
    if let Some(p) = pending {
        joined.push_str(p.trim_end());
        joined.push('\n');
    }

    let toks = c_tokenize(&joined)?;
    // find the pragma
    let (pi, pragma_text, pragma_line) = toks
        .iter()
        .enumerate()
        .find_map(|(i, t)| match &t.tok {
            CTok::Pragma(p) => Some((i, p.clone(), t.line)),
            _ => None,
        })
        .ok_or_else(|| c_err(1, "no '#pragma mdh' annotation found"))?;
    let rest = pragma_text
        .strip_prefix("mdh")
        .ok_or_else(|| c_err(pragma_line, "expected '#pragma mdh ...'"))?
        .trim();

    // parse clauses
    let mut pp = PragmaParser::new(rest, pragma_line)?;
    let mut out = Vec::new();
    let mut inp = Vec::new();
    let mut combine_ops = Vec::new();
    loop {
        match pp.next() {
            CTok::Ident(clause) => match clause.as_str() {
                "out" => out = pp.buffers()?,
                "inp" => inp = pp.buffers()?,
                "combine_ops" => combine_ops = pp.combine_ops()?,
                other => {
                    return Err(c_err(
                        pragma_line,
                        format!("unknown pragma clause '{other}'"),
                    ))
                }
            },
            CTok::Eof => break,
            other => {
                return Err(c_err(
                    pragma_line,
                    format!("unexpected {other:?} in pragma"),
                ))
            }
        }
    }
    if out.is_empty() || inp.is_empty() || combine_ops.is_empty() {
        return Err(c_err(
            pragma_line,
            "#pragma mdh requires out(...), inp(...), and combine_ops(...) clauses",
        ));
    }

    // parse the loop nest after the pragma
    let mut cp = CParser {
        toks: toks[pi + 1..].to_vec(),
        pos: 0,
        depth: 0,
    };
    let body = vec![cp.stmt()?];
    if !matches!(body[0], SurfaceStmt::For { .. }) {
        return Err(c_err(
            pragma_line,
            "#pragma mdh must annotate a for-loop nest",
        ));
    }

    let params = out.iter().chain(&inp).map(|b| b.name.clone()).collect();
    Ok(DirectiveAst {
        name: "c_kernel".into(),
        params,
        out,
        inp,
        combine_ops,
        body,
        line: pragma_line,
    })
}

/// Full C front end: annotated C source + environment → DSL program.
pub fn compile_c(src: &str, env: &DirectiveEnv) -> Result<DslProgram> {
    let ast = parse_c(src)?;
    let analyzed = analyze(&ast, env)?;
    to_dsl(&analyzed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::buffer::Buffer;
    use mdh_core::eval::evaluate_recursive;
    use mdh_core::shape::Shape;
    use mdh_core::types::BasicType;

    const MATVEC_C: &str = r#"
#pragma mdh out(w: float[I]) inp(M: float[I][K], v: float[K]) \
            combine_ops(cc, pw(add))
for (int i = 0; i < I; i++) {
    for (int k = 0; k < K; k++) {
        w[i] = M[i][k] * v[k];
    }
}
"#;

    #[test]
    fn c_matvec_compiles_and_runs() {
        let env = DirectiveEnv::new().size("I", 4).size("K", 6);
        let prog = compile_c(MATVEC_C, &env).unwrap();
        assert_eq!(prog.md_hom.sizes, vec![4, 6]);
        assert_eq!(prog.md_hom.reduction_dims(), vec![1]);
        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![4, 6]));
        m.fill_with(|f| (f % 5) as f64);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![6]));
        v.fill_with(|f| (f % 3) as f64);
        let out = evaluate_recursive(&prog, &[m.clone(), v.clone()]).unwrap();
        let (mf, vf) = (m.as_f32().unwrap(), v.as_f32().unwrap());
        for i in 0..4 {
            let expect: f32 = (0..6).map(|k| mf[i * 6 + k] * vf[k]).sum();
            assert_eq!(out[0].as_f32().unwrap()[i], expect);
        }
    }

    #[test]
    fn c_and_python_front_ends_agree() {
        let env = DirectiveEnv::new().size("I", 5).size("K", 7);
        let from_c = compile_c(MATVEC_C, &env).unwrap();
        let py = "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
";
        let from_py = crate::transform::compile(py, &env).unwrap();
        assert_eq!(from_c.md_hom.sizes, from_py.md_hom.sizes);
        assert_eq!(
            from_c.output_shapes().unwrap(),
            from_py.output_shapes().unwrap()
        );
        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![5, 7]));
        m.fill_with(|f| ((f * 3) % 11) as f64);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![7]));
        v.fill_with(|f| (f % 4) as f64);
        let inputs = vec![m, v];
        let a = evaluate_recursive(&from_c, &inputs).unwrap();
        let b = evaluate_recursive(&from_py, &inputs).unwrap();
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn c_plus_equals_gets_design_guidance() {
        // Listing 1/2 style: the traditional C formulation with `+=`
        let src = r#"
#pragma mdh out(w: float[I]) inp(M: float[I][K], v: float[K]) combine_ops(cc, pw(add))
for (int i = 0; i < I; i++) {
    for (int k = 0; k < K; k++) {
        w[i] += M[i][k] * v[k];
    }
}
"#;
        let env = DirectiveEnv::new().size("I", 2).size("K", 2);
        let err = compile_c(src, &env).unwrap_err().to_string();
        assert!(err.contains("combine_ops"), "{err}");
    }

    #[test]
    fn c_stencil_with_offsets() {
        let src = r#"
#pragma mdh out(y: float[N]) inp(x: float[N + 2]) combine_ops(cc)
for (int i = 0; i < N; i++) {
    y[i] = 0.25f * x[i] + 0.5f * x[i + 1] + 0.25f * x[i + 2];
}
"#;
        let env = DirectiveEnv::new().size("N", 6);
        let prog = compile_c(src, &env).unwrap();
        assert_eq!(prog.input_shapes().unwrap(), vec![vec![8]]);
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![8]));
        x.fill_with(|f| f as f64);
        let out = evaluate_recursive(&prog, &[x]).unwrap();
        let y = out[0].as_f32().unwrap();
        for i in 0..6 {
            let e = 0.25 * i as f32 + 0.5 * (i + 1) as f32 + 0.25 * (i + 2) as f32;
            assert!((y[i] - e).abs() < 1e-5);
        }
    }

    #[test]
    fn c_body_with_locals_and_branches() {
        let src = r#"
#pragma mdh out(y: float[N]) inp(x: float[N]) combine_ops(cc)
for (int i = 0; i < N; i++) {
    float t;
    t = x[i] * 2.0f;
    if (t > 1.0f) {
        y[i] = t;
    } else {
        y[i] = 0.0f;
    }
}
"#;
        let env = DirectiveEnv::new().size("N", 8);
        let prog = compile_c(src, &env).unwrap();
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![8]));
        x.fill_with(|f| f as f64 * 0.2);
        let out = evaluate_recursive(&prog, &[x.clone()]).unwrap();
        let (xf, y) = (x.as_f32().unwrap(), out[0].as_f32().unwrap());
        for i in 0..8 {
            let t = xf[i] * 2.0;
            let e = if t > 1.0 { t } else { 0.0 };
            assert_eq!(y[i], e);
        }
    }

    #[test]
    fn c_matmul_3d() {
        let src = r#"
#pragma mdh out(C: float[I][J]) inp(A: float[I][K], B: float[K][J]) \
            combine_ops(cc, cc, pw(add))
for (int i = 0; i < I; i++)
    for (int j = 0; j < J; j++)
        for (int k = 0; k < K; k++)
            C[i][j] = A[i][k] * B[k][j];
"#;
        let env = DirectiveEnv::new().size("I", 3).size("J", 4).size("K", 5);
        let prog = compile_c(src, &env).unwrap();
        assert_eq!(prog.md_hom.sizes, vec![3, 4, 5]);
        assert_eq!(prog.output_shapes().unwrap(), vec![vec![3, 4]]);
    }

    #[test]
    fn c_missing_pragma_errors() {
        let src = "for (int i = 0; i < N; i++) { y[i] = x[i]; }";
        assert!(parse_c(src).is_err());
    }

    #[test]
    fn c_nonzero_lower_bound_rejected() {
        let src = r#"
#pragma mdh out(y: float[N]) inp(x: float[N]) combine_ops(cc)
for (int i = 1; i < N; i++) { y[i] = x[i]; }
"#;
        let err = parse_c(src).unwrap_err().to_string();
        assert!(err.contains("start at 0"), "{err}");
    }
}
