//! Surface AST of the MDH directive language and the host "environment".
//!
//! The environment plays the role of the Python host program in the paper:
//! it binds size parameters (`I`, `K`, ...), record type definitions
//! (`db18`, `chr46`, ...), and custom combine functions registered with
//! `@pw_custom_func` (like PRL's `prl_max`).

use mdh_core::combine::PwFunc;
use mdh_core::expr::ScalarFunction;
use mdh_core::types::RecordType;
use std::collections::HashMap;
use std::sync::Arc;

/// Binary operators of the surface expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurfBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Unary operators of the surface expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurfUnOp {
    Neg,
    Not,
}

/// A surface expression (positions recorded for error messages).
#[derive(Debug, Clone, PartialEq)]
pub enum SurfaceExpr {
    Int(i64),
    Float(f64),
    Str(String),
    Name(String),
    /// `base[e1, e2, ...]` — buffer access or record-field-by-string.
    Subscript(Box<SurfaceExpr>, Vec<SurfaceExpr>),
    /// `base.field`.
    Attr(Box<SurfaceExpr>, String),
    Bin(SurfBinOp, Box<SurfaceExpr>, Box<SurfaceExpr>),
    Un(SurfUnOp, Box<SurfaceExpr>),
    /// `fn(args...)` — math functions (`sqrt`, `exp`, `log`, `abs`,
    /// `min`, `max`).
    Call(String, Vec<SurfaceExpr>),
}

/// Assignment target: a local variable or a buffer element.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignTarget {
    Name(String),
    Subscript(String, Vec<SurfaceExpr>),
}

/// A surface statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SurfaceStmt {
    /// `target = value` — the *only* way outputs are produced; the paper's
    /// design deliberately forbids `+=` in loop bodies.
    Assign {
        target: AssignTarget,
        value: SurfaceExpr,
        line: usize,
    },
    /// `target += value` — parsed but rejected with the paper's guidance.
    AugAssign { target: AssignTarget, line: usize },
    /// `name: type` — a typed local declaration (as in PRL's
    /// `tmp_match_weight: fp64`).
    Decl {
        name: String,
        ty_name: String,
        line: usize,
    },
    If {
        cond: SurfaceExpr,
        then_branch: Vec<SurfaceStmt>,
        else_branch: Vec<SurfaceStmt>,
        line: usize,
    },
    /// `for var in range(count):` — a loop-nest level.
    For {
        var: String,
        count: SurfaceExpr,
        body: Vec<SurfaceStmt>,
        line: usize,
    },
}

/// Buffer specification from the `out(...)` / `inp(...)` clauses:
/// `name = Buffer[type]` or `name = Buffer[type, [shape...]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferSpec {
    pub name: String,
    pub ty_name: String,
    pub shape: Option<Vec<SurfaceExpr>>,
    pub line: usize,
}

/// Combine-operator specification from the `combine_ops(...)` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum CombineOpSpec {
    Cc,
    /// `pw(name)` — `add`, `mul`, `max`, `min`, or a registered custom
    /// function.
    Pw(String),
    /// `ps(name)`.
    Ps(String),
    /// `rbi(name)` — indexed reduction (scatter-add); only `add` is
    /// accepted downstream.
    Rbi(String),
}

/// A parsed (not yet analysed) directive: header clauses plus the
/// decorated function's loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectiveAst {
    pub name: String,
    pub params: Vec<String>,
    pub out: Vec<BufferSpec>,
    pub inp: Vec<BufferSpec>,
    pub combine_ops: Vec<CombineOpSpec>,
    pub body: Vec<SurfaceStmt>,
    pub line: usize,
}

/// Host-program bindings available to a directive.
#[derive(Debug, Clone, Default)]
pub struct DirectiveEnv {
    /// Size parameters, e.g. `I = 4096`.
    pub sizes: HashMap<String, i64>,
    /// User-defined record types, e.g. `db18`.
    pub records: HashMap<String, Arc<RecordType>>,
    /// Custom combine functions registered with `@pw_custom_func`.
    pub combine_fns: HashMap<String, PwFunc>,
    /// Named scalar functions for the textual DSL surface (Listing 7's
    /// `SF` slot); `f_mul`, `f_add`, `f_id` are built in.
    pub scalar_fns: HashMap<String, ScalarFunction>,
}

impl DirectiveEnv {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn size(mut self, name: &str, value: i64) -> Self {
        self.sizes.insert(name.into(), value);
        self
    }

    pub fn record(mut self, rec: Arc<RecordType>) -> Self {
        self.records.insert(rec.name.clone(), rec);
        self
    }

    pub fn combine_fn(mut self, f: PwFunc) -> Self {
        self.combine_fns.insert(f.name.clone(), f);
        self
    }

    pub fn scalar_fn(mut self, f: ScalarFunction) -> Self {
        self.scalar_fns.insert(f.name.clone(), f);
        self
    }
}
