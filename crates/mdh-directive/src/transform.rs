//! Directive → DSL transformation (Section 4.3, Figures 1 and 2).
//!
//! Figure 1 (data): the directive's `out(...)`/`inp(...)` clauses and the
//! buffer subscripts of the loop body instantiate the DSL's `out_view` /
//! `inp_view` higher-order functions — one index function per access.
//!
//! Figure 2 (computation): the loop nest's sizes, the extracted scalar
//! function, and the `combine_ops(...)` clause instantiate `md_hom`.
//!
//! The produced [`DslProgram`] feeds the *existing* MDH pipeline —
//! lowering, auto-tuning, and code generation — unchanged, which is the
//! paper's reuse argument.

use crate::ast::{DirectiveAst, DirectiveEnv};
use crate::semantic::{analyze, AnalyzedDirective};
use mdh_core::dsl::{DslProgram, MdHom};
use mdh_core::error::Result;
use mdh_core::views::{Access, BufferDecl, View};

/// Build the DSL program from an analysed directive (Figures 1 + 2).
pub fn to_dsl(a: &AnalyzedDirective) -> Result<DslProgram> {
    // Figure 1: instantiate out_view and inp_view
    let out_view = View::new(
        a.out_buffers
            .iter()
            .map(|(name, ty, shape)| match shape {
                Some(s) => BufferDecl::with_shape(name.clone(), ty.clone(), s.clone()),
                None => BufferDecl::new(name.clone(), ty.clone()),
            })
            .collect(),
        a.out_accesses
            .iter()
            .map(|(b, f)| Access::new(*b, f.clone()))
            .collect(),
    );
    let inp_view = View::new(
        a.inp_buffers
            .iter()
            .map(|(name, ty, shape)| match shape {
                Some(s) => BufferDecl::with_shape(name.clone(), ty.clone(), s.clone()),
                None => BufferDecl::new(name.clone(), ty.clone()),
            })
            .collect(),
        a.inp_accesses
            .iter()
            .map(|(b, f)| Access::new(*b, f.clone()))
            .collect(),
    );
    // Figure 2: instantiate md_hom
    let md_hom = MdHom {
        sizes: a.sizes.clone(),
        sf: std::sync::Arc::new(a.sf.clone()),
        combine_ops: a.combine_ops.clone(),
    };
    let prog = DslProgram::new(a.name.clone(), out_view, md_hom, inp_view);
    prog.validate()?;
    Ok(prog)
}

/// One-step transformation: parsed directive + environment → DSL program.
pub fn directive_to_dsl(ast: &DirectiveAst, env: &DirectiveEnv) -> Result<DslProgram> {
    let analyzed = analyze(ast, env)?;
    to_dsl(&analyzed)
}

/// Full front end: directive source text + environment → DSL program.
pub fn compile(src: &str, env: &DirectiveEnv) -> Result<DslProgram> {
    let ast = crate::parser::parse(src)?;
    directive_to_dsl(&ast, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::buffer::Buffer;
    use mdh_core::eval::{evaluate_direct, evaluate_recursive};
    use mdh_core::shape::Shape;
    use mdh_core::types::BasicType;

    const MATVEC: &str = "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
";

    #[test]
    fn matvec_compiles_and_evaluates() {
        let env = DirectiveEnv::new().size("I", 4).size("K", 6);
        let prog = compile(MATVEC, &env).unwrap();
        assert_eq!(prog.md_hom.sizes, vec![4, 6]);
        assert_eq!(prog.md_hom.reduction_dims(), vec![1]);

        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![4, 6]));
        m.fill_with(|f| (f % 5) as f64 - 2.0);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![6]));
        v.fill_with(|f| f as f64 * 0.5);
        let out = evaluate_recursive(&prog, &[m.clone(), v.clone()]).unwrap();
        let mf = m.as_f32().unwrap();
        let vf = v.as_f32().unwrap();
        let expect: Vec<f32> = (0..4)
            .map(|i| (0..6).map(|k| mf[i * 6 + k] * vf[k]).sum())
            .collect();
        assert_eq!(out[0].as_f32().unwrap(), &expect[..]);
    }

    #[test]
    fn matmul_directive_matches_listing_9() {
        // Listing 9 of the paper
        let src = "\
@mdh( out( C = Buffer[fp32] ),
      inp( A = Buffer[fp32], B = Buffer[fp32] ),
      combine_ops( cc, cc, pw(add) ) )
def matmul(C, A, B):
    for i in range(I):
        for j in range(J):
            for k in range(K):
                C[i, j] = A[i, k] * B[k, j]
";
        let env = DirectiveEnv::new().size("I", 3).size("J", 4).size("K", 5);
        let prog = compile(src, &env).unwrap();
        assert_eq!(prog.md_hom.sizes, vec![3, 4, 5]);
        assert_eq!(prog.output_shapes().unwrap(), vec![vec![3, 4]]);
        assert_eq!(prog.input_shapes().unwrap(), vec![vec![3, 5], vec![5, 4]]);

        let mut a = Buffer::zeros("A", BasicType::F32, Shape::new(vec![3, 5]));
        a.fill_with(|f| f as f64);
        let mut b = Buffer::zeros("B", BasicType::F32, Shape::new(vec![5, 4]));
        b.fill_with(|f| (f % 3) as f64);
        let out = evaluate_direct(&prog, &[a.clone(), b.clone()]).unwrap();
        let af = a.as_f32().unwrap();
        let bf = b.as_f32().unwrap();
        let c = out[0].as_f32().unwrap();
        for i in 0..3 {
            for j in 0..4 {
                let expect: f32 = (0..5).map(|k| af[i * 5 + k] * bf[k * 4 + j]).sum();
                assert_eq!(c[i * 4 + j], expect);
            }
        }
    }

    #[test]
    fn jacobi1d_directive_matches_listing_10() {
        // Listing 10 of the paper (weights 1/3)
        let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( cc ) )
def jacobi1d(y, x):
    for i in range(N):
        y[i] = 0.25 * (x[i] + x[i+1] + x[i+2])
";
        let env = DirectiveEnv::new().size("N", 6);
        let prog = compile(src, &env).unwrap();
        assert_eq!(prog.input_shapes().unwrap(), vec![vec![8]]);
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![8]));
        x.fill_with(|f| f as f64);
        let out = evaluate_recursive(&prog, &[x]).unwrap();
        let y = out[0].as_f32().unwrap();
        for i in 0..6 {
            let expect = 0.25 * ((i + i + 1 + i + 2) as f32);
            assert!((y[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_reduction_only() {
        let src = "\
@mdh( out( res = Buffer[fp32] ),
      inp( x = Buffer[fp32], y = Buffer[fp32] ),
      combine_ops( pw(add) ) )
def dot(res, x, y):
    for k in range(N):
        res[0] = x[k] * y[k]
";
        let env = DirectiveEnv::new().size("N", 10);
        let prog = compile(src, &env).unwrap();
        assert_eq!(prog.md_hom.reduction_dims(), vec![0]);
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![10]));
        x.fill_with(|f| f as f64);
        let mut y = Buffer::zeros("y", BasicType::F32, Shape::new(vec![10]));
        y.fill_with(|_| 3.0);
        let out = evaluate_recursive(&prog, &[x, y]).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[3.0 * 45.0]);
    }

    #[test]
    fn mbbs_prefix_sum_directive() {
        // Listing 13-style: prefix sums over accumulated column vectors
        let src = "\
@mdh( out( out = Buffer[fp64] ),
      inp( M = Buffer[fp64] ),
      combine_ops( ps(add), pw(add) ) )
def mbbs(out, M):
    for i in range(I):
        for j in range(J):
            out[i] = M[i, j]
";
        let env = DirectiveEnv::new().size("I", 4).size("J", 3);
        let prog = compile(src, &env).unwrap();
        let mut m = Buffer::zeros("M", BasicType::F64, Shape::new(vec![4, 3]));
        m.fill_with(|f| f as f64 + 1.0);
        let out = evaluate_recursive(&prog, &[m.clone()]).unwrap();
        let got = out[0].as_f64().unwrap();
        // row sums then prefix over i
        let mf = m.as_f64().unwrap();
        let rows: Vec<f64> = (0..4)
            .map(|i| (0..3).map(|j| mf[i * 3 + j]).sum())
            .collect();
        let mut pref = 0.0;
        for i in 0..4 {
            pref += rows[i];
            assert!((got[i] - pref).abs() < 1e-12, "i={i}: {} vs {pref}", got[i]);
        }
    }
}
