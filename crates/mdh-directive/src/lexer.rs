//! Lexer for the textual MDH directive language.
//!
//! The surface syntax follows the paper's Python listings: an `@mdh(...)`
//! decorator, a `def` line, and an indentation-delimited perfect loop nest.
//! The lexer is indentation-aware (emitting `Indent`/`Dedent` tokens, like
//! CPython's tokenizer) so the parser can treat blocks structurally.

use mdh_core::error::MdhError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
    At,
    Assign,     // =
    PlusAssign, // += (recognised so we can give the paper's "use =" error)
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Arrow, // ->
    // layout
    Newline,
    Indent,
    Dedent,
    Eof,
}

impl TokenKind {
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("float {v}"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Newline => "newline".into(),
            TokenKind::Indent => "indent".into(),
            TokenKind::Dedent => "dedent".into(),
            TokenKind::Eof => "end of input".into(),
            other => format!("'{}'", symbol(other)),
        }
    }
}

fn symbol(k: &TokenKind) -> &'static str {
    match k {
        TokenKind::LParen => "(",
        TokenKind::RParen => ")",
        TokenKind::LBracket => "[",
        TokenKind::RBracket => "]",
        TokenKind::LBrace => "{",
        TokenKind::RBrace => "}",
        TokenKind::Comma => ",",
        TokenKind::Colon => ":",
        TokenKind::Dot => ".",
        TokenKind::At => "@",
        TokenKind::Assign => "=",
        TokenKind::PlusAssign => "+=",
        TokenKind::Plus => "+",
        TokenKind::Minus => "-",
        TokenKind::Star => "*",
        TokenKind::Slash => "/",
        TokenKind::Percent => "%",
        TokenKind::EqEq => "==",
        TokenKind::NotEq => "!=",
        TokenKind::Lt => "<",
        TokenKind::Le => "<=",
        TokenKind::Gt => ">",
        TokenKind::Ge => ">=",
        TokenKind::Arrow => "->",
        _ => "?",
    }
}

/// Tokenise directive source text.
pub fn tokenize(src: &str) -> Result<Vec<Token>, MdhError> {
    let mut tokens = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    // paren depth: newlines/indentation are ignored inside brackets, which
    // lets the `@mdh( ... )` header span multiple lines as in the listings
    let mut depth = 0usize;

    for (lineno, raw_line) in src.lines().enumerate() {
        let line = lineno + 1;
        // strip comments
        let code = match raw_line.find('#') {
            Some(p) => &raw_line[..p],
            None => raw_line,
        };
        if depth == 0 {
            if code.trim().is_empty() {
                continue; // blank lines don't affect indentation
            }
            let indent = code.len() - code.trim_start().len();
            let cur = *indents.last().unwrap();
            if indent > cur {
                indents.push(indent);
                tokens.push(Token {
                    kind: TokenKind::Indent,
                    line,
                    col: 1,
                });
            } else if indent < cur {
                while *indents.last().unwrap() > indent {
                    indents.pop();
                    tokens.push(Token {
                        kind: TokenKind::Dedent,
                        line,
                        col: 1,
                    });
                }
                if *indents.last().unwrap() != indent {
                    return Err(MdhError::Parse {
                        line,
                        col: 1,
                        message: "inconsistent indentation".into(),
                    });
                }
            }
        } else if code.trim().is_empty() {
            continue;
        }

        let bytes = code.as_bytes();
        let mut i = code.len() - code.trim_start().len();
        while i < bytes.len() {
            let c = bytes[i] as char;
            let col = i + 1;
            match c {
                ' ' | '\t' => {
                    i += 1;
                }
                '(' => {
                    depth += 1;
                    tokens.push(tok(TokenKind::LParen, line, col));
                    i += 1;
                }
                ')' => {
                    depth = depth.saturating_sub(1);
                    tokens.push(tok(TokenKind::RParen, line, col));
                    i += 1;
                }
                '[' => {
                    depth += 1;
                    tokens.push(tok(TokenKind::LBracket, line, col));
                    i += 1;
                }
                ']' => {
                    depth = depth.saturating_sub(1);
                    tokens.push(tok(TokenKind::RBracket, line, col));
                    i += 1;
                }
                '{' => {
                    depth += 1;
                    tokens.push(tok(TokenKind::LBrace, line, col));
                    i += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    tokens.push(tok(TokenKind::RBrace, line, col));
                    i += 1;
                }
                ',' => {
                    tokens.push(tok(TokenKind::Comma, line, col));
                    i += 1;
                }
                ':' => {
                    tokens.push(tok(TokenKind::Colon, line, col));
                    i += 1;
                }
                '.' => {
                    tokens.push(tok(TokenKind::Dot, line, col));
                    i += 1;
                }
                '@' => {
                    tokens.push(tok(TokenKind::At, line, col));
                    i += 1;
                }
                '+' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        tokens.push(tok(TokenKind::PlusAssign, line, col));
                        i += 2;
                    } else {
                        tokens.push(tok(TokenKind::Plus, line, col));
                        i += 1;
                    }
                }
                '-' => {
                    if bytes.get(i + 1) == Some(&b'>') {
                        tokens.push(tok(TokenKind::Arrow, line, col));
                        i += 2;
                    } else {
                        tokens.push(tok(TokenKind::Minus, line, col));
                        i += 1;
                    }
                }
                '*' => {
                    tokens.push(tok(TokenKind::Star, line, col));
                    i += 1;
                }
                '/' => {
                    tokens.push(tok(TokenKind::Slash, line, col));
                    i += 1;
                }
                '%' => {
                    tokens.push(tok(TokenKind::Percent, line, col));
                    i += 1;
                }
                '=' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        tokens.push(tok(TokenKind::EqEq, line, col));
                        i += 2;
                    } else {
                        tokens.push(tok(TokenKind::Assign, line, col));
                        i += 1;
                    }
                }
                '!' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        tokens.push(tok(TokenKind::NotEq, line, col));
                        i += 2;
                    } else {
                        return Err(err(line, col, "unexpected '!'"));
                    }
                }
                '<' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        tokens.push(tok(TokenKind::Le, line, col));
                        i += 2;
                    } else {
                        tokens.push(tok(TokenKind::Lt, line, col));
                        i += 1;
                    }
                }
                '>' => {
                    if bytes.get(i + 1) == Some(&b'=') {
                        tokens.push(tok(TokenKind::Ge, line, col));
                        i += 2;
                    } else {
                        tokens.push(tok(TokenKind::Gt, line, col));
                        i += 1;
                    }
                }
                '\'' | '"' => {
                    let quote = c;
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j] as char != quote {
                        j += 1;
                    }
                    if j >= bytes.len() {
                        return Err(err(line, col, "unterminated string"));
                    }
                    tokens.push(tok(TokenKind::Str(code[start..j].to_string()), line, col));
                    i = j + 1;
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    let mut j = i;
                    let mut is_float = false;
                    while j < bytes.len() {
                        let ch = bytes[j] as char;
                        if ch.is_ascii_digit() {
                            j += 1;
                        } else if ch == '.'
                            && !is_float
                            && bytes
                                .get(j + 1)
                                .map(|&b| (b as char).is_ascii_digit())
                                .unwrap_or(false)
                        {
                            is_float = true;
                            j += 1;
                        } else if (ch == 'e' || ch == 'E')
                            && j > start
                            && bytes.get(j + 1).is_some_and(|&b| {
                                (b as char).is_ascii_digit() || b == b'-' || b == b'+'
                            })
                        {
                            is_float = true;
                            j += 2;
                        } else {
                            break;
                        }
                    }
                    let text = &code[start..j];
                    if is_float {
                        let v: f64 = text
                            .parse()
                            .map_err(|_| err(line, col, &format!("bad float '{text}'")))?;
                        tokens.push(tok(TokenKind::Float(v), line, col));
                    } else {
                        let v: i64 = text
                            .parse()
                            .map_err(|_| err(line, col, &format!("bad integer '{text}'")))?;
                        tokens.push(tok(TokenKind::Int(v), line, col));
                    }
                    i = j;
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut j = i;
                    while j < bytes.len() {
                        let ch = bytes[j] as char;
                        if ch.is_ascii_alphanumeric() || ch == '_' {
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    tokens.push(tok(TokenKind::Ident(code[start..j].to_string()), line, col));
                    i = j;
                }
                other => {
                    return Err(err(line, col, &format!("unexpected character '{other}'")));
                }
            }
        }
        if depth == 0 {
            tokens.push(Token {
                kind: TokenKind::Newline,
                line,
                col: code.len() + 1,
            });
        }
    }
    // close open blocks
    while indents.len() > 1 {
        indents.pop();
        tokens.push(Token {
            kind: TokenKind::Dedent,
            line: src.lines().count() + 1,
            col: 1,
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line: src.lines().count() + 1,
        col: 1,
    });
    Ok(tokens)
}

fn tok(kind: TokenKind, line: usize, col: usize) -> Token {
    Token { kind, line, col }
}

fn err(line: usize, col: usize, message: &str) -> MdhError {
    MdhError::Parse {
        line,
        col,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_tokens() {
        let ks = kinds("a = b[i, k] * 2");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::LBracket,
                TokenKind::Ident("i".into()),
                TokenKind::Comma,
                TokenKind::Ident("k".into()),
                TokenKind::RBracket,
                TokenKind::Star,
                TokenKind::Int(2),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn indentation_blocks() {
        let src = "for i in range(4):\n    x = 1\n    y = 2\nz = 3\n";
        let ks = kinds(src);
        let indents = ks.iter().filter(|k| **k == TokenKind::Indent).count();
        let dedents = ks.iter().filter(|k| **k == TokenKind::Dedent).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn nested_dedents_closed_at_eof() {
        let src = "a:\n  b:\n    c = 1\n";
        let ks = kinds(src);
        let dedents = ks.iter().filter(|k| **k == TokenKind::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn multiline_parens_no_newlines() {
        let src = "@mdh( out( w = Buffer[fp32] ),\n      inp( v = Buffer[fp32] ) )\n";
        let ks = kinds(src);
        let newlines = ks.iter().filter(|k| **k == TokenKind::Newline).count();
        assert_eq!(newlines, 1, "newline inside parens must be suppressed");
    }

    #[test]
    fn comments_stripped() {
        let ks = kinds("x = 1  # a comment\n");
        assert!(ks.contains(&TokenKind::Int(1)));
        assert!(!ks
            .iter()
            .any(|k| matches!(k, TokenKind::Ident(s) if s == "comment")));
    }

    #[test]
    fn plus_assign_recognised() {
        let ks = kinds("w = 0\nw += 1\n");
        assert!(ks.contains(&TokenKind::PlusAssign));
    }

    #[test]
    fn floats_and_comparisons() {
        let ks = kinds("if a >= 2.5 != b:");
        assert!(ks.contains(&TokenKind::Ge));
        assert!(ks.contains(&TokenKind::Float(2.5)));
        assert!(ks.contains(&TokenKind::NotEq));
    }

    #[test]
    fn strings() {
        let ks = kinds("x = 'id_measure'");
        assert!(ks.contains(&TokenKind::Str("id_measure".into())));
    }

    #[test]
    fn inconsistent_indent_errors() {
        let src = "a:\n    b = 1\n  c = 2\n";
        assert!(tokenize(src).is_err());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("x = 'oops").is_err());
    }
}
