//! Fortran front end — the remaining host language of the paper's
//! Section 8 ("broadly accessible also for C, C++, and Fortran
//! programmers").
//!
//! A `!$mdh` sentinel directive over a perfect `do` nest, in the style of
//! OpenMP's `!$omp` and OpenACC's `!$acc`:
//!
//! ```fortran
//! !$mdh out(w: real[I]) inp(M: real[I][K], v: real[K]) &
//! !$mdh combine_ops(cc, pw(add))
//! do i = 1, I
//!    do k = 1, K
//!       w(i) = M(i, k) * v(k)
//!    end do
//! end do
//! ```
//!
//! Fortran's 1-based, inclusive `do` bounds and parenthesised array
//! indexing are normalised to the 0-based form of the shared surface AST,
//! so analysis, validation, and the Figure-1/2 transformation are reused
//! unchanged. Column-major storage is *not* modelled: buffers follow the
//! row-major convention of the rest of the stack (documented limitation).

use crate::ast::{AssignTarget, DirectiveAst, DirectiveEnv, SurfBinOp, SurfaceExpr, SurfaceStmt};
use crate::semantic::analyze;
use crate::transform::to_dsl;
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};

fn f_err(line: usize, message: impl Into<String>) -> MdhError {
    MdhError::Parse {
        line,
        col: 1,
        message: message.into(),
    }
}

/// A physical line with its 1-based number.
struct Line<'a> {
    no: usize,
    text: &'a str,
}

/// Map a Fortran type keyword to the directive type name.
fn fortran_type_name(t: &str) -> Option<&'static str> {
    match t.to_ascii_lowercase().as_str() {
        "real" | "real4" => Some("fp32"),
        "double" | "real8" => Some("fp64"),
        "integer" | "integer4" => Some("int32"),
        "integer8" => Some("int64"),
        "logical" => Some("bool"),
        "character" => Some("char"),
        _ => None,
    }
}

/// Parse `!$mdh`-annotated Fortran source into a directive AST.
pub fn parse_fortran(src: &str) -> Result<DirectiveAst> {
    // --- collect the sentinel directive text (with & continuations) -----
    let mut pragma = String::new();
    let mut pragma_line = 0usize;
    let mut rest: Vec<Line> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let no = i + 1;
        let t = raw.trim();
        let lower = t.to_ascii_lowercase();
        if lower.starts_with("!$mdh") {
            if pragma_line == 0 {
                pragma_line = no;
            }
            let body = t[5..].trim().trim_end_matches('&').trim();
            pragma.push_str(body);
            pragma.push(' ');
        } else if t.starts_with('!') || t.is_empty() {
            // comment / blank
        } else {
            rest.push(Line { no, text: raw });
        }
    }
    if pragma_line == 0 {
        return Err(f_err(1, "no '!$mdh' directive found"));
    }

    // --- clauses: reuse the C pragma grammar via the c_frontend ----------
    // the clause syntax is identical except for type names; translate
    // Fortran type keywords before delegating
    let translated = translate_types(&pragma, pragma_line)?;
    let c_src = format!("#pragma mdh {translated}\nfor (int zz = 0; zz < 1; zz++) {{ zz_unused[zz] = zz_unused[zz]; }}");
    let clause_probe = crate::c_frontend::parse_c(&c_src);
    // we only want the header from the probe; body errors are ours to make
    let header = match clause_probe {
        Ok(ast) => ast,
        Err(e) => return Err(f_err(pragma_line, format!("in !$mdh clauses: {e}"))),
    };

    // --- the do nest ------------------------------------------------------
    let mut parser = FortranBody {
        lines: rest,
        pos: 0,
        loop_vars: Vec::new(),
        depth: 0,
    };
    let body = vec![parser.stmt()?];
    parser.skip_blank();
    if parser.pos < parser.lines.len() {
        return Err(f_err(
            parser.lines[parser.pos].no,
            "trailing statements after the annotated do nest",
        ));
    }
    if !matches!(body[0], SurfaceStmt::For { .. }) {
        return Err(f_err(pragma_line, "'!$mdh' must annotate a do nest"));
    }

    Ok(DirectiveAst {
        name: "fortran_kernel".into(),
        params: header
            .out
            .iter()
            .chain(&header.inp)
            .map(|b| b.name.clone())
            .collect(),
        out: header.out,
        inp: header.inp,
        combine_ops: header.combine_ops,
        body,
        line: pragma_line,
    })
}

/// Replace Fortran type keywords in the clause text with directive names.
fn translate_types(pragma: &str, line: usize) -> Result<String> {
    let mut out = String::new();
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut String| {
        if word.is_empty() {
            return;
        }
        match fortran_type_name(word) {
            // map to the *C* names the c_frontend pragma parser expects
            Some("fp32") => out.push_str("float"),
            Some("fp64") => out.push_str("double"),
            Some("int32") => out.push_str("int"),
            Some("int64") => out.push_str("long"),
            Some("bool") => out.push_str("bool"),
            Some("char") => out.push_str("char"),
            _ => out.push_str(word),
        }
        word.clear();
    };
    for c in pragma.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            word.push(c);
        } else {
            flush(&mut word, &mut out);
            out.push(c);
        }
    }
    flush(&mut word, &mut out);
    let _ = line;
    Ok(out)
}

struct FortranBody<'a> {
    lines: Vec<Line<'a>>,
    pos: usize,
    /// induction variables of enclosing `do` loops (1-based in Fortran;
    /// occurrences inside expressions are substituted as `var + 1` so the
    /// uniform 1-based→0-based subscript shift is correct)
    loop_vars: Vec<String>,
    depth: usize,
}

impl<'a> FortranBody<'a> {
    fn skip_blank(&mut self) {
        while self.pos < self.lines.len() && self.lines[self.pos].text.trim().is_empty() {
            self.pos += 1;
        }
    }

    fn current(&self) -> Result<&Line<'a>> {
        self.lines
            .get(self.pos)
            .ok_or_else(|| f_err(0, "unexpected end of input"))
    }

    fn stmt(&mut self) -> Result<SurfaceStmt> {
        self.depth += 1;
        if self.depth > crate::MAX_NEST_DEPTH {
            let no = self.current().map(|l| l.no).unwrap_or(0);
            return Err(f_err(
                no,
                format!("nesting deeper than {} levels", crate::MAX_NEST_DEPTH),
            ));
        }
        let r = self.stmt_inner();
        self.depth -= 1;
        r
    }

    fn stmt_inner(&mut self) -> Result<SurfaceStmt> {
        self.skip_blank();
        let line = self.current()?;
        let no = line.no;
        let t = line.text.trim();
        let lower = t.to_ascii_lowercase();

        if lower.starts_with("do ") || lower == "do" {
            // `do VAR = 1, EXPR`
            self.pos += 1;
            let rest = t[2..].trim();
            let (var, bounds) = rest
                .split_once('=')
                .ok_or_else(|| f_err(no, "expected 'do var = 1, N'"))?;
            let var = var.trim().to_string();
            let mut parts = bounds.splitn(2, ',');
            let lo = parts
                .next()
                .map(str::trim)
                .ok_or_else(|| f_err(no, "missing lower bound"))?;
            if lo != "1" {
                return Err(f_err(
                    no,
                    format!("do loops must start at 1 (found '{lo}')"),
                ));
            }
            let hi = parts
                .next()
                .map(str::trim)
                .ok_or_else(|| f_err(no, "missing upper bound"))?;
            let count = parse_expr(hi, no, &self.loop_vars)?;
            // body until matching `end do`
            self.loop_vars.push(var.clone());
            let mut body = Vec::new();
            loop {
                self.skip_blank();
                let l = self.current()?;
                let lt = l.text.trim().to_ascii_lowercase();
                if lt == "end do" || lt == "enddo" {
                    self.pos += 1;
                    break;
                }
                body.push(self.stmt()?);
            }
            self.loop_vars.pop();
            if body.is_empty() {
                return Err(f_err(no, "empty do body"));
            }
            Ok(SurfaceStmt::For {
                var,
                count,
                body,
                line: no,
            })
        } else if lower.starts_with("if ") || lower.starts_with("if(") {
            // `if (cond) then` ... `else` ... `end if`
            self.pos += 1;
            let open = t
                .find('(')
                .ok_or_else(|| f_err(no, "expected '(' after if"))?;
            let close = t
                .rfind(')')
                .ok_or_else(|| f_err(no, "unbalanced if condition"))?;
            let cond = parse_expr(&t[open + 1..close], no, &self.loop_vars)?;
            if !t[close + 1..].trim().eq_ignore_ascii_case("then") {
                return Err(f_err(no, "expected 'then' after if condition"));
            }
            let mut then_branch = Vec::new();
            let mut else_branch = Vec::new();
            let mut in_else = false;
            loop {
                self.skip_blank();
                let l = self.current()?;
                let lt = l.text.trim().to_ascii_lowercase();
                if lt == "end if" || lt == "endif" {
                    self.pos += 1;
                    break;
                }
                if lt == "else" {
                    self.pos += 1;
                    in_else = true;
                    continue;
                }
                let s = self.stmt()?;
                if in_else {
                    else_branch.push(s);
                } else {
                    then_branch.push(s);
                }
            }
            Ok(SurfaceStmt::If {
                cond,
                then_branch,
                else_branch,
                line: no,
            })
        } else {
            // assignment: `name(idx, ...) = expr` or `name = expr`
            self.pos += 1;
            let (lhs, rhs) = split_assign(t, no)?;
            let value = parse_expr(rhs, no, &self.loop_vars)?;
            let lhs = lhs.trim();
            if let Some(open) = lhs.find('(') {
                let name = lhs[..open].trim().to_string();
                let close = lhs
                    .rfind(')')
                    .ok_or_else(|| f_err(no, "unbalanced subscript"))?;
                let indices = split_args(&lhs[open + 1..close])
                    .into_iter()
                    .map(|a| {
                        // 1-based Fortran index → 0-based
                        parse_expr(&a, no, &self.loop_vars).map(|e| {
                            SurfaceExpr::Bin(
                                SurfBinOp::Sub,
                                Box::new(e),
                                Box::new(SurfaceExpr::Int(1)),
                            )
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(SurfaceStmt::Assign {
                    target: AssignTarget::Subscript(name, indices),
                    value,
                    line: no,
                })
            } else {
                Ok(SurfaceStmt::Assign {
                    target: AssignTarget::Name(lhs.to_string()),
                    value,
                    line: no,
                })
            }
        }
    }
}

/// Split a statement at its assignment `=` (not `==`, `<=`, `>=`, `/=`).
fn split_assign(t: &str, no: usize) -> Result<(&str, &str)> {
    let bytes = t.as_bytes();
    let mut depth = 0usize;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            b'=' if depth == 0 => {
                let prev = if i > 0 { bytes[i - 1] } else { 0 };
                let next = bytes.get(i + 1).copied().unwrap_or(0);
                if prev != b'=' && prev != b'<' && prev != b'>' && prev != b'/' && next != b'=' {
                    return Ok((&t[..i], &t[i + 1..]));
                }
            }
            _ => {}
        }
    }
    Err(f_err(no, format!("expected an assignment, found '{t}'")))
}

/// Split a comma-separated argument list at depth 0.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parse a Fortran expression into a surface expression. Array references
/// `name(e1, e2)` become 0-based subscripts; `.and.`/`.or.`/`.not.` and
/// `/=` map to the shared operators.
fn parse_expr(s: &str, no: usize, loop_vars: &[String]) -> Result<SurfaceExpr> {
    // normalise Fortran-isms to the C-ish token set, then reuse a small
    // recursive parser over characters
    let normal = s
        .replace(".and.", "&&")
        .replace(".AND.", "&&")
        .replace(".or.", "||")
        .replace(".OR.", "||")
        .replace(".not.", "!")
        .replace(".NOT.", "!")
        .replace("/=", "!=")
        .replace("**", "^"); // rejected below with a clear message
    if normal.contains('^') {
        return Err(f_err(no, "exponentiation '**' is not supported"));
    }
    ExprParser {
        s: normal.as_bytes(),
        pos: 0,
        line: no,
        loop_vars,
        depth: 0,
    }
    .parse_top()
}

struct ExprParser<'a> {
    s: &'a [u8],
    pos: usize,
    line: usize,
    loop_vars: &'a [String],
    depth: usize,
}

impl<'a> ExprParser<'a> {
    /// Bound recursive descent to [`crate::MAX_NEST_DEPTH`]; paired with
    /// `self.depth -= 1` on each success path.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > crate::MAX_NEST_DEPTH {
            return Err(f_err(
                self.line,
                format!("nesting deeper than {} levels", crate::MAX_NEST_DEPTH),
            ));
        }
        Ok(())
    }
    fn parse_top(mut self) -> Result<SurfaceExpr> {
        let e = self.or_expr()?;
        self.skip_ws();
        if self.pos != self.s.len() {
            return Err(f_err(
                self.line,
                format!(
                    "trailing characters in expression: '{}'",
                    String::from_utf8_lossy(&self.s[self.pos..])
                ),
            ));
        }
        Ok(e)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && (self.s[self.pos] as char).is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn starts(&mut self, pat: &str) -> bool {
        self.skip_ws();
        if self.s[self.pos..].starts_with(pat.as_bytes()) {
            self.pos += pat.len();
            true
        } else {
            false
        }
    }

    fn peek_char(&mut self) -> Option<char> {
        self.skip_ws();
        self.s.get(self.pos).map(|&b| b as char)
    }

    fn or_expr(&mut self) -> Result<SurfaceExpr> {
        self.descend()?;
        let mut lhs = self.and_expr()?;
        while self.starts("||") {
            let rhs = self.and_expr()?;
            lhs = SurfaceExpr::Bin(SurfBinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        self.depth -= 1;
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.cmp_expr()?;
        while self.starts("&&") {
            let rhs = self.cmp_expr()?;
            lhs = SurfaceExpr::Bin(SurfBinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<SurfaceExpr> {
        let lhs = self.add_expr()?;
        for (pat, op) in [
            ("==", SurfBinOp::Eq),
            ("!=", SurfBinOp::Ne),
            ("<=", SurfBinOp::Le),
            (">=", SurfBinOp::Ge),
            ("<", SurfBinOp::Lt),
            (">", SurfBinOp::Gt),
        ] {
            if self.starts(pat) {
                let rhs = self.add_expr()?;
                return Ok(SurfaceExpr::Bin(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.starts("+") {
                let rhs = self.mul_expr()?;
                lhs = SurfaceExpr::Bin(SurfBinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.starts("-") {
                let rhs = self.mul_expr()?;
                lhs = SurfaceExpr::Bin(SurfBinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.unary()?;
        loop {
            if self.starts("*") {
                let rhs = self.unary()?;
                lhs = SurfaceExpr::Bin(SurfBinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.starts("/") {
                let rhs = self.unary()?;
                lhs = SurfaceExpr::Bin(SurfBinOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<SurfaceExpr> {
        if self.starts("-") {
            self.descend()?;
            let e = self.unary();
            self.depth -= 1;
            return Ok(SurfaceExpr::Un(crate::ast::SurfUnOp::Neg, Box::new(e?)));
        }
        if self.starts("!") {
            self.descend()?;
            let e = self.unary();
            self.depth -= 1;
            return Ok(SurfaceExpr::Un(crate::ast::SurfUnOp::Not, Box::new(e?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SurfaceExpr> {
        self.skip_ws();
        let c = self
            .peek_char()
            .ok_or_else(|| f_err(self.line, "unexpected end of expression"))?;
        if c == '(' {
            self.pos += 1;
            let e = self.or_expr()?;
            self.skip_ws();
            if self.peek_char() != Some(')') {
                return Err(f_err(self.line, "expected ')'"));
            }
            self.pos += 1;
            return Ok(e);
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            let mut is_float = false;
            while let Some(&b) = self.s.get(self.pos) {
                let ch = b as char;
                if ch.is_ascii_digit() {
                    self.pos += 1;
                } else if ch == '.' && !is_float {
                    is_float = true;
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.s[start..self.pos]).unwrap();
            return if is_float {
                text.parse()
                    .map(SurfaceExpr::Float)
                    .map_err(|_| f_err(self.line, "bad float"))
            } else {
                text.parse()
                    .map(SurfaceExpr::Int)
                    .map_err(|_| f_err(self.line, "bad integer"))
            };
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = self.pos;
            while let Some(&b) = self.s.get(self.pos) {
                let ch = b as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let name = std::str::from_utf8(&self.s[start..self.pos])
                .unwrap()
                .to_string();
            self.skip_ws();
            if self.peek_char() == Some('(') {
                self.pos += 1;
                let mut args = Vec::new();
                loop {
                    args.push(self.or_expr()?);
                    self.skip_ws();
                    match self.peek_char() {
                        Some(',') => {
                            self.pos += 1;
                        }
                        Some(')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(f_err(self.line, "expected ',' or ')'")),
                    }
                }
                // intrinsics vs array references
                let lname = name.to_ascii_lowercase();
                return Ok(match lname.as_str() {
                    "abs" | "sqrt" | "exp" | "log" | "min" | "max" => {
                        SurfaceExpr::Call(lname, args)
                    }
                    _ => {
                        // 1-based array reference → 0-based subscript
                        let idxs = args
                            .into_iter()
                            .map(|a| {
                                SurfaceExpr::Bin(
                                    SurfBinOp::Sub,
                                    Box::new(a),
                                    Box::new(SurfaceExpr::Int(1)),
                                )
                            })
                            .collect();
                        SurfaceExpr::Subscript(Box::new(SurfaceExpr::Name(name)), idxs)
                    }
                });
            }
            // a 1-based induction variable used as a value inside an
            // index expression stands for `var + 1` in 0-based terms
            if self.loop_vars.contains(&name) {
                return Ok(SurfaceExpr::Bin(
                    SurfBinOp::Add,
                    Box::new(SurfaceExpr::Name(name)),
                    Box::new(SurfaceExpr::Int(1)),
                ));
            }
            return Ok(SurfaceExpr::Name(name));
        }
        Err(f_err(self.line, format!("unexpected character '{c}'")))
    }
}

/// Full Fortran front end: annotated source + environment → DSL program.
///
/// The `do` nest's 1-based inclusive ranges are normalised to the 0-based
/// iteration space, so `do i = 1, N` becomes the dimension `0..N` and all
/// subscripts shift by one.
pub fn compile_fortran(src: &str, env: &DirectiveEnv) -> Result<DslProgram> {
    let ast = parse_fortran(src)?;
    let analyzed = analyze(&ast, env)?;
    to_dsl(&analyzed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::buffer::Buffer;
    use mdh_core::eval::evaluate_recursive;
    use mdh_core::shape::Shape;
    use mdh_core::types::BasicType;

    const MATVEC_F: &str = "\
!$mdh out(w: real[I]) inp(M: real[I][K], v: real[K]) &
!$mdh combine_ops(cc, pw(add))
do i = 1, I
   do k = 1, K
      w(i) = M(i, k) * v(k)
   end do
end do
";

    #[test]
    fn fortran_matvec_compiles_and_runs() {
        let env = DirectiveEnv::new().size("I", 4).size("K", 6);
        let prog = compile_fortran(MATVEC_F, &env).unwrap();
        assert_eq!(prog.md_hom.sizes, vec![4, 6]);
        assert_eq!(prog.md_hom.reduction_dims(), vec![1]);
        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![4, 6]));
        m.fill_with(|f| (f % 5) as f64);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![6]));
        v.fill_with(|f| (f % 3) as f64);
        let out = evaluate_recursive(&prog, &[m.clone(), v.clone()]).unwrap();
        let (mf, vf) = (m.as_f32().unwrap(), v.as_f32().unwrap());
        for i in 0..4 {
            let expect: f32 = (0..6).map(|k| mf[i * 6 + k] * vf[k]).sum();
            assert_eq!(out[0].as_f32().unwrap()[i], expect);
        }
    }

    #[test]
    fn fortran_and_python_agree() {
        let env = DirectiveEnv::new().size("I", 5).size("K", 3);
        let from_f = compile_fortran(MATVEC_F, &env).unwrap();
        let from_py = crate::transform::compile(
            "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
",
            &env,
        )
        .unwrap();
        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![5, 3]));
        m.fill_with(|f| ((f * 7) % 9) as f64);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![3]));
        v.fill_with(|f| f as f64 + 1.0);
        let inputs = vec![m, v];
        let a = evaluate_recursive(&from_f, &inputs).unwrap();
        let b = evaluate_recursive(&from_py, &inputs).unwrap();
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn one_based_offsets_normalise() {
        // y(i) = x(i + 1): with 1-based normalisation this reads x[i+0]
        // shifted — verify end-to-end against a hand computation
        let src = "\
!$mdh out(y: real[N]) inp(x: real[N + 2]) combine_ops(cc)
do i = 1, N
   y(i) = 0.25 * x(i) + 0.5 * x(i + 1) + 0.25 * x(i + 2)
end do
";
        let env = DirectiveEnv::new().size("N", 6);
        let prog = compile_fortran(src, &env).unwrap();
        assert_eq!(prog.input_shapes().unwrap(), vec![vec![8]]);
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![8]));
        x.fill_with(|f| f as f64);
        let out = evaluate_recursive(&prog, &[x]).unwrap();
        let y = out[0].as_f32().unwrap();
        for i in 0..6 {
            let e = 0.25 * i as f32 + 0.5 * (i + 1) as f32 + 0.25 * (i + 2) as f32;
            assert!((y[i] - e).abs() < 1e-5, "y[{i}] = {} vs {e}", y[i]);
        }
    }

    #[test]
    fn fortran_if_then_else() {
        let src = "\
!$mdh out(y: real[N]) inp(x: real[N]) combine_ops(cc)
do i = 1, N
   if (x(i) > 0.5) then
      y(i) = x(i)
   else
      y(i) = 0.0
   end if
end do
";
        let env = DirectiveEnv::new().size("N", 8);
        let prog = compile_fortran(src, &env).unwrap();
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![8]));
        x.fill_with(|f| f as f64 * 0.2);
        let out = evaluate_recursive(&prog, &[x.clone()]).unwrap();
        let (xf, y) = (x.as_f32().unwrap(), out[0].as_f32().unwrap());
        for i in 0..8 {
            let e = if xf[i] > 0.5 { xf[i] } else { 0.0 };
            assert_eq!(y[i], e);
        }
    }

    #[test]
    fn do_loops_must_start_at_one() {
        let src = "\
!$mdh out(y: real[N]) inp(x: real[N]) combine_ops(cc)
do i = 2, N
   y(i) = x(i)
end do
";
        let err = parse_fortran(src).unwrap_err().to_string();
        assert!(err.contains("start at 1"), "{err}");
    }

    #[test]
    fn missing_sentinel_errors() {
        assert!(parse_fortran("do i = 1, N\n y(i) = x(i)\nend do\n").is_err());
    }

    #[test]
    fn logical_operators_normalise() {
        let e = parse_expr("a > 1 .and. b /= 2", 1, &[]).unwrap();
        assert!(matches!(e, SurfaceExpr::Bin(SurfBinOp::And, _, _)));
    }
}
