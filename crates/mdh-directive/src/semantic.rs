//! Semantic analysis of a parsed directive.
//!
//! This module extracts from the annotated loop nest everything the
//! directive-to-DSL transformation (Figures 1 and 2 of the paper) needs:
//!
//! * the iteration space — loop variables and their sizes,
//! * per-buffer *accesses* — affine index functions from iteration
//!   variables to buffer coordinates,
//! * the *scalar function* SF — the loop body with buffer loads replaced
//!   by parameter slots and buffer stores replaced by result slots,
//! * resolved combine operators (builtin or looked up in the
//!   [`DirectiveEnv`]).
//!
//! It also enforces the directive's contract: a perfect loop nest, one
//! combine operator per loop, pure `=`-only stores (a `+=` gets the
//! paper's guidance as an error message), and affine index expressions.

use crate::ast::*;
use mdh_core::combine::{BuiltinReduce, CombineOp, PwFunc};
use mdh_core::error::{MdhError, Result};
use mdh_core::expr::{BinOp, Expr, MathFn, ScalarFunction, Stmt, UnOp};
use mdh_core::index_fn::{AffineExpr, IndexFn};
use mdh_core::types::{BasicType, RecordType, ScalarKind, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A fully-analysed directive, ready for DSL construction.
#[derive(Debug, Clone)]
pub struct AnalyzedDirective {
    pub name: String,
    pub loop_vars: Vec<String>,
    pub sizes: Vec<usize>,
    pub combine_ops: Vec<CombineOp>,
    /// `(name, type, declared shape)` per output buffer.
    pub out_buffers: Vec<(String, BasicType, Option<Vec<usize>>)>,
    /// `(name, type, declared shape)` per input buffer.
    pub inp_buffers: Vec<(String, BasicType, Option<Vec<usize>>)>,
    /// Output accesses in result-slot order: `(buffer index, index fn)`.
    pub out_accesses: Vec<(usize, IndexFn)>,
    /// Input accesses in parameter-slot order.
    pub inp_accesses: Vec<(usize, IndexFn)>,
    pub sf: ScalarFunction,
}

/// Analyse a parsed directive against host bindings.
pub fn analyze(ast: &DirectiveAst, env: &DirectiveEnv) -> Result<AnalyzedDirective> {
    // --- resolve buffer declarations -----------------------------------
    let out_buffers = resolve_buffers(&ast.out, env)?;
    let inp_buffers = resolve_buffers(&ast.inp, env)?;
    for spec in ast.out.iter().chain(&ast.inp) {
        let count = ast
            .out
            .iter()
            .chain(&ast.inp)
            .filter(|s| s.name == spec.name)
            .count();
        if count > 1 {
            return Err(err(
                spec.line,
                format!("duplicate buffer name '{}'", spec.name),
            ));
        }
    }

    // --- extract the perfect loop nest ---------------------------------
    let mut loop_vars = Vec::new();
    let mut sizes = Vec::new();
    let mut stmts: &[SurfaceStmt] = &ast.body;
    loop {
        match stmts {
            [SurfaceStmt::For {
                var,
                count,
                body,
                line,
            }] => {
                if loop_vars.contains(var) {
                    return Err(err(*line, format!("loop variable '{var}' reused")));
                }
                if env.sizes.contains_key(var) {
                    return Err(err(
                        *line,
                        format!("loop variable '{var}' shadows a size parameter"),
                    ));
                }
                let n = eval_const(count, env).ok_or_else(|| {
                    err(
                        *line,
                        "loop bound must be a constant expression over size parameters".to_string(),
                    )
                })?;
                if n < 0 {
                    return Err(err(*line, format!("negative loop bound {n}")));
                }
                loop_vars.push(var.clone());
                sizes.push(n as usize);
                stmts = body;
            }
            body => {
                // innermost block must contain no further loops: the
                // directive targets *perfect* loop nests (Sec. 4.2)
                if let Some(SurfaceStmt::For { line, .. }) =
                    body.iter().find(|s| matches!(s, SurfaceStmt::For { .. }))
                {
                    return Err(err(
                        *line,
                        "imperfect loop nest: a for-loop appears next to other statements; \
                         the MDH directive targets perfect loop nests"
                            .to_string(),
                    ));
                }
                break;
            }
        }
    }
    if loop_vars.is_empty() {
        return Err(err(
            ast.line,
            "directive body must contain a loop nest".into(),
        ));
    }

    // --- resolve combine operators --------------------------------------
    if ast.combine_ops.len() != loop_vars.len() {
        return Err(err(
            ast.line,
            format!(
                "combine_ops lists {} operators but the loop nest has depth {}: \
                 each loop level must be associated with a combine operator",
                ast.combine_ops.len(),
                loop_vars.len()
            ),
        ));
    }
    let combine_ops: Vec<CombineOp> = ast
        .combine_ops
        .iter()
        .map(|spec| resolve_combine_op(spec, env, ast.line))
        .collect::<Result<_>>()?;

    // --- translate the innermost body into the scalar function ----------
    let mut cx = BodyCx {
        env,
        loop_vars: &loop_vars,
        out_buffers: &out_buffers,
        inp_buffers: &inp_buffers,
        inp_accesses: Vec::new(),
        out_accesses: Vec::new(),
        params: Vec::new(),
        results: Vec::new(),
        locals: HashMap::new(),
    };
    let body = cx.translate_block(stmts)?;
    if cx.out_accesses.is_empty() {
        return Err(err(
            ast.line,
            "loop body never stores to an output buffer".to_string(),
        ));
    }
    // every declared output buffer must be written
    for (b, (name, _, _)) in out_buffers.iter().enumerate() {
        if !cx.out_accesses.iter().any(|(bb, _)| *bb == b) {
            return Err(err(
                ast.line,
                format!("output buffer '{name}' is never written in the loop body"),
            ));
        }
    }

    let BodyCx {
        params,
        results,
        out_accesses,
        inp_accesses,
        ..
    } = cx;
    let sf = ScalarFunction {
        name: format!("{}__sf", ast.name),
        params,
        results,
        body,
    };
    sf.validate()?;

    Ok(AnalyzedDirective {
        name: ast.name.clone(),
        loop_vars,
        sizes,
        combine_ops,
        out_buffers,
        inp_buffers,
        out_accesses,
        inp_accesses,
        sf,
    })
}

fn err(line: usize, message: String) -> MdhError {
    MdhError::Parse {
        line,
        col: 1,
        message,
    }
}

/// A resolved buffer declaration: `(name, element type, declared shape)`.
pub type ResolvedBuffer = (String, BasicType, Option<Vec<usize>>);

fn resolve_buffers(specs: &[BufferSpec], env: &DirectiveEnv) -> Result<Vec<ResolvedBuffer>> {
    specs
        .iter()
        .map(|s| {
            let ty = resolve_type(&s.ty_name, env)
                .ok_or_else(|| err(s.line, format!("unknown type '{}'", s.ty_name)))?;
            let shape = match &s.shape {
                None => None,
                Some(dims) => Some(
                    dims.iter()
                        .map(|d| {
                            eval_const(d, env)
                                .filter(|&v| v >= 0)
                                .map(|v| v as usize)
                                .ok_or_else(|| {
                                    err(
                                        s.line,
                                        format!(
                                            "buffer '{}': shape must be a constant \
                                             expression over size parameters",
                                            s.name
                                        ),
                                    )
                                })
                        })
                        .collect::<Result<Vec<usize>>>()?,
                ),
            };
            Ok((s.name.clone(), ty, shape))
        })
        .collect()
}

/// Resolve a type name to a basic type: builtin scalars or a record from
/// the environment.
pub fn resolve_type(name: &str, env: &DirectiveEnv) -> Option<BasicType> {
    match name {
        "fp32" | "float" => Some(BasicType::F32),
        "fp64" | "double" => Some(BasicType::F64),
        "int32" => Some(BasicType::I32),
        "int64" | "int" => Some(BasicType::I64),
        "bool" => Some(BasicType::BOOL),
        "char" => Some(BasicType::CHAR),
        other => env.records.get(other).cloned().map(BasicType::Record),
    }
}

fn resolve_combine_op(spec: &CombineOpSpec, env: &DirectiveEnv, line: usize) -> Result<CombineOp> {
    let resolve_fn = |name: &str| -> Result<PwFunc> {
        match name {
            "add" => Ok(PwFunc::builtin(BuiltinReduce::Add)),
            "mul" => Ok(PwFunc::builtin(BuiltinReduce::Mul)),
            "max" => Ok(PwFunc::builtin(BuiltinReduce::Max)),
            "min" => Ok(PwFunc::builtin(BuiltinReduce::Min)),
            custom => env.combine_fns.get(custom).cloned().ok_or_else(|| {
                err(
                    line,
                    format!(
                        "unknown combine function '{custom}': register it in the \
                         DirectiveEnv with @pw_custom_func semantics"
                    ),
                )
            }),
        }
    };
    Ok(match spec {
        CombineOpSpec::Cc => CombineOp::Cc,
        CombineOpSpec::Pw(f) => CombineOp::Pw(resolve_fn(f)?),
        CombineOpSpec::Ps(f) => CombineOp::Ps(resolve_fn(f)?),
        CombineOpSpec::Rbi(f) => {
            if f != "add" {
                return Err(err(
                    line,
                    format!("rbi only supports the builtin 'add' operator, got '{f}'"),
                ));
            }
            CombineOp::rbi_add()
        }
    })
}

/// Evaluate a constant surface expression over size parameters.
pub fn eval_const(e: &SurfaceExpr, env: &DirectiveEnv) -> Option<i64> {
    match e {
        SurfaceExpr::Int(v) => Some(*v),
        SurfaceExpr::Name(n) => env.sizes.get(n).copied(),
        SurfaceExpr::Bin(op, a, b) => {
            let (a, b) = (eval_const(a, env)?, eval_const(b, env)?);
            // checked arithmetic throughout: directive sources are
            // untrusted input, and an i64::MAX size binding must become a
            // "not a constant" miss (and then a validation error), never
            // an overflow panic
            match op {
                SurfBinOp::Add => a.checked_add(b),
                SurfBinOp::Sub => a.checked_sub(b),
                SurfBinOp::Mul => a.checked_mul(b),
                SurfBinOp::Div => a.checked_div(b),
                SurfBinOp::Mod => a.checked_rem(b),
                _ => None,
            }
        }
        SurfaceExpr::Un(SurfUnOp::Neg, a) => eval_const(a, env)?.checked_neg(),
        _ => None,
    }
}

struct BodyCx<'a> {
    env: &'a DirectiveEnv,
    loop_vars: &'a [String],
    out_buffers: &'a [(String, BasicType, Option<Vec<usize>>)],
    inp_buffers: &'a [(String, BasicType, Option<Vec<usize>>)],
    inp_accesses: Vec<(usize, IndexFn)>,
    out_accesses: Vec<(usize, IndexFn)>,
    params: Vec<(String, BasicType)>,
    results: Vec<(String, BasicType)>,
    locals: HashMap<String, ()>,
}

impl<'a> BodyCx<'a> {
    fn out_index(&self, name: &str) -> Option<usize> {
        self.out_buffers.iter().position(|(n, _, _)| n == name)
    }

    fn inp_index(&self, name: &str) -> Option<usize> {
        self.inp_buffers.iter().position(|(n, _, _)| n == name)
    }

    fn translate_block(&mut self, stmts: &[SurfaceStmt]) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                SurfaceStmt::AugAssign { target, line } => {
                    let tname = match target {
                        AssignTarget::Name(n) => n.clone(),
                        AssignTarget::Subscript(n, _) => n.clone(),
                    };
                    return Err(err(
                        *line,
                        format!(
                            "'+=' on '{tname}': the MDH directive expresses reductions \
                             through combine_ops(...), not in the loop body — compute a \
                             single iteration-space point with '=' and declare the \
                             reduction operator on the corresponding loop dimension"
                        ),
                    ));
                }
                SurfaceStmt::Decl {
                    name,
                    ty_name,
                    line,
                } => {
                    let ty = resolve_type(ty_name, self.env)
                        .ok_or_else(|| err(*line, format!("unknown type '{ty_name}'")))?;
                    self.locals.insert(name.clone(), ());
                    out.push(Stmt::Let {
                        name: name.clone(),
                        value: Expr::Lit(ty.zero()),
                    });
                }
                SurfaceStmt::Assign {
                    target,
                    value,
                    line,
                } => match target {
                    AssignTarget::Name(name) => {
                        if self.out_index(name).is_some() || self.inp_index(name).is_some() {
                            return Err(err(
                                *line,
                                format!(
                                    "assignment to buffer '{name}' without subscript; \
                                     buffers are stored to element-wise"
                                ),
                            ));
                        }
                        let v = self.translate_expr(value, *line)?;
                        self.locals.insert(name.clone(), ());
                        out.push(Stmt::Assign {
                            name: name.clone(),
                            value: v,
                        });
                    }
                    AssignTarget::Subscript(name, indices) => {
                        let Some(b) = self.out_index(name) else {
                            if self.inp_index(name).is_some() {
                                return Err(err(*line, format!("store to input buffer '{name}'")));
                            }
                            return Err(err(*line, format!("unknown buffer '{name}'")));
                        };
                        let ifn = self.affine_index_fn(indices, *line)?;
                        let slot = self.result_slot(b, ifn);
                        let v = self.translate_expr(value, *line)?;
                        out.push(Stmt::Assign {
                            name: self.results[slot].0.clone(),
                            value: v,
                        });
                    }
                },
                SurfaceStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    line,
                } => {
                    let c = self.translate_expr(cond, *line)?;
                    let t = self.translate_block(then_branch)?;
                    let e = if else_branch.is_empty() {
                        Vec::new()
                    } else {
                        self.translate_block(else_branch)?
                    };
                    out.push(Stmt::If {
                        cond: c,
                        then_branch: t,
                        else_branch: e,
                    });
                }
                SurfaceStmt::For { line, .. } => {
                    return Err(err(
                        *line,
                        "nested for-loop inside the innermost body: the MDH directive \
                         targets perfect loop nests"
                            .to_string(),
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Deduplicated result slot for an output access.
    fn result_slot(&mut self, buffer: usize, ifn: IndexFn) -> usize {
        if let Some(i) = self
            .out_accesses
            .iter()
            .position(|(b, f)| *b == buffer && *f == ifn)
        {
            return i;
        }
        let i = self.out_accesses.len();
        self.out_accesses.push((buffer, ifn));
        let (name, ty, _) = &self.out_buffers[buffer];
        self.results.push((format!("res_{name}_{i}"), ty.clone()));
        i
    }

    /// Deduplicated parameter slot for an input access.
    fn param_slot(&mut self, buffer: usize, ifn: IndexFn) -> usize {
        if let Some(i) = self
            .inp_accesses
            .iter()
            .position(|(b, f)| *b == buffer && *f == ifn)
        {
            return i;
        }
        let i = self.inp_accesses.len();
        self.inp_accesses.push((buffer, ifn));
        let (name, ty, _) = &self.inp_buffers[buffer];
        self.params.push((format!("arg_{name}_{i}"), ty.clone()));
        i
    }

    /// Convert surface index expressions to an affine index function.
    fn affine_index_fn(&self, indices: &[SurfaceExpr], line: usize) -> Result<IndexFn> {
        let exprs: Vec<AffineExpr> = indices
            .iter()
            .map(|e| self.affine_expr(e, line))
            .collect::<Result<_>>()?;
        Ok(IndexFn::Affine(exprs))
    }

    fn affine_expr(&self, e: &SurfaceExpr, line: usize) -> Result<AffineExpr> {
        let rank = self.loop_vars.len();
        match e {
            SurfaceExpr::Int(v) => Ok(AffineExpr::constant(rank, *v)),
            SurfaceExpr::Name(n) => {
                if let Some(d) = self.loop_vars.iter().position(|v| v == n) {
                    Ok(AffineExpr::var(rank, d))
                } else if let Some(&v) = self.env.sizes.get(n) {
                    Ok(AffineExpr::constant(rank, v))
                } else {
                    Err(err(line, format!("unknown name '{n}' in index expression")))
                }
            }
            SurfaceExpr::Bin(op, a, b) => {
                let a = self.affine_expr(a, line)?;
                let b = self.affine_expr(b, line)?;
                match op {
                    SurfBinOp::Add => Ok(AffineExpr {
                        coeffs: a.coeffs.iter().zip(&b.coeffs).map(|(x, y)| x + y).collect(),
                        constant: a.constant + b.constant,
                    }),
                    SurfBinOp::Sub => Ok(AffineExpr {
                        coeffs: a.coeffs.iter().zip(&b.coeffs).map(|(x, y)| x - y).collect(),
                        constant: a.constant - b.constant,
                    }),
                    SurfBinOp::Mul => {
                        // one side must be constant for affinity
                        let (c, v) = if a.coeffs.iter().all(|&c| c == 0) {
                            (a.constant, b)
                        } else if b.coeffs.iter().all(|&c| c == 0) {
                            (b.constant, a)
                        } else {
                            return Err(err(
                                line,
                                "non-affine index expression: product of two \
                                 iteration variables"
                                    .to_string(),
                            ));
                        };
                        Ok(AffineExpr {
                            coeffs: v.coeffs.iter().map(|x| x * c).collect(),
                            constant: v.constant * c,
                        })
                    }
                    _ => Err(err(
                        line,
                        "non-affine index expression: only +, -, and scaling by \
                         constants are allowed"
                            .to_string(),
                    )),
                }
            }
            SurfaceExpr::Un(SurfUnOp::Neg, a) => {
                let a = self.affine_expr(a, line)?;
                Ok(AffineExpr {
                    coeffs: a.coeffs.iter().map(|x| -x).collect(),
                    constant: -a.constant,
                })
            }
            _ => Err(err(line, "non-affine index expression".to_string())),
        }
    }

    /// Translate a surface value expression into the scalar-function IR.
    fn translate_expr(&mut self, e: &SurfaceExpr, line: usize) -> Result<Expr> {
        match e {
            SurfaceExpr::Int(v) => Ok(Expr::Lit(Value::I64(*v))),
            SurfaceExpr::Float(v) => Ok(Expr::Lit(Value::F64(*v))),
            SurfaceExpr::Str(_) => Err(err(
                line,
                "string literals are only valid as record field selectors".to_string(),
            )),
            SurfaceExpr::Name(n) => {
                if self.locals.contains_key(n) {
                    Ok(Expr::Var(n.clone()))
                } else if let Some(&v) = self.env.sizes.get(n) {
                    Ok(Expr::Lit(Value::I64(v)))
                } else if self.loop_vars.contains(n) {
                    Err(err(
                        line,
                        format!(
                            "loop variable '{n}' used as a value: the scalar function \
                             depends only on buffer elements in the MDH formalism; \
                             read it through an index buffer instead"
                        ),
                    ))
                } else if self.inp_index(n).is_some() || self.out_index(n).is_some() {
                    Err(err(line, format!("buffer '{n}' used without subscript")))
                } else {
                    Err(err(line, format!("unknown name '{n}'")))
                }
            }
            SurfaceExpr::Subscript(base, indices) => {
                // buffer load?
                if let SurfaceExpr::Name(name) = base.as_ref() {
                    if let Some(b) = self.inp_index(name) {
                        let ifn = self.affine_index_fn(indices, line)?;
                        let slot = self.param_slot(b, ifn);
                        return Ok(Expr::Param(slot));
                    }
                    if self.out_index(name).is_some() {
                        return Err(err(
                            line,
                            format!(
                                "read of output buffer '{name}' in the loop body: the \
                                 scalar function maps inputs to outputs; aggregation \
                                 happens through combine_ops"
                            ),
                        ));
                    }
                }
                // record field by string: base['field'] — or array index
                let base_expr = self.translate_expr(base, line)?;
                if indices.len() == 1 {
                    if let SurfaceExpr::Str(field) = &indices[0] {
                        return self.record_field(base_expr, base, field, line);
                    }
                    let idx = self.translate_expr(&indices[0], line)?;
                    return Ok(Expr::ArrayIndex(Box::new(base_expr), Box::new(idx)));
                }
                Err(err(line, "unsupported subscript expression".to_string()))
            }
            SurfaceExpr::Attr(base, field) => {
                let base_expr = self.translate_expr(base, line)?;
                self.record_field(base_expr, base, field, line)
            }
            SurfaceExpr::Bin(op, a, b) => {
                let a = self.translate_expr(a, line)?;
                let b = self.translate_expr(b, line)?;
                let op = match op {
                    SurfBinOp::Add => BinOp::Add,
                    SurfBinOp::Sub => BinOp::Sub,
                    SurfBinOp::Mul => BinOp::Mul,
                    SurfBinOp::Div => BinOp::Div,
                    SurfBinOp::Mod => BinOp::Rem,
                    SurfBinOp::Eq => BinOp::Eq,
                    SurfBinOp::Ne => BinOp::Ne,
                    SurfBinOp::Lt => BinOp::Lt,
                    SurfBinOp::Le => BinOp::Le,
                    SurfBinOp::Gt => BinOp::Gt,
                    SurfBinOp::Ge => BinOp::Ge,
                    SurfBinOp::And => BinOp::And,
                    SurfBinOp::Or => BinOp::Or,
                };
                Ok(Expr::Bin(op, Box::new(a), Box::new(b)))
            }
            SurfaceExpr::Un(op, a) => {
                let a = self.translate_expr(a, line)?;
                Ok(Expr::Un(
                    match op {
                        SurfUnOp::Neg => UnOp::Neg,
                        SurfUnOp::Not => UnOp::Not,
                    },
                    Box::new(a),
                ))
            }
            SurfaceExpr::Call(f, args) => {
                let mf = match f.as_str() {
                    "sqrt" => MathFn::Sqrt,
                    "exp" => MathFn::Exp,
                    "log" => MathFn::Log,
                    "abs" => MathFn::Abs,
                    "min" => MathFn::Min,
                    "max" => MathFn::Max,
                    other => return Err(err(line, format!("unknown function '{other}'"))),
                };
                if args.len() != mf.arity() {
                    return Err(err(line, format!("'{f}' expects {} arguments", mf.arity())));
                }
                let args = args
                    .iter()
                    .map(|a| self.translate_expr(a, line))
                    .collect::<Result<_>>()?;
                Ok(Expr::Call(mf, args))
            }
        }
    }

    /// Resolve a record field access by name into a positional access the
    /// core evaluator understands.
    fn record_field(
        &mut self,
        base_expr: Expr,
        base_surface: &SurfaceExpr,
        field: &str,
        line: usize,
    ) -> Result<Expr> {
        let rec = self
            .record_type_of(base_surface)
            .ok_or_else(|| err(line, format!("field access '.{field}' on non-record value")))?;
        let pos = rec.field_index(field).ok_or_else(|| {
            err(
                line,
                format!("record '{}' has no field '{field}'", rec.name),
            )
        })?;
        Ok(Expr::Field(Box::new(base_expr), format!("field{pos}")))
    }

    /// Record type of a surface expression, if it denotes a record-typed
    /// buffer load.
    fn record_type_of(&self, e: &SurfaceExpr) -> Option<Arc<RecordType>> {
        if let SurfaceExpr::Subscript(base, _) = e {
            if let SurfaceExpr::Name(name) = base.as_ref() {
                let ty = self
                    .inp_index(name)
                    .map(|b| &self.inp_buffers[b].1)
                    .or_else(|| self.out_index(name).map(|b| &self.out_buffers[b].1))?;
                if let BasicType::Record(r) = ty {
                    return Some(r.clone());
                }
            }
        }
        None
    }
}

/// Scalar-kind helper used when coercing literals (exposed for tests).
pub fn dominant_kind(ty: &BasicType) -> Option<ScalarKind> {
    ty.as_scalar()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use mdh_core::combine::DimBehavior;

    fn env_ik() -> DirectiveEnv {
        DirectiveEnv::new().size("I", 4).size("K", 5)
    }

    const MATVEC: &str = "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
";

    #[test]
    fn analyzes_matvec() {
        let ast = parse(MATVEC).unwrap();
        let a = analyze(&ast, &env_ik()).unwrap();
        assert_eq!(a.loop_vars, vec!["i", "k"]);
        assert_eq!(a.sizes, vec![4, 5]);
        assert_eq!(a.combine_ops.len(), 2);
        assert_eq!(a.combine_ops[0].behavior(), DimBehavior::Preserve);
        assert_eq!(a.combine_ops[1].behavior(), DimBehavior::Collapse);
        assert_eq!(a.out_accesses.len(), 1);
        assert_eq!(a.inp_accesses.len(), 2);
        assert_eq!(a.sf.params.len(), 2);
        // M access is (i,k) -> (i,k)
        assert_eq!(a.inp_accesses[0].1, IndexFn::identity(2, 2));
        // v access is (i,k) -> (k)
        assert_eq!(a.inp_accesses[1].1, IndexFn::select(2, &[1]));
    }

    #[test]
    fn plus_equals_gets_design_guidance() {
        let src = "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] += M[i, k] * v[k]
";
        let ast = parse(src).unwrap();
        let e = analyze(&ast, &env_ik()).unwrap_err();
        assert!(e.to_string().contains("combine_ops"), "{e}");
    }

    #[test]
    fn combine_op_count_mismatch() {
        let src = "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
";
        let ast = parse(src).unwrap();
        let e = analyze(&ast, &env_ik()).unwrap_err();
        assert!(e.to_string().contains("depth"), "{e}");
    }

    #[test]
    fn imperfect_nest_rejected() {
        let src = "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def f(w, M, v):
    for i in range(I):
        w[i] = v[i]
        for k in range(K):
            w[i] = M[i, k] * v[k]
";
        let ast = parse(src).unwrap();
        let e = analyze(&ast, &env_ik()).unwrap_err();
        assert!(e.to_string().contains("perfect"), "{e}");
    }

    #[test]
    fn reading_output_rejected() {
        let src = "\
@mdh( out( w = Buffer[fp32] ),
      inp( v = Buffer[fp32] ),
      combine_ops( cc ) )
def f(w, v):
    for i in range(I):
        w[i] = w[i] * v[i]
";
        let ast = parse(src).unwrap();
        let e = analyze(&ast, &env_ik()).unwrap_err();
        assert!(e.to_string().contains("read of output"), "{e}");
    }

    #[test]
    fn stencil_multi_access_dedup() {
        let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( cc ) )
def jacobi1d(y, x):
    for i in range(I):
        y[i] = 0.33 * (x[i] + x[i+1] + x[i+2])
";
        let ast = parse(src).unwrap();
        let a = analyze(&ast, &DirectiveEnv::new().size("I", 8)).unwrap();
        assert_eq!(a.inp_accesses.len(), 3, "three distinct stencil accesses");
        assert_eq!(a.sf.params.len(), 3);
    }

    #[test]
    fn repeated_access_shares_param_slot() {
        let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( cc ) )
def sq(y, x):
    for i in range(I):
        y[i] = x[i] * x[i]
";
        let ast = parse(src).unwrap();
        let a = analyze(&ast, &DirectiveEnv::new().size("I", 8)).unwrap();
        assert_eq!(a.inp_accesses.len(), 1, "same access deduplicated");
    }

    #[test]
    fn strided_store_access() {
        let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( cc ) )
def strided(y, x):
    for i in range(I):
        y[2*i + 1] = x[i]
";
        let ast = parse(src).unwrap();
        let a = analyze(&ast, &DirectiveEnv::new().size("I", 8)).unwrap();
        let IndexFn::Affine(exprs) = &a.out_accesses[0].1 else {
            panic!()
        };
        assert_eq!(exprs[0], AffineExpr::new(vec![2], 1));
    }

    #[test]
    fn nonaffine_index_rejected() {
        let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( cc, cc ) )
def f(y, x):
    for i in range(I):
        for k in range(K):
            y[i*k] = x[i]
";
        let ast = parse(src).unwrap();
        let e = analyze(&ast, &env_ik()).unwrap_err();
        assert!(e.to_string().contains("non-affine"), "{e}");
    }

    #[test]
    fn locals_and_conditionals() {
        let src = "\
@mdh( out( y = Buffer[fp64] ),
      inp( x = Buffer[fp64] ),
      combine_ops( cc ) )
def f(y, x):
    for i in range(I):
        t: fp64
        t = x[i] * 2.0
        if t > 1.0:
            y[i] = t
        else:
            y[i] = 0.0
";
        let ast = parse(src).unwrap();
        let a = analyze(&ast, &DirectiveEnv::new().size("I", 4)).unwrap();
        assert_eq!(
            a.out_accesses.len(),
            1,
            "both branches store to same access"
        );
        a.sf.validate().unwrap();
    }

    #[test]
    fn unknown_custom_combine_fn() {
        let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( pw(prl_max) ) )
def f(y, x):
    for i in range(I):
        y[0] = x[i]
";
        let ast = parse(src).unwrap();
        let e = analyze(&ast, &DirectiveEnv::new().size("I", 4)).unwrap_err();
        assert!(e.to_string().contains("prl_max"), "{e}");
    }

    #[test]
    fn loop_var_as_value_rejected() {
        let src = "\
@mdh( out( y = Buffer[fp32] ),
      inp( x = Buffer[fp32] ),
      combine_ops( cc ) )
def f(y, x):
    for i in range(I):
        y[i] = x[i] * i
";
        let ast = parse(src).unwrap();
        let e = analyze(&ast, &DirectiveEnv::new().size("I", 4)).unwrap_err();
        assert!(e.to_string().contains("loop variable"), "{e}");
    }
}
