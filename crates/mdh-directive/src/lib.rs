//! # mdh-directive
//!
//! The paper's contribution: a **reduction-aware directive** for
//! data-parallel computations, lowered onto the MDH DSL.
//!
//! Two front ends produce the same [`mdh_core::dsl::DslProgram`]:
//!
//! 1. The **textual directive language** — a Python-like surface syntax
//!    matching the paper's listings (the paper embeds the directive as a
//!    Python decorator; we parse the identical shape from text):
//!
//! ```
//! use mdh_directive::{compile, DirectiveEnv};
//!
//! let env = DirectiveEnv::new().size("I", 8).size("K", 8);
//! let prog = compile(
//!     "\
//! @mdh( out( w = Buffer[fp32] ),
//!       inp( M = Buffer[fp32], v = Buffer[fp32] ),
//!       combine_ops( cc, pw(add) ) )
//! def matvec(w, M, v):
//!     for i in range(I):
//!         for k in range(K):
//!             w[i] = M[i, k] * v[k]
//! ",
//!     &env,
//! )
//! .unwrap();
//! assert_eq!(prog.md_hom.reduction_dims(), vec![1]);
//! ```
//!
//! 2. The **programmatic builder** ([`builder::DirectiveBuilder`]) for
//!    hosts that assemble directives dynamically.
//!
//! The key design point (Section 4.1): the loop body computes a *single
//! iteration-space point* with `=`; reductions are declared in
//! `combine_ops(...)`. A `+=` in the body is rejected with guidance.

#![allow(clippy::needless_range_loop)]

/// Maximum nesting depth any front end will recurse to (parenthesised
/// expressions, unary-operator chains, statement blocks). The serving
/// path feeds client-controlled bytes into these recursive-descent
/// parsers; without a bound, pathological nesting is a stack overflow —
/// an abort `catch_unwind` cannot contain — rather than a parse error.
pub const MAX_NEST_DEPTH: usize = 64;

pub mod ast;
pub mod builder;
pub mod c_frontend;
pub mod dsl_text;
pub mod fortran_frontend;
pub mod lexer;
pub mod parser;
pub mod semantic;
pub mod transform;

pub use ast::{DirectiveAst, DirectiveEnv};
pub use builder::DirectiveBuilder;
pub use c_frontend::{compile_c, parse_c};
pub use dsl_text::parse_dsl;
pub use fortran_frontend::{compile_fortran, parse_fortran};
pub use parser::parse;
pub use semantic::{analyze, AnalyzedDirective};
pub use transform::{compile, directive_to_dsl, to_dsl};
