//! Programmatic directive construction.
//!
//! [`DirectiveBuilder`] is the Rust-native analogue of the `@mdh`
//! decorator: instead of parsing Python-like text it assembles the same
//! surface AST directly, then runs the identical analysis and
//! transformation pipeline. Useful when the host program wants to build
//! directives dynamically (the textual front end remains the primary,
//! paper-faithful interface).

use crate::ast::*;
use crate::semantic::analyze;
use crate::transform::to_dsl;
use mdh_core::dsl::DslProgram;
use mdh_core::error::Result;

/// Fluent builder for a directive program.
///
/// ```
/// use mdh_directive::builder::DirectiveBuilder;
/// use mdh_directive::ast::{AssignTarget, DirectiveEnv, SurfBinOp, SurfaceExpr};
///
/// // MatVec, built programmatically (cf. Listing 8)
/// let env = DirectiveEnv::new().size("I", 4).size("K", 5);
/// let prog = DirectiveBuilder::new("matvec")
///     .out("w", "fp32")
///     .inp("M", "fp32")
///     .inp("v", "fp32")
///     .combine_op_cc()
///     .combine_op_pw("add")
///     .loop_var("i", SurfaceExpr::Name("I".into()))
///     .loop_var("k", SurfaceExpr::Name("K".into()))
///     .store(
///         AssignTarget::Subscript("w".into(), vec![SurfaceExpr::Name("i".into())]),
///         SurfaceExpr::Bin(
///             SurfBinOp::Mul,
///             Box::new(SurfaceExpr::Subscript(
///                 Box::new(SurfaceExpr::Name("M".into())),
///                 vec![SurfaceExpr::Name("i".into()), SurfaceExpr::Name("k".into())],
///             )),
///             Box::new(SurfaceExpr::Subscript(
///                 Box::new(SurfaceExpr::Name("v".into())),
///                 vec![SurfaceExpr::Name("k".into())],
///             )),
///         ),
///     )
///     .build(&env)
///     .unwrap();
/// assert_eq!(prog.md_hom.sizes, vec![4, 5]);
/// ```
pub struct DirectiveBuilder {
    name: String,
    out: Vec<BufferSpec>,
    inp: Vec<BufferSpec>,
    combine_ops: Vec<CombineOpSpec>,
    loops: Vec<(String, SurfaceExpr)>,
    body: Vec<SurfaceStmt>,
}

impl DirectiveBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        DirectiveBuilder {
            name: name.into(),
            out: Vec::new(),
            inp: Vec::new(),
            combine_ops: Vec::new(),
            loops: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Declare an output buffer `name = Buffer[ty]`.
    pub fn out(mut self, name: &str, ty: &str) -> Self {
        self.out.push(BufferSpec {
            name: name.into(),
            ty_name: ty.into(),
            shape: None,
            line: 0,
        });
        self
    }

    /// Declare an output buffer with an explicit shape.
    pub fn out_with_shape(mut self, name: &str, ty: &str, shape: Vec<SurfaceExpr>) -> Self {
        self.out.push(BufferSpec {
            name: name.into(),
            ty_name: ty.into(),
            shape: Some(shape),
            line: 0,
        });
        self
    }

    /// Declare an input buffer `name = Buffer[ty]`.
    pub fn inp(mut self, name: &str, ty: &str) -> Self {
        self.inp.push(BufferSpec {
            name: name.into(),
            ty_name: ty.into(),
            shape: None,
            line: 0,
        });
        self
    }

    /// Declare an input buffer with an explicit shape (as MCC's enlarged
    /// `img`, Listing 12).
    pub fn inp_with_shape(mut self, name: &str, ty: &str, shape: Vec<SurfaceExpr>) -> Self {
        self.inp.push(BufferSpec {
            name: name.into(),
            ty_name: ty.into(),
            shape: Some(shape),
            line: 0,
        });
        self
    }

    pub fn combine_op_cc(mut self) -> Self {
        self.combine_ops.push(CombineOpSpec::Cc);
        self
    }

    pub fn combine_op_pw(mut self, f: &str) -> Self {
        self.combine_ops.push(CombineOpSpec::Pw(f.into()));
        self
    }

    pub fn combine_op_ps(mut self, f: &str) -> Self {
        self.combine_ops.push(CombineOpSpec::Ps(f.into()));
        self
    }

    /// Add a loop level `for var in range(count)`.
    pub fn loop_var(mut self, var: &str, count: SurfaceExpr) -> Self {
        self.loops.push((var.into(), count));
        self
    }

    /// Add an innermost-body statement.
    pub fn stmt(mut self, stmt: SurfaceStmt) -> Self {
        self.body.push(stmt);
        self
    }

    /// Add a store `target = value`.
    pub fn store(self, target: AssignTarget, value: SurfaceExpr) -> Self {
        self.stmt(SurfaceStmt::Assign {
            target,
            value,
            line: 0,
        })
    }

    /// Assemble the AST, analyse it, and produce the DSL program.
    pub fn build(self, env: &DirectiveEnv) -> Result<DslProgram> {
        let mut body = self.body;
        for (var, count) in self.loops.into_iter().rev() {
            body = vec![SurfaceStmt::For {
                var,
                count,
                body,
                line: 0,
            }];
        }
        let params = self
            .out
            .iter()
            .chain(&self.inp)
            .map(|b| b.name.clone())
            .collect();
        let ast = DirectiveAst {
            name: self.name,
            params,
            out: self.out,
            inp: self.inp,
            combine_ops: self.combine_ops,
            body,
            line: 0,
        };
        let analyzed = analyze(&ast, env)?;
        to_dsl(&analyzed)
    }
}

/// Shorthand constructors for surface expressions.
pub mod sx {
    use super::*;

    pub fn name(n: &str) -> SurfaceExpr {
        SurfaceExpr::Name(n.into())
    }

    pub fn int(v: i64) -> SurfaceExpr {
        SurfaceExpr::Int(v)
    }

    pub fn float(v: f64) -> SurfaceExpr {
        SurfaceExpr::Float(v)
    }

    pub fn load(buffer: &str, indices: Vec<SurfaceExpr>) -> SurfaceExpr {
        SurfaceExpr::Subscript(Box::new(name(buffer)), indices)
    }

    pub fn add(a: SurfaceExpr, b: SurfaceExpr) -> SurfaceExpr {
        SurfaceExpr::Bin(SurfBinOp::Add, Box::new(a), Box::new(b))
    }

    pub fn sub(a: SurfaceExpr, b: SurfaceExpr) -> SurfaceExpr {
        SurfaceExpr::Bin(SurfBinOp::Sub, Box::new(a), Box::new(b))
    }

    pub fn mul(a: SurfaceExpr, b: SurfaceExpr) -> SurfaceExpr {
        SurfaceExpr::Bin(SurfBinOp::Mul, Box::new(a), Box::new(b))
    }

    pub fn store(buffer: &str, indices: Vec<SurfaceExpr>) -> AssignTarget {
        AssignTarget::Subscript(buffer.into(), indices)
    }
}

#[cfg(test)]
mod tests {
    use super::sx::*;
    use super::*;
    use mdh_core::buffer::Buffer;
    use mdh_core::eval::evaluate_recursive;
    use mdh_core::shape::Shape;
    use mdh_core::types::BasicType;

    #[test]
    fn builder_matmul_runs() {
        let env = DirectiveEnv::new().size("I", 2).size("J", 3).size("K", 4);
        let prog = DirectiveBuilder::new("matmul")
            .out("C", "fp64")
            .inp("A", "fp64")
            .inp("B", "fp64")
            .combine_op_cc()
            .combine_op_cc()
            .combine_op_pw("add")
            .loop_var("i", name("I"))
            .loop_var("j", name("J"))
            .loop_var("k", name("K"))
            .store(
                store("C", vec![name("i"), name("j")]),
                mul(
                    load("A", vec![name("i"), name("k")]),
                    load("B", vec![name("k"), name("j")]),
                ),
            )
            .build(&env)
            .unwrap();
        let mut a = Buffer::zeros("A", BasicType::F64, Shape::new(vec![2, 4]));
        a.fill_with(|f| f as f64);
        let mut b = Buffer::zeros("B", BasicType::F64, Shape::new(vec![4, 3]));
        b.fill_with(|f| 1.0 + f as f64);
        let out = evaluate_recursive(&prog, &[a, b]).unwrap();
        assert_eq!(out[0].shape, Shape::new(vec![2, 3]));
    }

    #[test]
    fn builder_rejects_missing_combine_ops() {
        let env = DirectiveEnv::new().size("I", 2);
        let r = DirectiveBuilder::new("bad")
            .out("y", "fp32")
            .inp("x", "fp32")
            .loop_var("i", name("I"))
            .store(store("y", vec![name("i")]), load("x", vec![name("i")]))
            .build(&env);
        assert!(r.is_err());
    }

    #[test]
    fn builder_with_declared_shape() {
        let env = DirectiveEnv::new().size("N", 4);
        let prog = DirectiveBuilder::new("pad")
            .out("y", "fp32")
            .inp_with_shape("x", "fp32", vec![add(name("N"), int(2))])
            .combine_op_cc()
            .loop_var("i", name("N"))
            .store(
                store("y", vec![name("i")]),
                load("x", vec![add(name("i"), int(1))]),
            )
            .build(&env)
            .unwrap();
        assert_eq!(prog.input_shapes().unwrap(), vec![vec![6]]);
    }
}
