//! Recursive-descent parser for the textual MDH directive language.
//!
//! Accepts the surface form of the paper's listings (Listings 8–13):
//!
//! ```text
//! @mdh( out( w = Buffer[fp32] ),
//!       inp( M = Buffer[fp32], v = Buffer[fp32] ),
//!       combine_ops( cc, pw(add) ) )
//! def matvec(w, M, v):
//!     for i in range(I):
//!         for k in range(K):
//!             w[i] = M[i, k] * v[k]
//! ```

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use mdh_core::error::{MdhError, Result};

pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    pub fn new(src: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(src)?,
            pos: 0,
            depth: 0,
        })
    }

    /// Bound recursive descent to [`crate::MAX_NEST_DEPTH`]. Callers pair
    /// this with a `self.depth -= 1` on the success path; an error
    /// aborts the whole parse, so a missed decrement there is moot.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > crate::MAX_NEST_DEPTH {
            return Err(self.err_here(format!(
                "nesting deeper than {} levels",
                crate::MAX_NEST_DEPTH
            )));
        }
        Ok(())
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> MdhError {
        let t = self.peek();
        MdhError::Parse {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token> {
        if self.peek_kind() == &kind {
            Ok(self.advance())
        } else {
            Err(self.err_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    fn accept(&mut self, kind: TokenKind) -> bool {
        if self.peek_kind() == &kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(self.err_here(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        let got = self.expect_ident()?;
        if got == kw {
            Ok(())
        } else {
            Err(self.err_here(format!("expected keyword '{kw}', found '{got}'")))
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek_kind(), TokenKind::Newline) {
            self.advance();
        }
    }

    /// Parse a complete directive: `@mdh(...)` header + `def` + body.
    pub fn parse_directive(&mut self) -> Result<DirectiveAst> {
        self.skip_newlines();
        let line = self.peek().line;
        self.expect(TokenKind::At)?;
        self.expect_keyword("mdh")?;
        self.expect(TokenKind::LParen)?;

        let mut out = Vec::new();
        let mut inp = Vec::new();
        let mut combine_ops = Vec::new();
        let mut seen_out = false;
        let mut seen_inp = false;
        let mut seen_co = false;
        loop {
            let clause = self.expect_ident()?;
            match clause.as_str() {
                "out" => {
                    if seen_out {
                        return Err(self.err_here("duplicate out(...) clause"));
                    }
                    seen_out = true;
                    out = self.parse_buffer_specs()?;
                }
                "inp" => {
                    if seen_inp {
                        return Err(self.err_here("duplicate inp(...) clause"));
                    }
                    seen_inp = true;
                    inp = self.parse_buffer_specs()?;
                }
                "combine_ops" => {
                    if seen_co {
                        return Err(self.err_here("duplicate combine_ops(...) clause"));
                    }
                    seen_co = true;
                    combine_ops = self.parse_combine_ops()?;
                }
                other => {
                    return Err(self.err_here(format!(
                        "unknown @mdh clause '{other}' (expected out, inp, or combine_ops)"
                    )))
                }
            }
            if !self.accept(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        if !seen_out {
            return Err(self.err_here("@mdh directive requires an out(...) clause"));
        }
        if !seen_inp {
            return Err(self.err_here("@mdh directive requires an inp(...) clause"));
        }
        if !seen_co {
            return Err(self.err_here("@mdh directive requires a combine_ops(...) clause"));
        }
        self.expect(TokenKind::Newline)?;
        self.skip_newlines();

        // def name(params):
        self.expect_keyword("def")?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek_kind(), TokenKind::RParen) {
            loop {
                params.push(self.expect_ident()?);
                if !self.accept(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Colon)?;
        self.expect(TokenKind::Newline)?;
        let body = self.parse_block()?;
        self.skip_newlines();

        Ok(DirectiveAst {
            name,
            params,
            out,
            inp,
            combine_ops,
            body,
            line,
        })
    }

    /// `( name = Buffer[ty] , name = Buffer[ty, [shape...]] , ... )`
    fn parse_buffer_specs(&mut self) -> Result<Vec<BufferSpec>> {
        self.expect(TokenKind::LParen)?;
        let mut specs = Vec::new();
        loop {
            let line = self.peek().line;
            let name = self.expect_ident()?;
            self.expect(TokenKind::Assign)?;
            self.expect_keyword("Buffer")?;
            self.expect(TokenKind::LBracket)?;
            let ty_name = self.expect_ident()?;
            let shape = if self.accept(TokenKind::Comma) {
                self.expect(TokenKind::LBracket)?;
                let mut dims = Vec::new();
                loop {
                    dims.push(self.parse_expr()?);
                    if !self.accept(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Some(dims)
            } else {
                None
            };
            self.expect(TokenKind::RBracket)?;
            specs.push(BufferSpec {
                name,
                ty_name,
                shape,
                line,
            });
            if !self.accept(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(specs)
    }

    /// `( cc, pw(add), ps(f), ... )`
    fn parse_combine_ops(&mut self) -> Result<Vec<CombineOpSpec>> {
        self.expect(TokenKind::LParen)?;
        let mut ops = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let spec = match name.as_str() {
                "cc" => CombineOpSpec::Cc,
                "pw" | "ps" | "rbi" => {
                    self.expect(TokenKind::LParen)?;
                    let f = self.expect_ident()?;
                    self.expect(TokenKind::RParen)?;
                    match name.as_str() {
                        "pw" => CombineOpSpec::Pw(f),
                        "ps" => CombineOpSpec::Ps(f),
                        _ => CombineOpSpec::Rbi(f),
                    }
                }
                other => {
                    return Err(self.err_here(format!(
                        "unknown combine operator '{other}' (expected cc, pw(f), ps(f), or rbi(f))"
                    )))
                }
            };
            ops.push(spec);
            if !self.accept(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(ops)
    }

    /// Parse an indented statement block.
    fn parse_block(&mut self) -> Result<Vec<SurfaceStmt>> {
        self.descend()?;
        self.expect(TokenKind::Indent)?;
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek_kind() {
                TokenKind::Dedent => {
                    self.advance();
                    break;
                }
                TokenKind::Eof => break,
                _ => stmts.push(self.parse_stmt()?),
            }
        }
        if stmts.is_empty() {
            return Err(self.err_here("empty block"));
        }
        self.depth -= 1;
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<SurfaceStmt> {
        let line = self.peek().line;
        match self.peek_kind().clone() {
            TokenKind::Ident(kw) if kw == "for" => {
                self.advance();
                let var = self.expect_ident()?;
                self.expect_keyword("in")?;
                self.expect_keyword("range")?;
                self.expect(TokenKind::LParen)?;
                let count = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Colon)?;
                self.expect(TokenKind::Newline)?;
                let body = self.parse_block()?;
                Ok(SurfaceStmt::For {
                    var,
                    count,
                    body,
                    line,
                })
            }
            TokenKind::Ident(kw) if kw == "if" => {
                self.advance();
                let cond = self.parse_expr()?;
                self.expect(TokenKind::Colon)?;
                self.expect(TokenKind::Newline)?;
                let then_branch = self.parse_block()?;
                self.skip_newlines();
                let else_branch = if matches!(self.peek_kind(), TokenKind::Ident(k) if k == "else")
                {
                    self.advance();
                    self.expect(TokenKind::Colon)?;
                    self.expect(TokenKind::Newline)?;
                    self.parse_block()?
                } else {
                    Vec::new()
                };
                Ok(SurfaceStmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    line,
                })
            }
            TokenKind::Ident(_) => {
                // assignment, typed declaration, or augmented assignment
                let name = self.expect_ident()?;
                match self.peek_kind().clone() {
                    TokenKind::Colon => {
                        self.advance();
                        let ty_name = self.expect_ident()?;
                        self.expect(TokenKind::Newline)?;
                        Ok(SurfaceStmt::Decl {
                            name,
                            ty_name,
                            line,
                        })
                    }
                    TokenKind::LBracket => {
                        self.advance();
                        let mut indices = Vec::new();
                        loop {
                            indices.push(self.parse_expr()?);
                            if !self.accept(TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(TokenKind::RBracket)?;
                        let target = AssignTarget::Subscript(name, indices);
                        if self.accept(TokenKind::PlusAssign) {
                            // consume RHS for a clean resume, then report
                            let _ = self.parse_expr()?;
                            let _ = self.accept(TokenKind::Newline);
                            return Ok(SurfaceStmt::AugAssign { target, line });
                        }
                        self.expect(TokenKind::Assign)?;
                        let value = self.parse_expr()?;
                        self.expect(TokenKind::Newline)?;
                        Ok(SurfaceStmt::Assign {
                            target,
                            value,
                            line,
                        })
                    }
                    TokenKind::Assign => {
                        self.advance();
                        let value = self.parse_expr()?;
                        self.expect(TokenKind::Newline)?;
                        Ok(SurfaceStmt::Assign {
                            target: AssignTarget::Name(name),
                            value,
                            line,
                        })
                    }
                    TokenKind::PlusAssign => {
                        self.advance();
                        let _ = self.parse_expr()?;
                        let _ = self.accept(TokenKind::Newline);
                        Ok(SurfaceStmt::AugAssign {
                            target: AssignTarget::Name(name),
                            line,
                        })
                    }
                    other => Err(self.err_here(format!(
                        "expected assignment or declaration, found {}",
                        other.describe()
                    ))),
                }
            }
            other => Err(self.err_here(format!("unexpected {}", other.describe()))),
        }
    }

    /// Expression grammar (precedence climbing):
    /// or < and < not < comparison < additive < multiplicative < unary
    /// < postfix < primary.
    pub fn parse_expr(&mut self) -> Result<SurfaceExpr> {
        self.descend()?;
        let e = self.parse_or();
        self.depth -= 1;
        e
    }

    fn parse_or(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek_kind(), TokenKind::Ident(k) if k == "or") {
            self.advance();
            let rhs = self.parse_and()?;
            lhs = SurfaceExpr::Bin(SurfBinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.parse_not()?;
        while matches!(self.peek_kind(), TokenKind::Ident(k) if k == "and") {
            self.advance();
            let rhs = self.parse_not()?;
            lhs = SurfaceExpr::Bin(SurfBinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<SurfaceExpr> {
        if matches!(self.peek_kind(), TokenKind::Ident(k) if k == "not") {
            self.advance();
            self.descend()?;
            let e = self.parse_not();
            self.depth -= 1;
            return Ok(SurfaceExpr::Un(SurfUnOp::Not, Box::new(e?)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<SurfaceExpr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek_kind() {
            TokenKind::EqEq => Some(SurfBinOp::Eq),
            TokenKind::NotEq => Some(SurfBinOp::Ne),
            TokenKind::Lt => Some(SurfBinOp::Lt),
            TokenKind::Le => Some(SurfBinOp::Le),
            TokenKind::Gt => Some(SurfBinOp::Gt),
            TokenKind::Ge => Some(SurfBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.parse_additive()?;
            Ok(SurfaceExpr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_additive(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => SurfBinOp::Add,
                TokenKind::Minus => SurfBinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_multiplicative()?;
            lhs = SurfaceExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<SurfaceExpr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => SurfBinOp::Mul,
                TokenKind::Slash => SurfBinOp::Div,
                TokenKind::Percent => SurfBinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = SurfaceExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<SurfaceExpr> {
        if self.accept(TokenKind::Minus) {
            self.descend()?;
            let e = self.parse_unary();
            self.depth -= 1;
            return Ok(SurfaceExpr::Un(SurfUnOp::Neg, Box::new(e?)));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<SurfaceExpr> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek_kind() {
                TokenKind::LBracket => {
                    self.advance();
                    let mut indices = Vec::new();
                    loop {
                        indices.push(self.parse_expr()?);
                        if !self.accept(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBracket)?;
                    e = SurfaceExpr::Subscript(Box::new(e), indices);
                }
                TokenKind::Dot => {
                    self.advance();
                    let field = self.expect_ident()?;
                    e = SurfaceExpr::Attr(Box::new(e), field);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<SurfaceExpr> {
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(SurfaceExpr::Int(v))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(SurfaceExpr::Float(v))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(SurfaceExpr::Str(s))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.advance();
                if matches!(self.peek_kind(), TokenKind::LParen) {
                    self.advance();
                    let mut args = Vec::new();
                    if !matches!(self.peek_kind(), TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.accept(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(SurfaceExpr::Call(name, args))
                } else {
                    Ok(SurfaceExpr::Name(name))
                }
            }
            other => Err(self.err_here(format!("unexpected {}", other.describe()))),
        }
    }
}

/// Parse one directive from source text.
pub fn parse(src: &str) -> Result<DirectiveAst> {
    let mut p = Parser::new(src)?;
    let d = p.parse_directive()?;
    p.skip_newlines();
    // allow trailing dedents/newlines only
    loop {
        match p.peek_kind() {
            TokenKind::Eof => break,
            TokenKind::Newline | TokenKind::Dedent => {
                p.advance();
            }
            other => {
                return Err(MdhError::Parse {
                    line: p.peek().line,
                    col: p.peek().col,
                    message: format!("trailing {} after directive", other.describe()),
                })
            }
        }
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MATVEC: &str = "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
";

    #[test]
    fn parses_matvec() {
        let d = parse(MATVEC).unwrap();
        assert_eq!(d.name, "matvec");
        assert_eq!(d.params, vec!["w", "M", "v"]);
        assert_eq!(d.out.len(), 1);
        assert_eq!(d.inp.len(), 2);
        assert_eq!(
            d.combine_ops,
            vec![CombineOpSpec::Cc, CombineOpSpec::Pw("add".into())]
        );
        // two nested loops
        let SurfaceStmt::For { var, body, .. } = &d.body[0] else {
            panic!("expected for");
        };
        assert_eq!(var, "i");
        let SurfaceStmt::For { var, body, .. } = &body[0] else {
            panic!("expected inner for");
        };
        assert_eq!(var, "k");
        assert!(matches!(&body[0], SurfaceStmt::Assign { .. }));
    }

    #[test]
    fn parses_buffer_with_shape() {
        let src = "\
@mdh( out( res = Buffer[fp32] ),
      inp( img = Buffer[fp32, [N, 2*P+R-1, C]] ),
      combine_ops( cc ) )
def f(res, img):
    for n in range(N):
        res[n] = img[n, 0, 0]
";
        let d = parse(src).unwrap();
        let shape = d.inp[0].shape.as_ref().unwrap();
        assert_eq!(shape.len(), 3);
        assert_eq!(shape[0], SurfaceExpr::Name("N".into()));
    }

    #[test]
    fn parses_if_else_and_decl() {
        let src = "\
@mdh( out( o = Buffer[fp64] ),
      inp( a = Buffer[fp64] ),
      combine_ops( cc ) )
def f(o, a):
    for i in range(N):
        tmp: fp64
        tmp = a[i] * 2
        if tmp > 1.0:
            o[i] = tmp
        else:
            o[i] = 0.0
";
        let d = parse(src).unwrap();
        let SurfaceStmt::For { body, .. } = &d.body[0] else {
            panic!()
        };
        assert!(matches!(&body[0], SurfaceStmt::Decl { name, .. } if name == "tmp"));
        assert!(matches!(&body[2], SurfaceStmt::If { else_branch, .. } if !else_branch.is_empty()));
    }

    #[test]
    fn plus_assign_parsed_for_error_reporting() {
        let src = "\
@mdh( out( w = Buffer[fp32] ),
      inp( v = Buffer[fp32] ),
      combine_ops( pw(add) ) )
def f(w, v):
    for k in range(K):
        w[0] += v[k]
";
        let d = parse(src).unwrap();
        let SurfaceStmt::For { body, .. } = &d.body[0] else {
            panic!()
        };
        assert!(matches!(&body[0], SurfaceStmt::AugAssign { .. }));
    }

    #[test]
    fn missing_clause_rejected() {
        let src = "\
@mdh( out( w = Buffer[fp32] ),
      combine_ops( cc ) )
def f(w):
    for i in range(I):
        w[i] = 1
";
        assert!(parse(src).is_err());
    }

    #[test]
    fn unknown_combine_op_rejected() {
        let src = "\
@mdh( out( w = Buffer[fp32] ),
      inp( v = Buffer[fp32] ),
      combine_ops( scan ) )
def f(w, v):
    for i in range(I):
        w[i] = v[i]
";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("unknown combine operator"));
    }

    #[test]
    fn operator_precedence() {
        let mut p = Parser::new("a + b * c").unwrap();
        let e = p.parse_expr().unwrap();
        // a + (b * c)
        assert!(matches!(e, SurfaceExpr::Bin(SurfBinOp::Add, _, ref r)
            if matches!(**r, SurfaceExpr::Bin(SurfBinOp::Mul, _, _))));
    }

    #[test]
    fn attribute_and_string_subscript() {
        let mut p = Parser::new("probM[n, i].match_weight").unwrap();
        let e = p.parse_expr().unwrap();
        assert!(matches!(e, SurfaceExpr::Attr(_, ref f) if f == "match_weight"));
        let mut p = Parser::new("lhs['id_measure']").unwrap();
        let e = p.parse_expr().unwrap();
        assert!(matches!(e, SurfaceExpr::Subscript(_, ref idx)
            if matches!(idx[0], SurfaceExpr::Str(_))));
    }

    #[test]
    fn call_expressions() {
        let mut p = Parser::new("max(a, b) + sqrt(c)").unwrap();
        let e = p.parse_expr().unwrap();
        assert!(matches!(e, SurfaceExpr::Bin(SurfBinOp::Add, _, _)));
    }
}
