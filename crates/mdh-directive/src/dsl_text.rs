//! Textual surface of the MDH **DSL** itself (Listings 6 and 7).
//!
//! The paper's directive is translated *onto* the MDH DSL; this module
//! also lets the DSL be written directly, for users familiar with the
//! formalism:
//!
//! ```text
//! out_view[fp32]( w = [lambda i,k: (i)] ),
//! md_hom[I,K]( f_mul, (cc, pw(add)) ),
//! inp_view[fp32,fp32]( M = [lambda i,k: (i,k)], v = [lambda i,k: (k)] )
//! ```
//!
//! Index functions are the lambdas of `inp_view`/`out_view`; a buffer may
//! list several (stencil accesses, `#ACC_b` in the paper). Scalar
//! functions are referenced by name: `f_mul` (point-wise product of all
//! accesses) and `f_id` (single-access identity) are built in; others
//! are registered in the [`DirectiveEnv`].

use crate::ast::DirectiveEnv;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::semantic::resolve_type;
use mdh_core::combine::{BuiltinReduce, CombineOp, PwFunc};
use mdh_core::dsl::{DslProgram, MdHom};
use mdh_core::error::{MdhError, Result};
use mdh_core::expr::{Expr, ScalarFunction, Stmt};
use mdh_core::index_fn::{AffineExpr, IndexFn};
use mdh_core::types::BasicType;
use mdh_core::views::{Access, BufferDecl, View};
use std::sync::Arc;

struct P {
    toks: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl P {
    /// Bound recursive descent to [`crate::MAX_NEST_DEPTH`]; paired with
    /// `self.depth -= 1` on the success path.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > crate::MAX_NEST_DEPTH {
            return Err(self.err(format!(
                "nesting deeper than {} levels",
                crate::MAX_NEST_DEPTH
            )));
        }
        Ok(())
    }
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos.min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn next(&mut self) -> TokenKind {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].kind.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, m: impl Into<String>) -> MdhError {
        MdhError::Parse {
            line: self.line(),
            col: self.toks[self.pos.min(self.toks.len() - 1)].col,
            message: m.into(),
        }
    }

    fn expect(&mut self, k: TokenKind) -> Result<()> {
        if self.peek() == &k {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                k.describe(),
                self.peek().describe()
            )))
        }
    }

    fn accept(&mut self, k: TokenKind) -> bool {
        if self.peek() == &k {
            self.next();
            true
        } else {
            false
        }
    }

    fn skip_layout(&mut self) {
        while matches!(
            self.peek(),
            TokenKind::Newline | TokenKind::Indent | TokenKind::Dedent
        ) {
            self.next();
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let got = self.ident()?;
        if got == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}', found '{got}'")))
        }
    }

    /// `[ T, T, ... ]` — basic types per buffer.
    fn type_list(&mut self, env: &DirectiveEnv) -> Result<Vec<BasicType>> {
        self.expect(TokenKind::LBracket)?;
        let mut tys = Vec::new();
        loop {
            let n = self.ident()?;
            tys.push(resolve_type(&n, env).ok_or_else(|| self.err(format!("unknown type '{n}'")))?);
            if !self.accept(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RBracket)?;
        Ok(tys)
    }

    /// `lambda i,k: (expr, expr)` → (iteration vars, affine exprs).
    fn lambda(&mut self, vars: &mut Option<Vec<String>>, env: &DirectiveEnv) -> Result<IndexFn> {
        self.keyword("lambda")?;
        let mut params = Vec::new();
        loop {
            params.push(self.ident()?);
            if !self.accept(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Colon)?;
        // all lambdas in a program must agree on the iteration variables
        match vars {
            None => *vars = Some(params.clone()),
            Some(v) => {
                if *v != params {
                    return Err(self.err(format!(
                        "index-function parameters {params:?} differ from {v:?}"
                    )));
                }
            }
        }
        let rank = params.len();
        let parenthesised = self.accept(TokenKind::LParen);
        let mut exprs = Vec::new();
        loop {
            exprs.push(self.affine(&params, rank, env)?);
            if !(parenthesised && self.accept(TokenKind::Comma)) {
                break;
            }
        }
        if parenthesised {
            self.expect(TokenKind::RParen)?;
        }
        Ok(IndexFn::Affine(exprs))
    }

    /// Affine expression over the lambda parameters.
    fn affine(&mut self, vars: &[String], rank: usize, env: &DirectiveEnv) -> Result<AffineExpr> {
        self.descend()?;
        let e = self.affine_inner(vars, rank, env);
        self.depth -= 1;
        e
    }

    fn affine_inner(
        &mut self,
        vars: &[String],
        rank: usize,
        env: &DirectiveEnv,
    ) -> Result<AffineExpr> {
        let mut acc = self.affine_term(vars, rank, env)?;
        loop {
            if self.accept(TokenKind::Plus) {
                let t = self.affine_term(vars, rank, env)?;
                acc = AffineExpr {
                    coeffs: acc
                        .coeffs
                        .iter()
                        .zip(&t.coeffs)
                        .map(|(a, b)| a + b)
                        .collect(),
                    constant: acc.constant + t.constant,
                };
            } else if self.accept(TokenKind::Minus) {
                let t = self.affine_term(vars, rank, env)?;
                acc = AffineExpr {
                    coeffs: acc
                        .coeffs
                        .iter()
                        .zip(&t.coeffs)
                        .map(|(a, b)| a - b)
                        .collect(),
                    constant: acc.constant - t.constant,
                };
            } else {
                break;
            }
        }
        Ok(acc)
    }

    fn affine_term(
        &mut self,
        vars: &[String],
        rank: usize,
        env: &DirectiveEnv,
    ) -> Result<AffineExpr> {
        let mut factors: Vec<AffineExpr> = vec![self.affine_atom(vars, rank, env)?];
        while self.accept(TokenKind::Star) {
            factors.push(self.affine_atom(vars, rank, env)?);
        }
        // product: at most one non-constant factor
        let mut constant = 1i64;
        let mut var_part: Option<AffineExpr> = None;
        for f in factors {
            if f.coeffs.iter().all(|&c| c == 0) {
                constant *= f.constant;
            } else if var_part.is_none() {
                var_part = Some(f);
            } else {
                return Err(self.err("non-affine index expression"));
            }
        }
        Ok(match var_part {
            Some(v) => AffineExpr {
                coeffs: v.coeffs.iter().map(|c| c * constant).collect(),
                constant: v.constant * constant,
            },
            None => AffineExpr::constant(rank, constant),
        })
    }

    fn affine_atom(
        &mut self,
        vars: &[String],
        rank: usize,
        env: &DirectiveEnv,
    ) -> Result<AffineExpr> {
        match self.next() {
            TokenKind::Int(v) => Ok(AffineExpr::constant(rank, v)),
            TokenKind::Minus => {
                self.descend()?;
                let a = self.affine_atom(vars, rank, env);
                self.depth -= 1;
                let a = a?;
                Ok(AffineExpr {
                    coeffs: a.coeffs.iter().map(|c| -c).collect(),
                    constant: -a.constant,
                })
            }
            TokenKind::LParen => {
                let a = self.affine(vars, rank, env)?;
                self.expect(TokenKind::RParen)?;
                Ok(a)
            }
            TokenKind::Ident(n) => {
                if let Some(d) = vars.iter().position(|v| *v == n) {
                    Ok(AffineExpr::var(rank, d))
                } else if let Some(&v) = env.sizes.get(&n) {
                    Ok(AffineExpr::constant(rank, v))
                } else {
                    Err(self.err(format!("unknown name '{n}' in index function")))
                }
            }
            other => Err(self.err(format!("unexpected {} in index function", other.describe()))),
        }
    }

    /// `( buf = [lambda...], buf = [lambda...] )` → a view.
    fn view(
        &mut self,
        tys: Vec<BasicType>,
        vars: &mut Option<Vec<String>>,
        env: &DirectiveEnv,
    ) -> Result<View> {
        self.expect(TokenKind::LParen)?;
        let mut buffers = Vec::new();
        let mut accesses = Vec::new();
        loop {
            self.skip_layout();
            let name = self.ident()?;
            self.expect(TokenKind::Assign)?;
            self.expect(TokenKind::LBracket)?;
            let b = buffers.len();
            loop {
                let f = self.lambda(vars, env)?;
                accesses.push(Access::new(b, f));
                if !self.accept(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBracket)?;
            let ty = tys
                .get(b)
                .cloned()
                .ok_or_else(|| self.err(format!("no type listed for buffer '{name}'")))?;
            buffers.push(BufferDecl::new(name, ty));
            self.skip_layout();
            if !self.accept(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        if buffers.len() != tys.len() {
            return Err(self.err(format!(
                "{} types listed for {} buffers",
                tys.len(),
                buffers.len()
            )));
        }
        Ok(View::new(buffers, accesses))
    }

    /// `cc` | `pw(name)` | `ps(name)` | `rbi(add)`.
    fn combine_op(&mut self, env: &DirectiveEnv) -> Result<CombineOp> {
        let n = self.ident()?;
        let resolve = |this: &P, name: &str| -> Result<PwFunc> {
            match name {
                "add" => Ok(PwFunc::builtin(BuiltinReduce::Add)),
                "mul" => Ok(PwFunc::builtin(BuiltinReduce::Mul)),
                "max" => Ok(PwFunc::builtin(BuiltinReduce::Max)),
                "min" => Ok(PwFunc::builtin(BuiltinReduce::Min)),
                other => env
                    .combine_fns
                    .get(other)
                    .cloned()
                    .ok_or_else(|| this.err(format!("unknown combine function '{other}'"))),
            }
        };
        match n.as_str() {
            "cc" => Ok(CombineOp::Cc),
            "pw" => {
                self.expect(TokenKind::LParen)?;
                let f = self.ident()?;
                self.expect(TokenKind::RParen)?;
                Ok(CombineOp::Pw(resolve(self, &f)?))
            }
            "ps" => {
                self.expect(TokenKind::LParen)?;
                let f = self.ident()?;
                self.expect(TokenKind::RParen)?;
                Ok(CombineOp::Ps(resolve(self, &f)?))
            }
            "rbi" => {
                self.expect(TokenKind::LParen)?;
                let f = self.ident()?;
                self.expect(TokenKind::RParen)?;
                if f != "add" {
                    return Err(self.err(format!(
                        "rbi only supports the builtin 'add' operator, got '{f}'"
                    )));
                }
                Ok(CombineOp::rbi_add())
            }
            other => Err(self.err(format!("unknown combine operator '{other}'"))),
        }
    }
}

/// Built-in scalar functions of the DSL surface.
fn builtin_sf(
    name: &str,
    param_tys: &[BasicType],
    result_tys: &[BasicType],
) -> Option<ScalarFunction> {
    let kind = |t: &BasicType| t.as_scalar();
    match name {
        // point-wise product of all accesses (Listing 6's f_mul)
        "f_mul" if result_tys.len() == 1 && !param_tys.is_empty() => {
            let mut e = Expr::Param(0);
            for p in 1..param_tys.len() {
                e = Expr::mul(e, Expr::Param(p));
            }
            Some(ScalarFunction {
                name: "f_mul".into(),
                params: param_tys
                    .iter()
                    .enumerate()
                    .map(|(p, t)| (format!("p{p}"), t.clone()))
                    .collect(),
                results: vec![("res".into(), result_tys[0].clone())],
                body: vec![Stmt::Assign {
                    name: "res".into(),
                    value: e,
                }],
            })
        }
        // point-wise sum of all accesses
        "f_add" if result_tys.len() == 1 && !param_tys.is_empty() => {
            let mut e = Expr::Param(0);
            for p in 1..param_tys.len() {
                e = Expr::add(e, Expr::Param(p));
            }
            Some(ScalarFunction {
                name: "f_add".into(),
                params: param_tys
                    .iter()
                    .enumerate()
                    .map(|(p, t)| (format!("p{p}"), t.clone()))
                    .collect(),
                results: vec![("res".into(), result_tys[0].clone())],
                body: vec![Stmt::Assign {
                    name: "res".into(),
                    value: e,
                }],
            })
        }
        // identity (Listing 13's per-point function)
        "f_id" if param_tys.len() == 1 && result_tys.len() == 1 => {
            let _ = kind(&param_tys[0]);
            Some(ScalarFunction {
                name: "f_id".into(),
                params: vec![("a".into(), param_tys[0].clone())],
                results: vec![("res".into(), result_tys[0].clone())],
                body: vec![Stmt::Assign {
                    name: "res".into(),
                    value: Expr::Param(0),
                }],
            })
        }
        _ => None,
    }
}

/// Parse a textual DSL program (Listing 7) against host bindings.
pub fn parse_dsl(src: &str, env: &DirectiveEnv) -> Result<DslProgram> {
    let toks = tokenize(src)?;
    let mut p = P {
        toks,
        pos: 0,
        depth: 0,
    };
    let mut vars: Option<Vec<String>> = None;

    p.skip_layout();
    p.keyword("out_view")?;
    let out_tys = p.type_list(env)?;
    let out_view = p.view(out_tys, &mut vars, env)?;
    p.skip_layout();
    p.expect(TokenKind::Comma)?;
    p.skip_layout();

    p.keyword("md_hom")?;
    p.expect(TokenKind::LBracket)?;
    let mut sizes = Vec::new();
    loop {
        // size expression: identifiers/ints with + - * (constant)
        let e = {
            // reuse the surface-expression machinery via a tiny inline walk
            let mut depth = 0usize;
            let start = p.pos;
            loop {
                match p.peek() {
                    TokenKind::LParen | TokenKind::LBracket => depth += 1,
                    TokenKind::RParen => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    TokenKind::RBracket => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    TokenKind::Comma if depth == 0 => break,
                    TokenKind::Eof => break,
                    _ => {}
                }
                p.next();
            }
            // re-parse the token slice as a pragma-style expression through
            // the surface AST
            let slice = &p.toks[start..p.pos];
            tokens_to_const(slice, env).ok_or_else(|| {
                p.err("md_hom sizes must be constant expressions over size parameters")
            })?
        };
        if e < 0 {
            return Err(p.err(format!("negative iteration-space size {e}")));
        }
        sizes.push(e as usize);
        if !p.accept(TokenKind::Comma) {
            break;
        }
    }
    p.expect(TokenKind::RBracket)?;
    p.expect(TokenKind::LParen)?;
    let sf_name = p.ident()?;
    p.expect(TokenKind::Comma)?;
    p.expect(TokenKind::LParen)?;
    let mut combine_ops = Vec::new();
    loop {
        combine_ops.push(p.combine_op(env)?);
        if !p.accept(TokenKind::Comma) {
            break;
        }
    }
    p.expect(TokenKind::RParen)?;
    p.expect(TokenKind::RParen)?;
    p.skip_layout();
    p.expect(TokenKind::Comma)?;
    p.skip_layout();

    p.keyword("inp_view")?;
    let inp_tys = p.type_list(env)?;
    let inp_view = p.view(inp_tys, &mut vars, env)?;
    p.skip_layout();

    // rank consistency: lambdas' parameter count must equal |sizes|
    if let Some(v) = &vars {
        if v.len() != sizes.len() {
            return Err(p.err(format!(
                "index functions take {} iteration variables but md_hom lists {} sizes",
                v.len(),
                sizes.len()
            )));
        }
    }

    // resolve the scalar function
    let param_tys: Vec<BasicType> = inp_view
        .accesses
        .iter()
        .map(|a| inp_view.buffers[a.buffer].ty.clone())
        .collect();
    let result_tys: Vec<BasicType> = out_view
        .accesses
        .iter()
        .map(|a| out_view.buffers[a.buffer].ty.clone())
        .collect();
    let sf = env
        .scalar_fns
        .get(&sf_name)
        .cloned()
        .or_else(|| builtin_sf(&sf_name, &param_tys, &result_tys))
        .ok_or_else(|| p.err(format!("unknown scalar function '{sf_name}'")))?;

    let prog = DslProgram::new(
        format!("dsl_{sf_name}"),
        out_view,
        MdHom {
            sizes,
            sf: Arc::new(sf),
            combine_ops,
        },
        inp_view,
    );
    prog.validate()?;
    Ok(prog)
}

/// Evaluate a token slice as a constant size expression.
fn tokens_to_const(toks: &[Token], env: &DirectiveEnv) -> Option<i64> {
    // shunting-yard-free: re-lex through the surface parser by textual
    // reconstruction would be wasteful; implement a tiny recursive parser
    fn parse(
        toks: &[Token],
        pos: &mut usize,
        env: &DirectiveEnv,
        min_prec: u8,
        depth: usize,
    ) -> Option<i64> {
        if depth > crate::MAX_NEST_DEPTH {
            return None;
        }
        let mut lhs = match toks.get(*pos)?.kind.clone() {
            TokenKind::Int(v) => {
                *pos += 1;
                v
            }
            TokenKind::Ident(n) => {
                *pos += 1;
                *env.sizes.get(&n)?
            }
            TokenKind::Minus => {
                *pos += 1;
                -parse(toks, pos, env, 3, depth + 1)?
            }
            TokenKind::LParen => {
                *pos += 1;
                let v = parse(toks, pos, env, 0, depth + 1)?;
                if !matches!(toks.get(*pos)?.kind, TokenKind::RParen) {
                    return None;
                }
                *pos += 1;
                v
            }
            _ => return None,
        };
        loop {
            let (prec, op) = match toks.get(*pos).map(|t| &t.kind) {
                Some(TokenKind::Plus) => (1u8, '+'),
                Some(TokenKind::Minus) => (1, '-'),
                Some(TokenKind::Star) => (2, '*'),
                Some(TokenKind::Slash) => (2, '/'),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            *pos += 1;
            let rhs = parse(toks, pos, env, prec + 1, depth + 1)?;
            lhs = match op {
                '+' => lhs + rhs,
                '-' => lhs - rhs,
                '*' => lhs * rhs,
                _ => {
                    if rhs == 0 {
                        return None;
                    }
                    lhs / rhs
                }
            };
        }
        Some(lhs)
    }
    let mut pos = 0;
    let v = parse(toks, &mut pos, env, 0, 0)?;
    if pos == toks.len() {
        Some(v)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::buffer::Buffer;
    use mdh_core::eval::evaluate_recursive;
    use mdh_core::shape::Shape;

    const MATVEC_DSL: &str = "\
out_view[fp32]( w = [lambda i,k: (i)] ),
md_hom[I,K]( f_mul, (cc, pw(add)) ),
inp_view[fp32,fp32]( M = [lambda i,k: (i,k)], v = [lambda i,k: (k)] )
";

    #[test]
    fn listing6_matvec_parses_and_runs() {
        let env = DirectiveEnv::new().size("I", 4).size("K", 5);
        let prog = parse_dsl(MATVEC_DSL, &env).unwrap();
        assert_eq!(prog.md_hom.sizes, vec![4, 5]);
        assert_eq!(prog.md_hom.reduction_dims(), vec![1]);
        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![4, 5]));
        m.fill_with(|f| (f % 7) as f64);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![5]));
        v.fill_with(|f| (f % 3) as f64);
        let out = evaluate_recursive(&prog, &[m.clone(), v.clone()]).unwrap();
        let (mf, vf) = (m.as_f32().unwrap(), v.as_f32().unwrap());
        for i in 0..4 {
            let e: f32 = (0..5).map(|k| mf[i * 5 + k] * vf[k]).sum();
            assert_eq!(out[0].as_f32().unwrap()[i], e);
        }
    }

    #[test]
    fn dsl_and_directive_front_ends_agree() {
        let env = DirectiveEnv::new().size("I", 6).size("K", 3);
        let from_dsl = parse_dsl(MATVEC_DSL, &env).unwrap();
        let from_directive = crate::transform::compile(
            "\
@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
",
            &env,
        )
        .unwrap();
        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![6, 3]));
        m.fill_with(|f| (f % 11) as f64 * 0.5);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![3]));
        v.fill_with(|f| f as f64);
        let inputs = vec![m, v];
        let a = evaluate_recursive(&from_dsl, &inputs).unwrap();
        let b = evaluate_recursive(&from_directive, &inputs).unwrap();
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn stencil_multi_access_lambdas() {
        // 3-point stencil via the DSL surface: three lambdas on one buffer
        let src = "\
out_view[fp32]( y = [lambda i: (i)] ),
md_hom[N]( f_add, (cc) ),
inp_view[fp32]( x = [lambda i: (i), lambda i: (i+1), lambda i: (i+2)] )
";
        let env = DirectiveEnv::new().size("N", 6);
        let prog = parse_dsl(src, &env).unwrap();
        assert_eq!(prog.inp_view.accesses.len(), 3);
        assert_eq!(prog.input_shapes().unwrap(), vec![vec![8]]);
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![8]));
        x.fill_with(|f| f as f64);
        let out = evaluate_recursive(&prog, &[x]).unwrap();
        for i in 0..6 {
            assert_eq!(out[0].as_f32().unwrap()[i], (3 * i + 3) as f32);
        }
    }

    #[test]
    fn strided_output_lambda() {
        let src = "\
out_view[fp32]( y = [lambda i: (2*i)] ),
md_hom[N]( f_id, (cc) ),
inp_view[fp32]( x = [lambda i: (i)] )
";
        let env = DirectiveEnv::new().size("N", 4);
        let prog = parse_dsl(src, &env).unwrap();
        assert_eq!(prog.output_shapes().unwrap(), vec![vec![7]]);
    }

    #[test]
    fn mbbs_via_dsl_surface() {
        let src = "\
out_view[fp64]( bbs = [lambda i,j: (i)] ),
md_hom[I,J]( f_id, (ps(add), pw(add)) ),
inp_view[fp64]( M = [lambda i,j: (i,j)] )
";
        let env = DirectiveEnv::new().size("I", 4).size("J", 3);
        let prog = parse_dsl(src, &env).unwrap();
        let mut m = Buffer::zeros("M", BasicType::F64, Shape::new(vec![4, 3]));
        m.fill_with(|f| f as f64 + 1.0);
        let out = evaluate_recursive(&prog, &[m.clone()]).unwrap();
        let mf = m.as_f64().unwrap();
        let mut acc = 0.0;
        for i in 0..4 {
            acc += mf[i * 3] + mf[i * 3 + 1] + mf[i * 3 + 2];
            assert!((out[0].as_f64().unwrap()[i] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn mismatched_lambda_vars_rejected() {
        let src = "\
out_view[fp32]( y = [lambda i: (i)] ),
md_hom[N]( f_id, (cc) ),
inp_view[fp32]( x = [lambda a: (a)] )
";
        let env = DirectiveEnv::new().size("N", 4);
        assert!(parse_dsl(src, &env).is_err());
    }

    #[test]
    fn rank_mismatch_rejected() {
        let src = "\
out_view[fp32]( y = [lambda i,k: (i)] ),
md_hom[N]( f_id, (cc) ),
inp_view[fp32]( x = [lambda i,k: (i)] )
";
        let env = DirectiveEnv::new().size("N", 4);
        let e = parse_dsl(src, &env).unwrap_err().to_string();
        assert!(e.contains("iteration variables"), "{e}");
    }

    #[test]
    fn unknown_scalar_fn_rejected() {
        let src = MATVEC_DSL.replace("f_mul", "f_mystery");
        let env = DirectiveEnv::new().size("I", 2).size("K", 2);
        let e = parse_dsl(&src, &env).unwrap_err().to_string();
        assert!(e.contains("f_mystery"), "{e}");
    }
}
