//! Combine operators (reduction operators).
//!
//! The central design point of the paper: reductions are captured
//! *semantically* in the directive's `combine_ops(...)` clause rather than
//! syntactically in the loop body. Each iteration-space dimension is
//! associated with one combine operator (footnote 10: "Combine Operator
//! (CO)" in the MDH formalism):
//!
//! * [`CombineOp::Cc`] — concatenation: the dimension survives into the
//!   output (a "parallel-free" dimension),
//! * [`CombineOp::Pw`] — point-wise reduction with an arbitrary function:
//!   the dimension collapses to a single element,
//! * [`CombineOp::Ps`] — prefix sum with an arbitrary function: the
//!   dimension survives, each position holding the scan up to it.
//! * [`CombineOp::Rbi`] — indexed reduction (reduce-by-index / scatter-add):
//!   the dimension collapses, but unlike `pw` the *output access* may depend
//!   on it — each iteration point scatters its contribution into the
//!   position selected by the output index function, and colliding
//!   contributions combine with the operator's function. This is the
//!   histogram / embedding-gradient operator of the reduce-by-index AD
//!   literature.
//!
//! `cc`/`pw`/`ps` are the three pre-implemented operators of Appendix A;
//! fully custom operators can be added through [`PwFunc::custom`] functions
//! operating on *tuples* of output values (as PRL's `prl_max` does across
//! three output buffers). `rbi` is restricted to the built-in `add`
//! function so that scatter collisions stay exact over the integer-valued
//! test fills and deterministic under the fixed-order combining the
//! backends implement.

use crate::error::{MdhError, Result};
use crate::expr::ScalarFunction;
use crate::types::{ScalarKind, Tuple, Value};
use std::fmt;
use std::sync::Arc;

/// Whether a combine operator preserves its dimension in the output
/// (`index_set_function = lambda I: I` in Appendix A) or collapses it
/// (`lambda I: {0}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimBehavior {
    Preserve,
    Collapse,
}

/// How we know a combine function is associative — the property every
/// decomposition (tiling, thread chunking, *multi-device partitioning*)
/// rests on. The partitioner consults this to decide which dimensions are
/// legal to shard and how aggressively partial results may be re-grouped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Associativity {
    /// Associative by construction (the built-in operators; exact over
    /// integral values, associative-up-to-rounding over floats).
    Proven,
    /// Associative by the MDH contract: user-supplied combine functions
    /// *must* be associative for the homomorphism laws to hold. We cannot
    /// prove it statically; [`PwFunc::check_associative`] is the empirical
    /// hook for validating the assumption.
    Assumed,
}

/// Natively-supported point-wise reduction functions. These are the
/// operators existing directive systems (OpenMP/OpenACC) can also express —
/// the capability matrix in `mdh-baselines` keys off this distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinReduce {
    Add,
    Mul,
    Max,
    Min,
}

impl BuiltinReduce {
    pub fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            BuiltinReduce::Add => a + b,
            BuiltinReduce::Mul => a * b,
            BuiltinReduce::Max => a.max(b),
            BuiltinReduce::Min => a.min(b),
        }
    }

    pub fn apply_i64(self, a: i64, b: i64) -> i64 {
        match self {
            BuiltinReduce::Add => a.wrapping_add(b),
            BuiltinReduce::Mul => a.wrapping_mul(b),
            BuiltinReduce::Max => a.max(b),
            BuiltinReduce::Min => a.min(b),
        }
    }

    /// Identity element for the given scalar kind.
    pub fn identity(self, kind: ScalarKind) -> Value {
        match self {
            BuiltinReduce::Add => Value::from_f64(kind, 0.0),
            BuiltinReduce::Mul => Value::from_f64(kind, 1.0),
            BuiltinReduce::Max => match kind {
                ScalarKind::F32 => Value::F32(f32::NEG_INFINITY),
                ScalarKind::F64 => Value::F64(f64::NEG_INFINITY),
                ScalarKind::I32 => Value::I32(i32::MIN),
                ScalarKind::I64 => Value::I64(i64::MIN),
                ScalarKind::Bool => Value::Bool(false),
                ScalarKind::Char => Value::Char(0),
            },
            BuiltinReduce::Min => match kind {
                ScalarKind::F32 => Value::F32(f32::INFINITY),
                ScalarKind::F64 => Value::F64(f64::INFINITY),
                ScalarKind::I32 => Value::I32(i32::MAX),
                ScalarKind::I64 => Value::I64(i64::MAX),
                ScalarKind::Bool => Value::Bool(true),
                ScalarKind::Char => Value::Char(u8::MAX),
            },
        }
    }
}

impl fmt::Display for BuiltinReduce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BuiltinReduce::Add => "add",
            BuiltinReduce::Mul => "mul",
            BuiltinReduce::Max => "max",
            BuiltinReduce::Min => "min",
        };
        f.write_str(s)
    }
}

/// The customising function of a `pw`/`ps` operator.
#[derive(Debug, Clone)]
pub enum PwKind {
    /// A native operator (tuple width must be 1, numeric).
    Builtin(BuiltinReduce),
    /// A user-defined function over tuples: the underlying
    /// [`ScalarFunction`] takes `2n` parameters (`lhs` tuple then `rhs`
    /// tuple) and produces `n` results.
    Custom(Arc<ScalarFunction>),
}

/// A point-wise combine function `cf : T^n x T^n -> T^n` over output tuples.
#[derive(Debug, Clone)]
pub struct PwFunc {
    pub name: String,
    pub kind: PwKind,
}

impl PwFunc {
    pub fn builtin(op: BuiltinReduce) -> PwFunc {
        PwFunc {
            name: op.to_string(),
            kind: PwKind::Builtin(op),
        }
    }

    /// Wrap a user-defined combining function. `f` must declare `2n` params
    /// and `n` results for some tuple width `n`.
    pub fn custom(f: ScalarFunction) -> Result<PwFunc> {
        if f.params.len() != 2 * f.results.len() || f.results.is_empty() {
            return Err(MdhError::Validation(format!(
                "custom combine function '{}' must take 2n params and return n results \
                 (got {} params, {} results)",
                f.name,
                f.params.len(),
                f.results.len()
            )));
        }
        f.validate()?;
        Ok(PwFunc {
            name: f.name.clone(),
            kind: PwKind::Custom(Arc::new(f)),
        })
    }

    /// Tuple width this function combines (None = any width of 1-wide
    /// builtins... builtins always have width 1 per element and apply to
    /// single-output programs).
    pub fn tuple_width(&self) -> Option<usize> {
        match &self.kind {
            PwKind::Builtin(_) => None,
            PwKind::Custom(f) => Some(f.results.len()),
        }
    }

    pub fn as_builtin(&self) -> Option<BuiltinReduce> {
        match &self.kind {
            PwKind::Builtin(b) => Some(*b),
            PwKind::Custom(_) => None,
        }
    }

    /// Combine two tuples.
    pub fn combine(&self, lhs: &Tuple, rhs: &Tuple) -> Result<Tuple> {
        if lhs.len() != rhs.len() {
            return Err(MdhError::Eval("tuple width mismatch in combine".into()));
        }
        match &self.kind {
            PwKind::Builtin(op) => lhs
                .iter()
                .zip(rhs)
                .map(|(a, b)| {
                    if a.is_float() || b.is_float() {
                        let r = op.apply_f64(
                            a.as_f64().ok_or_else(non_numeric)?,
                            b.as_f64().ok_or_else(non_numeric)?,
                        );
                        Ok(match a {
                            Value::F32(_) => Value::F32(r as f32),
                            _ => Value::F64(r),
                        })
                    } else {
                        let r = op.apply_i64(
                            a.as_i64().ok_or_else(non_numeric)?,
                            b.as_i64().ok_or_else(non_numeric)?,
                        );
                        Ok(match a {
                            Value::I32(_) => Value::I32(r as i32),
                            Value::Bool(_) => Value::Bool(r != 0),
                            Value::Char(_) => Value::Char(r as u8),
                            _ => Value::I64(r),
                        })
                    }
                })
                .collect(),
            PwKind::Custom(f) => {
                let mut args = Vec::with_capacity(lhs.len() * 2);
                args.extend_from_slice(lhs);
                args.extend_from_slice(rhs);
                f.eval(&args)
            }
        }
    }

    /// Provenance of this function's associativity (see [`Associativity`]).
    pub fn associativity(&self) -> Associativity {
        match &self.kind {
            PwKind::Builtin(_) => Associativity::Proven,
            PwKind::Custom(_) => Associativity::Assumed,
        }
    }

    /// Whether reordering operands (not just re-grouping) is known to be
    /// safe. All built-in reductions are commutative; custom functions are
    /// only required to be associative, so partial results from distinct
    /// sub-ranges must be combined in index order unless this returns true.
    pub fn is_commutative(&self) -> bool {
        matches!(&self.kind, PwKind::Builtin(_))
    }

    /// Empirically check associativity on the given sample tuples
    /// (`f(f(a,b),c) == f(a,f(b,c))`). Custom operators are *required* to be
    /// associative for parallelisation to be legal; this is the property
    /// test hook.
    pub fn check_associative(&self, samples: &[Tuple], rel_tol: f64) -> Result<bool> {
        for a in samples {
            for b in samples {
                for c in samples {
                    let l = self.combine(&self.combine(a, b)?, c)?;
                    let r = self.combine(a, &self.combine(b, c)?)?;
                    if !l.iter().zip(&r).all(|(x, y)| x.approx_eq(y, rel_tol)) {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// Empirically check commutativity on the given sample tuples.
    pub fn check_commutative(&self, samples: &[Tuple], rel_tol: f64) -> Result<bool> {
        for a in samples {
            for b in samples {
                let l = self.combine(a, b)?;
                let r = self.combine(b, a)?;
                if !l.iter().zip(&r).all(|(x, y)| x.approx_eq(y, rel_tol)) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

fn non_numeric() -> MdhError {
    MdhError::Eval("builtin reduce on non-numeric value".into())
}

/// A combine operator assigned to one iteration-space dimension.
#[derive(Debug, Clone)]
pub enum CombineOp {
    /// Concatenation `cc` (Listing 15): the dimension survives.
    Cc,
    /// Point-wise reduction `pw(cf)` (Listing 16): the dimension collapses.
    Pw(PwFunc),
    /// Prefix sum `ps(cf)` (Listing 17): the dimension survives; position
    /// `i` holds the fold of positions `0..=i`.
    Ps(PwFunc),
    /// Indexed reduction `rbi(cf)` (reduce-by-index): the dimension
    /// collapses, and the output index function — which *may* depend on
    /// this dimension — selects the scatter target per iteration point;
    /// collisions combine with `cf` (currently restricted to `add`).
    Rbi(PwFunc),
}

impl CombineOp {
    /// `cc`.
    pub fn cc() -> CombineOp {
        CombineOp::Cc
    }

    /// `pw(add)`.
    pub fn pw_add() -> CombineOp {
        CombineOp::Pw(PwFunc::builtin(BuiltinReduce::Add))
    }

    /// `pw(mul)`.
    pub fn pw_mul() -> CombineOp {
        CombineOp::Pw(PwFunc::builtin(BuiltinReduce::Mul))
    }

    /// `pw(max)`.
    pub fn pw_max() -> CombineOp {
        CombineOp::Pw(PwFunc::builtin(BuiltinReduce::Max))
    }

    /// `pw(min)`.
    pub fn pw_min() -> CombineOp {
        CombineOp::Pw(PwFunc::builtin(BuiltinReduce::Min))
    }

    /// `pw(cf)` for a custom function.
    pub fn pw_custom(f: ScalarFunction) -> Result<CombineOp> {
        Ok(CombineOp::Pw(PwFunc::custom(f)?))
    }

    /// `ps(add)` — the classic prefix sum.
    pub fn ps_add() -> CombineOp {
        CombineOp::Ps(PwFunc::builtin(BuiltinReduce::Add))
    }

    /// `ps(cf)` for a custom function.
    pub fn ps_custom(f: ScalarFunction) -> Result<CombineOp> {
        Ok(CombineOp::Ps(PwFunc::custom(f)?))
    }

    /// `rbi(add)` — scatter-add, the only supported indexed reduction.
    pub fn rbi_add() -> CombineOp {
        CombineOp::Rbi(PwFunc::builtin(BuiltinReduce::Add))
    }

    pub fn behavior(&self) -> DimBehavior {
        match self {
            CombineOp::Cc | CombineOp::Ps(_) => DimBehavior::Preserve,
            CombineOp::Pw(_) | CombineOp::Rbi(_) => DimBehavior::Collapse,
        }
    }

    /// Whether this dimension is a *reduction* dimension (anything that
    /// actually combines values: `pw` or `ps`).
    pub fn is_reduction(&self) -> bool {
        !matches!(self, CombineOp::Cc)
    }

    pub fn pw_func(&self) -> Option<&PwFunc> {
        match self {
            CombineOp::Cc => None,
            CombineOp::Pw(f) | CombineOp::Ps(f) | CombineOp::Rbi(f) => Some(f),
        }
    }

    /// Whether this is an indexed reduction (`rbi`) dimension.
    pub fn is_indexed_reduction(&self) -> bool {
        matches!(self, CombineOp::Rbi(_))
    }

    /// Provenance of the operator's associativity. Concatenation is
    /// associative by construction (list concatenation); `pw`/`ps` inherit
    /// their combine function's provenance.
    pub fn associativity(&self) -> Associativity {
        match self {
            CombineOp::Cc => Associativity::Proven,
            CombineOp::Pw(f) | CombineOp::Ps(f) | CombineOp::Rbi(f) => f.associativity(),
        }
    }

    /// Whether a dimension governed by this operator may be partitioned
    /// across devices, and with which recombination obligation:
    ///
    /// * `cc` — always shardable; shards own disjoint output regions and
    ///   need no cross-device combine;
    /// * `pw(f)` — shardable because `f` is associative (proven or by
    ///   contract); shards produce *partial* outputs that must flow through
    ///   a combine tree;
    /// * `ps(f)` — shardable, but recombination is an ordered carry chain
    ///   (the `Q`-part rule of Listing 17), so the combine topology is
    ///   forced serial.
    pub fn device_shardable(&self) -> bool {
        match self.associativity() {
            Associativity::Proven | Associativity::Assumed => true,
        }
    }

    /// Whether the operator is expressible in OpenMP/OpenACC `reduction`
    /// clauses (native operator on a single scalar output).
    pub fn is_native_reduction(&self) -> bool {
        match self {
            CombineOp::Cc => false,
            CombineOp::Pw(f) => f.as_builtin().is_some(),
            CombineOp::Ps(_) | CombineOp::Rbi(_) => false,
        }
    }
}

impl fmt::Display for CombineOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineOp::Cc => f.write_str("cc"),
            CombineOp::Pw(g) => write!(f, "pw({})", g.name),
            CombineOp::Ps(g) => write!(f, "ps({})", g.name),
            CombineOp::Rbi(g) => write!(f, "rbi({})", g.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr, Stmt};
    use crate::types::BasicType;

    fn t(vs: &[f64]) -> Tuple {
        vs.iter().map(|&v| Value::F64(v)).collect()
    }

    #[test]
    fn builtin_add_combines() {
        let f = PwFunc::builtin(BuiltinReduce::Add);
        assert_eq!(f.combine(&t(&[1.0]), &t(&[2.0])).unwrap(), t(&[3.0]));
    }

    #[test]
    fn builtin_max_and_identity() {
        let f = PwFunc::builtin(BuiltinReduce::Max);
        assert_eq!(f.combine(&t(&[1.0]), &t(&[2.0])).unwrap(), t(&[2.0]));
        assert_eq!(
            BuiltinReduce::Max.identity(ScalarKind::F64),
            Value::F64(f64::NEG_INFINITY)
        );
        assert_eq!(BuiltinReduce::Add.identity(ScalarKind::I32), Value::I32(0));
    }

    #[test]
    fn builtin_preserves_kind() {
        let f = PwFunc::builtin(BuiltinReduce::Add);
        let out = f
            .combine(&vec![Value::F32(1.0)], &vec![Value::F32(2.0)])
            .unwrap();
        assert_eq!(out, vec![Value::F32(3.0)]);
        let out = f
            .combine(&vec![Value::I32(1)], &vec![Value::I32(2)])
            .unwrap();
        assert_eq!(out, vec![Value::I32(3)]);
    }

    /// A PRL-style custom combine: keep lhs if its measure equals 14 and
    /// rhs's does not, else keep rhs (simplified from Listing 11).
    fn prl_like() -> PwFunc {
        let f = ScalarFunction {
            name: "prl_max".into(),
            params: vec![
                ("lhs_id".into(), BasicType::I64),
                ("lhs_w".into(), BasicType::F64),
                ("rhs_id".into(), BasicType::I64),
                ("rhs_w".into(), BasicType::F64),
            ],
            results: vec![
                ("res_id".into(), BasicType::I64),
                ("res_w".into(), BasicType::F64),
            ],
            body: vec![Stmt::If {
                cond: Expr::Bin(
                    BinOp::Ge,
                    Box::new(Expr::Param(1)),
                    Box::new(Expr::Param(3)),
                ),
                then_branch: vec![
                    Stmt::Assign {
                        name: "res_id".into(),
                        value: Expr::Param(0),
                    },
                    Stmt::Assign {
                        name: "res_w".into(),
                        value: Expr::Param(1),
                    },
                ],
                else_branch: vec![
                    Stmt::Assign {
                        name: "res_id".into(),
                        value: Expr::Param(2),
                    },
                    Stmt::Assign {
                        name: "res_w".into(),
                        value: Expr::Param(3),
                    },
                ],
            }],
        };
        PwFunc::custom(f).unwrap()
    }

    #[test]
    fn custom_tuple_combine() {
        let f = prl_like();
        assert_eq!(f.tuple_width(), Some(2));
        let lhs = vec![Value::I64(1), Value::F64(0.9)];
        let rhs = vec![Value::I64(2), Value::F64(0.5)];
        assert_eq!(f.combine(&lhs, &rhs).unwrap(), lhs);
        assert_eq!(f.combine(&rhs, &lhs).unwrap(), lhs);
    }

    #[test]
    fn custom_argmax_is_associative() {
        let f = prl_like();
        let samples: Vec<Tuple> = (0..4)
            .map(|i| vec![Value::I64(i), Value::F64(i as f64 * 0.3)])
            .collect();
        assert!(f.check_associative(&samples, 1e-12).unwrap());
    }

    #[test]
    fn subtraction_is_not_associative() {
        // a deliberately-illegal combine function
        let f = PwFunc::custom(ScalarFunction {
            name: "sub".into(),
            params: vec![("l".into(), BasicType::F64), ("r".into(), BasicType::F64)],
            results: vec![("res".into(), BasicType::F64)],
            body: vec![Stmt::Assign {
                name: "res".into(),
                value: Expr::sub(Expr::Param(0), Expr::Param(1)),
            }],
        })
        .unwrap();
        let samples: Vec<Tuple> = (1..4).map(|i| vec![Value::F64(i as f64)]).collect();
        assert!(!f.check_associative(&samples, 1e-12).unwrap());
    }

    #[test]
    fn custom_arity_validation() {
        let bad = ScalarFunction {
            name: "bad".into(),
            params: vec![("a".into(), BasicType::F64)],
            results: vec![("res".into(), BasicType::F64)],
            body: vec![Stmt::Assign {
                name: "res".into(),
                value: Expr::Param(0),
            }],
        };
        assert!(PwFunc::custom(bad).is_err());
    }

    #[test]
    fn behaviors() {
        assert_eq!(CombineOp::cc().behavior(), DimBehavior::Preserve);
        assert_eq!(CombineOp::pw_add().behavior(), DimBehavior::Collapse);
        assert_eq!(CombineOp::ps_add().behavior(), DimBehavior::Preserve);
        assert_eq!(CombineOp::rbi_add().behavior(), DimBehavior::Collapse);
        assert!(!CombineOp::cc().is_reduction());
        assert!(CombineOp::pw_add().is_reduction());
        assert!(CombineOp::ps_add().is_reduction());
        assert!(CombineOp::rbi_add().is_reduction());
        assert!(CombineOp::rbi_add().is_indexed_reduction());
        assert!(!CombineOp::pw_add().is_indexed_reduction());
        assert!(CombineOp::pw_add().is_native_reduction());
        assert!(!CombineOp::ps_add().is_native_reduction());
        assert!(!CombineOp::rbi_add().is_native_reduction());
    }

    #[test]
    fn rbi_display_and_shardable() {
        assert_eq!(CombineOp::rbi_add().to_string(), "rbi(add)");
        assert_eq!(CombineOp::rbi_add().associativity(), Associativity::Proven);
        assert!(CombineOp::rbi_add().device_shardable());
    }

    #[test]
    fn associativity_metadata() {
        assert_eq!(CombineOp::cc().associativity(), Associativity::Proven);
        assert_eq!(CombineOp::pw_add().associativity(), Associativity::Proven);
        assert_eq!(CombineOp::ps_add().associativity(), Associativity::Proven);
        let custom = CombineOp::Pw(prl_like());
        assert_eq!(custom.associativity(), Associativity::Assumed);
        assert!(custom.device_shardable());
        assert!(!prl_like().is_commutative());
        assert!(PwFunc::builtin(BuiltinReduce::Max).is_commutative());
        assert!(CombineOp::cc().device_shardable());
        assert!(CombineOp::pw_add().device_shardable());
    }

    #[test]
    fn display() {
        assert_eq!(CombineOp::cc().to_string(), "cc");
        assert_eq!(CombineOp::pw_add().to_string(), "pw(add)");
        assert_eq!(CombineOp::ps_add().to_string(), "ps(add)");
    }
}
