//! Error types shared across the MDH core.

use std::fmt;

/// Errors produced by validation, evaluation, and transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum MdhError {
    /// A type error (mismatched buffer/value/parameter types).
    Type(String),
    /// A structural validation error in a DSL program or directive.
    Validation(String),
    /// An error evaluating a scalar function or combine operator.
    Eval(String),
    /// An out-of-bounds buffer access.
    OutOfBounds {
        buffer: String,
        index: Vec<usize>,
        shape: Vec<usize>,
    },
    /// A parse error in the textual directive language (line, column, message).
    Parse {
        line: usize,
        col: usize,
        message: String,
    },
    /// A serving runtime shed this request at admission (bounded queue
    /// full). Retryable: nothing about the request itself is wrong.
    Overloaded(String),
    /// The request's deadline expired before (or while) it could be
    /// served; it was not executed.
    DeadlineExceeded(String),
    /// A worker panicked while executing this request. The panic was
    /// isolated to the request; the worker and queue survive.
    WorkerPanic(String),
    /// The circuit breaker for this request's plan key is open: recent
    /// consecutive failures make immediate failure the cheap, safe
    /// answer. Retryable after the breaker's cooldown.
    BreakerOpen(String),
    /// The serving runtime is draining for shutdown and admits no new
    /// requests. Retryable against a replacement server.
    Draining(String),
}

impl MdhError {
    /// Whether a client may retry the identical request later with a
    /// reasonable expectation of success (load-shedding and lifecycle
    /// errors — not errors about the request itself).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            MdhError::Overloaded(_) | MdhError::BreakerOpen(_) | MdhError::Draining(_)
        )
    }
}

impl fmt::Display for MdhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdhError::Type(m) => write!(f, "type error: {m}"),
            MdhError::Validation(m) => write!(f, "validation error: {m}"),
            MdhError::Eval(m) => write!(f, "evaluation error: {m}"),
            MdhError::OutOfBounds {
                buffer,
                index,
                shape,
            } => write!(
                f,
                "out-of-bounds access to buffer '{buffer}': index {index:?} vs shape {shape:?}"
            ),
            MdhError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            // the serving protocol prints errors as `err {Display}`, so
            // these prefixes are the wire grammar: `err overloaded ...`,
            // `err deadline exceeded ...`, `err worker panic ...`,
            // `err breaker open ...`, `err draining ...`
            MdhError::Overloaded(m) => write!(f, "overloaded: {m}"),
            MdhError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            MdhError::WorkerPanic(m) => write!(f, "worker panic: {m}"),
            MdhError::BreakerOpen(m) => write!(f, "breaker open: {m}"),
            MdhError::Draining(m) => write!(f, "draining: {m}"),
        }
    }
}

impl std::error::Error for MdhError {}

/// Convenient result alias.
pub type Result<T, E = MdhError> = std::result::Result<T, E>;
