//! Error types shared across the MDH core.

use std::fmt;

/// Errors produced by validation, evaluation, and transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum MdhError {
    /// A type error (mismatched buffer/value/parameter types).
    Type(String),
    /// A structural validation error in a DSL program or directive.
    Validation(String),
    /// An error evaluating a scalar function or combine operator.
    Eval(String),
    /// An out-of-bounds buffer access.
    OutOfBounds {
        buffer: String,
        index: Vec<usize>,
        shape: Vec<usize>,
    },
    /// A parse error in the textual directive language (line, column, message).
    Parse {
        line: usize,
        col: usize,
        message: String,
    },
}

impl fmt::Display for MdhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdhError::Type(m) => write!(f, "type error: {m}"),
            MdhError::Validation(m) => write!(f, "validation error: {m}"),
            MdhError::Eval(m) => write!(f, "evaluation error: {m}"),
            MdhError::OutOfBounds {
                buffer,
                index,
                shape,
            } => write!(
                f,
                "out-of-bounds access to buffer '{buffer}': index {index:?} vs shape {shape:?}"
            ),
            MdhError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
        }
    }
}

impl std::error::Error for MdhError {}

/// Convenient result alias.
pub type Result<T, E = MdhError> = std::result::Result<T, E>;
