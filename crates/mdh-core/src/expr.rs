//! The scalar-function IR.
//!
//! The directive's loop body is "an arbitrary but pure scalar function SF"
//! (Sec. 4.2) mapping elements of input buffers to elements of output
//! buffers. We represent SF as a small imperative IR — expressions,
//! let-bindings, conditionals, and statically-bounded loops — exactly the
//! "imperative-style program code" footnote 9 permits. The same IR is used
//! for custom combine-operator functions such as PRL's `prl_max`.

use crate::error::{MdhError, Result};
use crate::types::{BasicType, ScalarKind, Value};
use std::collections::HashMap;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// Built-in math functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFn {
    Sqrt,
    Exp,
    Log,
    Abs,
    Min,
    Max,
}

impl MathFn {
    pub fn arity(self) -> usize {
        match self {
            MathFn::Sqrt | MathFn::Exp | MathFn::Log | MathFn::Abs => 1,
            MathFn::Min | MathFn::Max => 2,
        }
    }
}

/// An expression of the scalar-function IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// The `p`-th input-access value (in `inp_view` access order).
    Param(usize),
    /// A named local, loop variable, or result variable.
    Var(String),
    /// Record field access `e.field`.
    Field(Box<Expr>, String),
    /// Array indexing into an array-typed record field: `e[idx]`.
    ArrayIndex(Box<Expr>, Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Un(UnOp, Box<Expr>),
    Call(MathFn, Vec<Expr>),
    /// Explicit numeric cast.
    Cast(ScalarKind, Box<Expr>),
    /// Conditional expression `if c { a } else { b }`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/div are DSL constructors, not operators
impl Expr {
    pub fn lit_f32(v: f32) -> Expr {
        Expr::Lit(Value::F32(v))
    }

    pub fn lit_f64(v: f64) -> Expr {
        Expr::Lit(Value::F64(v))
    }

    pub fn lit_i64(v: i64) -> Expr {
        Expr::Lit(Value::I64(v))
    }

    pub fn param(p: usize) -> Expr {
        Expr::Param(p)
    }

    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(a), Box::new(b))
    }

    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(a), Box::new(b))
    }

    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Ne, Box::new(a), Box::new(b))
    }

    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(a), Box::new(b))
    }

    pub fn field(e: Expr, name: impl Into<String>) -> Expr {
        Expr::Field(Box::new(e), name.into())
    }

    /// Collect the set of referenced parameter slots.
    pub fn params_used(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Param(p) => {
                if !out.contains(p) {
                    out.push(*p);
                }
            }
            Expr::Lit(_) | Expr::Var(_) => {}
            Expr::Field(e, _) | Expr::Un(_, e) | Expr::Cast(_, e) => e.params_used(out),
            Expr::ArrayIndex(a, b) | Expr::Bin(_, a, b) => {
                a.params_used(out);
                b.params_used(out);
            }
            Expr::Call(_, args) => args.iter().for_each(|a| a.params_used(out)),
            Expr::Select(c, a, b) => {
                c.params_used(out);
                a.params_used(out);
                b.params_used(out);
            }
        }
    }
}

/// A statement of the scalar-function IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Declare-and-initialise a local variable.
    Let { name: String, value: Expr },
    /// Assign to a local or result variable.
    Assign { name: String, value: Expr },
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// A statically-bounded loop, `for var in lo..hi` (unrolled by backends).
    For {
        var: String,
        lo: i64,
        hi: i64,
        body: Vec<Stmt>,
    },
}

/// A pure scalar function: `params` (one per input access) to `results`
/// (one per output access).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarFunction {
    pub name: String,
    pub params: Vec<(String, BasicType)>,
    pub results: Vec<(String, BasicType)>,
    pub body: Vec<Stmt>,
}

impl ScalarFunction {
    /// `f(a, b) = a * b` — the `f_mul` of the paper's MatVec example.
    pub fn mul2(name: &str, ty: ScalarKind) -> ScalarFunction {
        ScalarFunction {
            name: name.into(),
            params: vec![("a".into(), ty.into()), ("b".into(), ty.into())],
            results: vec![("res".into(), ty.into())],
            body: vec![Stmt::Assign {
                name: "res".into(),
                value: Expr::mul(Expr::Param(0), Expr::Param(1)),
            }],
        }
    }

    /// Identity function of one parameter (e.g. MBBS's per-point function).
    pub fn identity(name: &str, ty: ScalarKind) -> ScalarFunction {
        ScalarFunction {
            name: name.into(),
            params: vec![("a".into(), ty.into())],
            results: vec![("res".into(), ty.into())],
            body: vec![Stmt::Assign {
                name: "res".into(),
                value: Expr::Param(0),
            }],
        }
    }

    /// Weighted sum of `n` parameters (stencil body):
    /// `res = w_0 * p_0 + ... + w_{n-1} * p_{n-1}`.
    pub fn weighted_sum(name: &str, ty: ScalarKind, weights: &[f64]) -> ScalarFunction {
        assert!(!weights.is_empty());
        let term = |i: usize| Expr::mul(Expr::Lit(Value::from_f64(ty, weights[i])), Expr::Param(i));
        let mut e = term(0);
        for (i, _) in weights.iter().enumerate().skip(1) {
            e = Expr::add(e, term(i));
        }
        ScalarFunction {
            name: name.into(),
            params: (0..weights.len())
                .map(|i| (format!("p{i}"), ty.into()))
                .collect(),
            results: vec![("res".into(), ty.into())],
            body: vec![Stmt::Assign {
                name: "res".into(),
                value: e,
            }],
        }
    }

    /// Evaluate the function on dynamic arguments.
    pub fn eval(&self, args: &[Value]) -> Result<Vec<Value>> {
        if args.len() != self.params.len() {
            return Err(MdhError::Eval(format!(
                "scalar function '{}' expects {} args, got {}",
                self.name,
                self.params.len(),
                args.len()
            )));
        }
        let mut env: HashMap<String, Value> = HashMap::new();
        // result variables start zero-initialised (the directive's `=`-only
        // bodies always assign them, but conditionals may leave branches)
        for (name, ty) in &self.results {
            env.insert(name.clone(), ty.zero());
        }
        // named parameters are also visible by name
        for ((name, _), v) in self.params.iter().zip(args) {
            env.insert(name.clone(), v.clone());
        }
        exec_block(&self.body, args, &mut env)?;
        self.results
            .iter()
            .map(|(name, _)| {
                env.get(name).cloned().ok_or_else(|| {
                    MdhError::Eval(format!("result variable '{name}' never assigned"))
                })
            })
            .collect()
    }

    /// Structural check: every result variable is assigned somewhere, and
    /// arity invariants hold.
    pub fn validate(&self) -> Result<()> {
        for (name, _) in &self.results {
            if !block_assigns(&self.body, name) {
                return Err(MdhError::Validation(format!(
                    "scalar function '{}' never assigns result '{name}'",
                    self.name
                )));
            }
        }
        let mut used = Vec::new();
        collect_params(&self.body, &mut used);
        for p in &used {
            if *p >= self.params.len() {
                return Err(MdhError::Validation(format!(
                    "scalar function '{}' references parameter slot {p} but declares only {}",
                    self.name,
                    self.params.len()
                )));
            }
        }
        Ok(())
    }

    /// Number of floating-point-equivalent operations per invocation
    /// (rough static count, used by cost models).
    pub fn flops_estimate(&self) -> usize {
        fn expr_ops(e: &Expr) -> usize {
            match e {
                Expr::Lit(_) | Expr::Param(_) | Expr::Var(_) => 0,
                Expr::Field(e, _) | Expr::Cast(_, e) => expr_ops(e),
                Expr::Un(_, e) => 1 + expr_ops(e),
                Expr::ArrayIndex(a, b) | Expr::Bin(_, a, b) => 1 + expr_ops(a) + expr_ops(b),
                Expr::Call(_, args) => 1 + args.iter().map(expr_ops).sum::<usize>(),
                Expr::Select(c, a, b) => 1 + expr_ops(c) + expr_ops(a) + expr_ops(b),
            }
        }
        fn stmt_ops(s: &Stmt) -> usize {
            match s {
                Stmt::Let { value, .. } | Stmt::Assign { value, .. } => expr_ops(value),
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    expr_ops(cond)
                        + then_branch.iter().map(stmt_ops).sum::<usize>()
                        + else_branch.iter().map(stmt_ops).sum::<usize>()
                }
                Stmt::For { lo, hi, body, .. } => {
                    ((hi - lo).max(0) as usize) * body.iter().map(stmt_ops).sum::<usize>()
                }
            }
        }
        self.body.iter().map(stmt_ops).sum::<usize>().max(1)
    }
}

impl fmt::Display for ScalarFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps: Vec<String> = self
            .params
            .iter()
            .map(|(n, t)| format!("{n}:{t}"))
            .collect();
        let rs: Vec<String> = self
            .results
            .iter()
            .map(|(n, t)| format!("{n}:{t}"))
            .collect();
        write!(f, "{}({}) -> ({})", self.name, ps.join(", "), rs.join(", "))
    }
}

fn collect_params(body: &[Stmt], out: &mut Vec<usize>) {
    for s in body {
        match s {
            Stmt::Let { value, .. } | Stmt::Assign { value, .. } => value.params_used(out),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.params_used(out);
                collect_params(then_branch, out);
                collect_params(else_branch, out);
            }
            Stmt::For { body, .. } => collect_params(body, out),
        }
    }
}

fn block_assigns(body: &[Stmt], name: &str) -> bool {
    body.iter().any(|s| match s {
        Stmt::Assign { name: n, .. } => n == name,
        Stmt::Let { name: n, .. } => n == name,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => block_assigns(then_branch, name) || block_assigns(else_branch, name),
        Stmt::For { body, .. } => block_assigns(body, name),
    })
}

fn exec_block(body: &[Stmt], args: &[Value], env: &mut HashMap<String, Value>) -> Result<()> {
    for s in body {
        match s {
            Stmt::Let { name, value } | Stmt::Assign { name, value } => {
                let v = eval_expr(value, args, env)?;
                env.insert(name.clone(), v);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = eval_expr(cond, args, env)?;
                let c = c
                    .as_bool()
                    .ok_or_else(|| MdhError::Eval("non-boolean condition".into()))?;
                if c {
                    exec_block(then_branch, args, env)?;
                } else {
                    exec_block(else_branch, args, env)?;
                }
            }
            Stmt::For { var, lo, hi, body } => {
                for i in *lo..*hi {
                    env.insert(var.clone(), Value::I64(i));
                    exec_block(body, args, env)?;
                }
            }
        }
    }
    Ok(())
}

/// Evaluate an expression with the given parameter values and environment.
pub fn eval_expr(e: &Expr, args: &[Value], env: &HashMap<String, Value>) -> Result<Value> {
    match e {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Param(p) => args
            .get(*p)
            .cloned()
            .ok_or_else(|| MdhError::Eval(format!("parameter slot {p} out of range"))),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| MdhError::Eval(format!("unbound variable '{name}'"))),
        Expr::Field(e, field) => {
            let v = eval_expr(e, args, env)?;
            field_of(&v, e, field)
        }
        Expr::ArrayIndex(e, idx) => {
            let v = eval_expr(e, args, env)?;
            let i = eval_expr(idx, args, env)?
                .as_i64()
                .ok_or_else(|| MdhError::Eval("non-integer array index".into()))?;
            match v {
                Value::Array(items) => items
                    .get(i as usize)
                    .cloned()
                    .ok_or_else(|| MdhError::Eval(format!("array index {i} out of range"))),
                other => Err(MdhError::Eval(format!(
                    "indexing non-array value of kind {}",
                    other.kind_name()
                ))),
            }
        }
        Expr::Bin(op, a, b) => {
            let a = eval_expr(a, args, env)?;
            let b = eval_expr(b, args, env)?;
            eval_bin(*op, &a, &b)
        }
        Expr::Un(op, a) => {
            let a = eval_expr(a, args, env)?;
            match op {
                UnOp::Neg => {
                    if a.is_float() {
                        let v = a.as_f64().unwrap();
                        Ok(match a {
                            Value::F32(_) => Value::F32(-v as f32),
                            _ => Value::F64(-v),
                        })
                    } else {
                        let v = a
                            .as_i64()
                            .ok_or_else(|| MdhError::Eval("neg of non-numeric".into()))?;
                        Ok(match a {
                            Value::I32(_) => Value::I32(-v as i32),
                            _ => Value::I64(-v),
                        })
                    }
                }
                UnOp::Not => {
                    Ok(Value::Bool(!a.as_bool().ok_or_else(|| {
                        MdhError::Eval("not of non-boolean".into())
                    })?))
                }
            }
        }
        Expr::Call(f, call_args) => {
            if call_args.len() != f.arity() {
                return Err(MdhError::Eval(format!("{f:?} expects {} args", f.arity())));
            }
            let vals: Vec<Value> = call_args
                .iter()
                .map(|a| eval_expr(a, args, env))
                .collect::<Result<_>>()?;
            let x = vals[0]
                .as_f64()
                .ok_or_else(|| MdhError::Eval("math fn on non-numeric".into()))?;
            let out = match f {
                MathFn::Sqrt => x.sqrt(),
                MathFn::Exp => x.exp(),
                MathFn::Log => x.ln(),
                MathFn::Abs => x.abs(),
                MathFn::Min => x.min(vals[1].as_f64().unwrap_or(f64::NAN)),
                MathFn::Max => x.max(vals[1].as_f64().unwrap_or(f64::NAN)),
            };
            // preserve the kind of the first operand
            Ok(match &vals[0] {
                Value::F32(_) => Value::F32(out as f32),
                Value::I32(_) => Value::I32(out as i32),
                Value::I64(_) => Value::I64(out as i64),
                _ => Value::F64(out),
            })
        }
        Expr::Cast(kind, e) => {
            let v = eval_expr(e, args, env)?;
            v.cast(*kind)
                .ok_or_else(|| MdhError::Eval(format!("cannot cast {} ", v.kind_name())))
        }
        Expr::Select(c, a, b) => {
            let c = eval_expr(c, args, env)?
                .as_bool()
                .ok_or_else(|| MdhError::Eval("non-boolean select condition".into()))?;
            if c {
                eval_expr(a, args, env)
            } else {
                eval_expr(b, args, env)
            }
        }
    }
}

fn field_of(v: &Value, _src: &Expr, field: &str) -> Result<Value> {
    match v {
        Value::Record(fields) => {
            // Field resolution by position requires the record type; the
            // evaluator threads field names through a side table at the
            // view/program level. Here we support the common convention of
            // "fieldN" positional access as a fallback.
            if let Some(rest) = field.strip_prefix("field") {
                if let Ok(i) = rest.parse::<usize>() {
                    return fields.get(i).cloned().ok_or_else(|| {
                        MdhError::Eval(format!("record field index {i} out of range"))
                    });
                }
            }
            Err(MdhError::Eval(format!(
                "cannot resolve record field '{field}' without type info; \
                 use typed accessors at the program level"
            )))
        }
        other => Err(MdhError::Eval(format!(
            "field access on non-record value of kind {}",
            other.kind_name()
        ))),
    }
}

/// Evaluate a binary operation on dynamic values with numeric promotion.
pub fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if op.is_logical() {
        let (x, y) = (
            a.as_bool()
                .ok_or_else(|| MdhError::Eval("logical op on non-boolean".into()))?,
            b.as_bool()
                .ok_or_else(|| MdhError::Eval("logical op on non-boolean".into()))?,
        );
        return Ok(Value::Bool(match op {
            BinOp::And => x && y,
            BinOp::Or => x || y,
            _ => unreachable!(),
        }));
    }
    let float = a.is_float() || b.is_float();
    if op.is_comparison() {
        let r = if float {
            let (x, y) = (
                a.as_f64()
                    .ok_or_else(|| MdhError::Eval("comparison on non-numeric".into()))?,
                b.as_f64()
                    .ok_or_else(|| MdhError::Eval("comparison on non-numeric".into()))?,
            );
            match op {
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                _ => unreachable!(),
            }
        } else {
            let (x, y) = (
                a.as_i64()
                    .ok_or_else(|| MdhError::Eval("comparison on non-numeric".into()))?,
                b.as_i64()
                    .ok_or_else(|| MdhError::Eval("comparison on non-numeric".into()))?,
            );
            match op {
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                _ => unreachable!(),
            }
        };
        return Ok(Value::Bool(r));
    }
    if float {
        let (x, y) = (
            a.as_f64()
                .ok_or_else(|| MdhError::Eval("arith on non-numeric".into()))?,
            b.as_f64()
                .ok_or_else(|| MdhError::Eval("arith on non-numeric".into()))?,
        );
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Rem => x % y,
            _ => unreachable!(),
        };
        // result takes the wider of the two float kinds; f32 only if both
        // operands are at most f32-precision
        let narrow = matches!(
            a,
            Value::F32(_) | Value::I32(_) | Value::Char(_) | Value::Bool(_)
        ) && matches!(
            b,
            Value::F32(_) | Value::I32(_) | Value::Char(_) | Value::Bool(_)
        );
        Ok(if narrow {
            Value::F32(r as f32)
        } else {
            Value::F64(r)
        })
    } else {
        let (x, y) = (
            a.as_i64()
                .ok_or_else(|| MdhError::Eval("arith on non-numeric".into()))?,
            b.as_i64()
                .ok_or_else(|| MdhError::Eval("arith on non-numeric".into()))?,
        );
        if matches!(op, BinOp::Div | BinOp::Rem) && y == 0 {
            return Err(MdhError::Eval("integer division by zero".into()));
        }
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => x / y,
            BinOp::Rem => x % y,
            _ => unreachable!(),
        };
        let narrow = matches!(a, Value::I32(_)) && matches!(b, Value::I32(_));
        Ok(if narrow {
            Value::I32(r as i32)
        } else {
            Value::I64(r)
        })
    }
}

/// Structural patterns the backend specialisers recognise in a scalar
/// function (our stand-in for code generation: recognised patterns execute
/// through tight native loops instead of the interpreter).
#[derive(Debug, Clone, PartialEq)]
pub enum SfPattern {
    /// `res = p_0 * p_1 * ... * p_{n-1}` — tensor-contraction body.
    ProductOfParams(Vec<usize>),
    /// `res = sum_j w_j * p_j` — stencil body.
    WeightedSum(Vec<(usize, f64)>),
    /// `res = p_0` — identity (copy / scan input).
    Identity(usize),
    /// Anything else: interpreted.
    Opaque,
}

impl ScalarFunction {
    /// Recognise the structural pattern of this function (single-result
    /// functions only; multi-result functions are always `Opaque`).
    pub fn recognize(&self) -> SfPattern {
        if self.results.len() != 1 || self.body.len() != 1 {
            return SfPattern::Opaque;
        }
        let Stmt::Assign { name, value } = &self.body[0] else {
            return SfPattern::Opaque;
        };
        if name != &self.results[0].0 {
            return SfPattern::Opaque;
        }
        if let Expr::Param(p) = value {
            return SfPattern::Identity(*p);
        }
        if let Some(ps) = as_product(value) {
            return SfPattern::ProductOfParams(ps);
        }
        if let Some(terms) = as_weighted_sum(value) {
            return SfPattern::WeightedSum(terms);
        }
        SfPattern::Opaque
    }
}

fn as_product(e: &Expr) -> Option<Vec<usize>> {
    match e {
        Expr::Param(p) => Some(vec![*p]),
        Expr::Bin(BinOp::Mul, a, b) => {
            let mut l = as_product(a)?;
            l.extend(as_product(b)?);
            Some(l)
        }
        _ => None,
    }
}

fn as_weighted_sum(e: &Expr) -> Option<Vec<(usize, f64)>> {
    match e {
        Expr::Bin(BinOp::Add, a, b) => {
            let mut l = as_weighted_sum(a)?;
            l.extend(as_weighted_sum(b)?);
            Some(l)
        }
        Expr::Bin(BinOp::Mul, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Lit(w), Expr::Param(p)) | (Expr::Param(p), Expr::Lit(w)) => {
                Some(vec![(*p, w.as_f64()?)])
            }
            // distribute a constant over a sum: w * (p0 + p1 + ...)
            (Expr::Lit(w), inner) | (inner, Expr::Lit(w)) => {
                let w = w.as_f64()?;
                let terms = as_weighted_sum(inner)?;
                Some(terms.into_iter().map(|(p, c)| (p, c * w)).collect())
            }
            _ => None,
        },
        Expr::Param(p) => Some(vec![(*p, 1.0)]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul2_evaluates() {
        let f = ScalarFunction::mul2("f_mul", ScalarKind::F32);
        f.validate().unwrap();
        let out = f.eval(&[Value::F32(3.0), Value::F32(4.0)]).unwrap();
        assert_eq!(out, vec![Value::F32(12.0)]);
        assert_eq!(f.recognize(), SfPattern::ProductOfParams(vec![0, 1]));
    }

    #[test]
    fn weighted_sum_pattern() {
        let f = ScalarFunction::weighted_sum("jacobi", ScalarKind::F32, &[0.25, 0.5, 0.25]);
        let out = f
            .eval(&[Value::F32(1.0), Value::F32(2.0), Value::F32(3.0)])
            .unwrap();
        assert_eq!(out, vec![Value::F32(0.25 + 1.0 + 0.75)]);
        match f.recognize() {
            SfPattern::WeightedSum(terms) => {
                assert_eq!(terms.len(), 3);
                assert_eq!(terms[1], (1, 0.5));
            }
            other => panic!("expected weighted sum, got {other:?}"),
        }
    }

    #[test]
    fn identity_pattern() {
        let f = ScalarFunction::identity("id", ScalarKind::F64);
        assert_eq!(f.recognize(), SfPattern::Identity(0));
    }

    #[test]
    fn conditional_and_locals() {
        // res = if a > b { a } else { b } via statements
        let f = ScalarFunction {
            name: "max2".into(),
            params: vec![("a".into(), BasicType::F64), ("b".into(), BasicType::F64)],
            results: vec![("res".into(), BasicType::F64)],
            body: vec![Stmt::If {
                cond: Expr::Bin(
                    BinOp::Gt,
                    Box::new(Expr::Param(0)),
                    Box::new(Expr::Param(1)),
                ),
                then_branch: vec![Stmt::Assign {
                    name: "res".into(),
                    value: Expr::Param(0),
                }],
                else_branch: vec![Stmt::Assign {
                    name: "res".into(),
                    value: Expr::Param(1),
                }],
            }],
        };
        f.validate().unwrap();
        assert_eq!(
            f.eval(&[Value::F64(2.0), Value::F64(5.0)]).unwrap(),
            vec![Value::F64(5.0)]
        );
        assert_eq!(f.recognize(), SfPattern::Opaque);
    }

    #[test]
    fn static_loop_unrolls_semantics() {
        // res = sum_{j=0}^{3} j  (uses loop var)
        let f = ScalarFunction {
            name: "sumj".into(),
            params: vec![],
            results: vec![("res".into(), BasicType::I64)],
            body: vec![
                Stmt::Assign {
                    name: "res".into(),
                    value: Expr::lit_i64(0),
                },
                Stmt::For {
                    var: "j".into(),
                    lo: 0,
                    hi: 4,
                    body: vec![Stmt::Assign {
                        name: "res".into(),
                        value: Expr::add(Expr::var("res"), Expr::var("j")),
                    }],
                },
            ],
        };
        assert_eq!(f.eval(&[]).unwrap(), vec![Value::I64(6)]);
    }

    #[test]
    fn validate_rejects_unassigned_result() {
        let f = ScalarFunction {
            name: "bad".into(),
            params: vec![],
            results: vec![("res".into(), BasicType::F32)],
            body: vec![],
        };
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_param_slot() {
        let f = ScalarFunction {
            name: "bad".into(),
            params: vec![("a".into(), BasicType::F32)],
            results: vec![("res".into(), BasicType::F32)],
            body: vec![Stmt::Assign {
                name: "res".into(),
                value: Expr::Param(3),
            }],
        };
        assert!(f.validate().is_err());
    }

    #[test]
    fn numeric_promotion() {
        assert_eq!(
            eval_bin(BinOp::Add, &Value::I32(1), &Value::F64(2.5)).unwrap(),
            Value::F64(3.5)
        );
        assert_eq!(
            eval_bin(BinOp::Mul, &Value::F32(2.0), &Value::F32(3.0)).unwrap(),
            Value::F32(6.0)
        );
        assert_eq!(
            eval_bin(BinOp::Add, &Value::I32(1), &Value::I32(2)).unwrap(),
            Value::I32(3)
        );
        assert!(eval_bin(BinOp::Div, &Value::I64(1), &Value::I64(0)).is_err());
    }

    #[test]
    fn math_fns() {
        let f = ScalarFunction {
            name: "m".into(),
            params: vec![("a".into(), BasicType::F64)],
            results: vec![("res".into(), BasicType::F64)],
            body: vec![Stmt::Assign {
                name: "res".into(),
                value: Expr::Call(MathFn::Sqrt, vec![Expr::Param(0)]),
            }],
        };
        assert_eq!(f.eval(&[Value::F64(9.0)]).unwrap(), vec![Value::F64(3.0)]);
    }

    #[test]
    fn flops_estimate_counts() {
        let f = ScalarFunction::mul2("f", ScalarKind::F32);
        assert_eq!(f.flops_estimate(), 1);
        let g = ScalarFunction::weighted_sum("g", ScalarKind::F32, &[1.0, 2.0, 3.0]);
        assert_eq!(g.flops_estimate(), 5); // 3 muls + 2 adds
    }
}
