//! Reference evaluator — the executable semantics of the MDH DSL.
//!
//! Two evaluators are provided:
//!
//! * [`evaluate_recursive`] implements the *formal* MDH semantics directly:
//!   the iteration space is decomposed dimension by dimension, the scalar
//!   function is applied at each point, and partial results are put back
//!   together with the dimension's combine operator (`cc` stacks, `pw`
//!   folds, `ps` scans). This is the semantics all backends must agree
//!   with, and the object of the homomorphism-law property tests.
//! * [`evaluate_direct`] is a faster accumulator-based oracle usable when
//!   all `pw` dimensions share one combine function and no `ps` dimension
//!   is present (the common case); it must and does agree with the
//!   recursive evaluator.

use crate::buffer::Buffer;
use crate::combine::{CombineOp, DimBehavior};
use crate::dsl::DslProgram;
use crate::error::{MdhError, Result};
use crate::shape::{MdRange, Shape};
use crate::types::Tuple;
#[cfg(test)]
use crate::types::Value;

/// A dense multi-dimensional array of tuples: the intermediate result of
/// the recursive semantics. Covers all `D` dimensions; collapsed dimensions
/// have extent 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Intermediate {
    pub extents: Vec<usize>,
    pub elems: Vec<Tuple>,
}

impl Intermediate {
    fn shape(&self) -> Shape {
        Shape::new(self.extents.clone())
    }

    pub fn get(&self, idx: &[usize]) -> &Tuple {
        &self.elems[self.shape().linearize(idx)]
    }

    /// Combine two intermediates along dimension `d` with the given
    /// operator. Both operands must agree on all other extents. This is the
    /// "⊗_d" of the MDH formalism applied to finished parts, used by the
    /// homomorphism-law tests and by the parallel backends' combine stage.
    pub fn combine_along(
        d: usize,
        op: &CombineOp,
        lhs: &Intermediate,
        rhs: &Intermediate,
    ) -> Result<Intermediate> {
        for (dd, (a, b)) in lhs.extents.iter().zip(&rhs.extents).enumerate() {
            if dd != d && a != b {
                return Err(MdhError::Eval(format!(
                    "combine_along: extent mismatch on dim {dd}: {a} vs {b}"
                )));
            }
        }
        match op {
            CombineOp::Cc => {
                // stack along axis d
                let mut extents = lhs.extents.clone();
                extents[d] += rhs.extents[d];
                let out_shape = Shape::new(extents.clone());
                let mut elems = vec![Tuple::new(); out_shape.len()];
                for idx in Shape::new(lhs.extents.clone()).iter() {
                    elems[out_shape.linearize(&idx)] = lhs.get(&idx).clone();
                }
                for idx in Shape::new(rhs.extents.clone()).iter() {
                    let mut oidx = idx.clone();
                    oidx[d] += lhs.extents[d];
                    elems[out_shape.linearize(&oidx)] = rhs.get(&idx).clone();
                }
                Ok(Intermediate { extents, elems })
            }
            CombineOp::Pw(f) => {
                if lhs.extents[d] != 1 || rhs.extents[d] != 1 {
                    return Err(MdhError::Eval(
                        "pw combine_along expects collapsed operands".into(),
                    ));
                }
                let mut elems = Vec::with_capacity(lhs.elems.len());
                for (a, b) in lhs.elems.iter().zip(&rhs.elems) {
                    elems.push(f.combine(a, b)?);
                }
                Ok(Intermediate {
                    extents: lhs.extents.clone(),
                    elems,
                })
            }
            CombineOp::Rbi(_) => Err(MdhError::Eval(
                "rbi dimensions are not combined through intermediates; \
                 use the scatter evaluator"
                    .into(),
            )),
            CombineOp::Ps(f) => {
                // prefix-sum combine (Listing 17, contiguous split):
                // res[P] = lhs; res[Q][j] = cf(lhs[last of P], rhs[j])
                let mut extents = lhs.extents.clone();
                extents[d] += rhs.extents[d];
                let out_shape = Shape::new(extents.clone());
                let mut elems = vec![Tuple::new(); out_shape.len()];
                for idx in Shape::new(lhs.extents.clone()).iter() {
                    elems[out_shape.linearize(&idx)] = lhs.get(&idx).clone();
                }
                let last = lhs.extents[d].checked_sub(1);
                for idx in Shape::new(rhs.extents.clone()).iter() {
                    let mut oidx = idx.clone();
                    oidx[d] += lhs.extents[d];
                    let v = match last {
                        Some(l) => {
                            let mut lidx = idx.clone();
                            lidx[d] = l;
                            f.combine(lhs.get(&lidx), rhs.get(&idx))?
                        }
                        None => rhs.get(&idx).clone(),
                    };
                    elems[out_shape.linearize(&oidx)] = v;
                }
                Ok(Intermediate { extents, elems })
            }
        }
    }
}

/// Apply the scalar function at one iteration point: load input-access
/// values, run SF, return the result tuple.
pub fn apply_sf_at(prog: &DslProgram, inputs: &[Buffer], idx: &[usize]) -> Result<Tuple> {
    let mut args = Vec::with_capacity(prog.inp_view.accesses.len());
    for a in &prog.inp_view.accesses {
        let bidx = a.index_fn.eval(idx).ok_or_else(|| {
            MdhError::Eval(format!("negative buffer index at iteration point {idx:?}"))
        })?;
        let buf = &inputs[a.buffer];
        if !buf.shape.contains(&bidx) {
            return Err(MdhError::OutOfBounds {
                buffer: buf.name.clone(),
                index: bidx,
                shape: buf.shape.dims().to_vec(),
            });
        }
        args.push(buf.get(&bidx));
    }
    prog.md_hom.sf.eval(&args)
}

/// Evaluate the program over an iteration sub-range with the recursive
/// (formal) semantics, producing the intermediate tuple array.
pub fn eval_range(prog: &DslProgram, inputs: &[Buffer], range: &MdRange) -> Result<Intermediate> {
    let mut prefix = range.lo.clone();
    rec(prog, inputs, range, 0, &mut prefix)
}

fn rec(
    prog: &DslProgram,
    inputs: &[Buffer],
    range: &MdRange,
    d: usize,
    prefix: &mut Vec<usize>,
) -> Result<Intermediate> {
    let rank = prog.rank();
    if d == rank {
        let tuple = apply_sf_at(prog, inputs, prefix)?;
        return Ok(Intermediate {
            extents: vec![],
            elems: vec![tuple],
        });
    }
    let op = &prog.md_hom.combine_ops[d];
    let mut acc: Option<Intermediate> = None;
    let mut scan_count = 0usize;
    for i in range.lo[d]..range.hi[d] {
        prefix[d] = i;
        let child = rec(prog, inputs, range, d + 1, prefix)?;
        // lift child to include axis d with extent 1
        let mut extents = vec![1];
        extents.extend(child.extents);
        let child = Intermediate {
            extents,
            elems: child.elems,
        };
        acc = Some(match acc {
            None => {
                scan_count = 1;
                child
            }
            Some(prev) => {
                scan_count += 1;
                let _ = scan_count;
                Intermediate::combine_along(0, &lift_op(op), &prev, &child)?
            }
        });
    }
    prefix[d] = range.lo[d];
    match acc {
        Some(i) => Ok(i),
        None => {
            // empty extent: produce an empty intermediate
            let mut extents = vec![0];
            extents.extend(vec![0; rank - d - 1].iter().map(|_| 0usize));
            // child extents unknown for empty ranges; use zeros
            Ok(Intermediate {
                extents,
                elems: vec![],
            })
        }
    }
}

/// At recursion depth the axis being combined is axis 0 of the lifted
/// children; the operator itself is unchanged.
fn lift_op(op: &CombineOp) -> CombineOp {
    op.clone()
}

/// Write a finished intermediate into freshly-allocated output buffers.
pub fn write_outputs(
    prog: &DslProgram,
    intermediate: &Intermediate,
    range: &MdRange,
    outputs: &mut [Buffer],
) -> Result<()> {
    let shape = Shape::new(intermediate.extents.clone());
    for j in shape.iter() {
        let tuple = intermediate.get(&j);
        // absolute iteration index: preserved dims offset by range.lo,
        // collapsed dims pinned to range.lo (out index fns cannot depend on
        // them — validated)
        let mut idx = Vec::with_capacity(prog.rank());
        for (d, op) in prog.md_hom.combine_ops.iter().enumerate() {
            match op.behavior() {
                DimBehavior::Preserve => idx.push(range.lo[d] + j[d]),
                DimBehavior::Collapse => idx.push(range.lo[d]),
            }
        }
        for (r, a) in prog.out_view.accesses.iter().enumerate() {
            let bidx = a
                .index_fn
                .eval(&idx)
                .ok_or_else(|| MdhError::Eval("negative output index".into()))?;
            outputs[a.buffer].set(&bidx, &tuple[r])?;
        }
    }
    Ok(())
}

/// Allocate zero-initialised output buffers for the program.
pub fn alloc_outputs(prog: &DslProgram) -> Result<Vec<Buffer>> {
    let shapes = prog.output_shapes()?;
    Ok(prog
        .out_view
        .buffers
        .iter()
        .zip(shapes)
        .map(|(decl, shape)| Buffer::zeros(decl.name.clone(), decl.ty.clone(), Shape::new(shape)))
        .collect())
}

/// Check that supplied input buffers match the program's expectations.
pub fn check_inputs(prog: &DslProgram, inputs: &[Buffer]) -> Result<()> {
    if inputs.len() != prog.inp_view.buffers.len() {
        return Err(MdhError::Validation(format!(
            "program '{}' expects {} input buffers, got {}",
            prog.name,
            prog.inp_view.buffers.len(),
            inputs.len()
        )));
    }
    let needed = prog.input_shapes()?;
    for ((buf, decl), shape) in inputs.iter().zip(&prog.inp_view.buffers).zip(needed) {
        if buf.ty != decl.ty {
            return Err(MdhError::Type(format!(
                "input buffer '{}' has type {}, expected {}",
                buf.name, buf.ty, decl.ty
            )));
        }
        if buf.shape.rank() != shape.len()
            || buf
                .shape
                .dims()
                .iter()
                .zip(&shape)
                .any(|(&have, &need)| have < need)
        {
            return Err(MdhError::Validation(format!(
                "input buffer '{}' has shape {}, needs at least {:?}",
                buf.name, buf.shape, shape
            )));
        }
    }
    Ok(())
}

/// Full recursive (formal-semantics) evaluation of a program. Programs with
/// an `rbi` dimension are routed to the scatter evaluator — their output
/// positions are data-dependent, so the intermediate-array machinery does
/// not apply.
pub fn evaluate_recursive(prog: &DslProgram, inputs: &[Buffer]) -> Result<Vec<Buffer>> {
    prog.validate()?;
    check_inputs(prog, inputs)?;
    if prog.md_hom.has_rbi() {
        return evaluate_scatter(prog, inputs);
    }
    let range = prog.md_hom.full_range();
    let inter = eval_range(prog, inputs, &range)?;
    let mut outputs = alloc_outputs(prog)?;
    write_outputs(prog, &inter, &range, &mut outputs)?;
    Ok(outputs)
}

/// Reference evaluator for indexed-reduction (`rbi`) programs: outputs are
/// zero-initialised (the `add` identity) and every iteration point — in
/// ascending row-major order, which fixes the fold order and hence the
/// result bits — accumulates its scalar-function results into the positions
/// its output accesses select. Contributions from `cc` dimensions land at
/// distinct positions by injectivity of the access along them; collapsed
/// (`pw(add)`/`rbi(add)`) dimensions collide and sum, which is exactly the
/// reduce-by-index semantics.
pub fn evaluate_scatter(prog: &DslProgram, inputs: &[Buffer]) -> Result<Vec<Buffer>> {
    prog.validate()?;
    check_inputs(prog, inputs)?;
    if !prog.md_hom.has_rbi() {
        return Err(MdhError::Eval(
            "evaluate_scatter requires at least one rbi dimension".into(),
        ));
    }
    let range = prog.md_hom.full_range();
    let mut outputs = alloc_outputs(prog)?;
    scatter_range(prog, inputs, &range, &mut outputs)?;
    Ok(outputs)
}

/// Accumulate one iteration sub-range into already-allocated outputs
/// (visiting points in ascending row-major order). Shared by the reference
/// evaluator and the parallel backends, which call it chunk by chunk.
pub fn scatter_range(
    prog: &DslProgram,
    inputs: &[Buffer],
    range: &MdRange,
    outputs: &mut [Buffer],
) -> Result<()> {
    let add = crate::combine::PwFunc::builtin(crate::combine::BuiltinReduce::Add);
    for idx in range.iter() {
        let tuple = apply_sf_at(prog, inputs, &idx)?;
        for (r, a) in prog.out_view.accesses.iter().enumerate() {
            let bidx = a
                .index_fn
                .eval(&idx)
                .ok_or_else(|| MdhError::Eval("negative scatter index".into()))?;
            let buf = &mut outputs[a.buffer];
            if !buf.shape.contains(&bidx) {
                return Err(MdhError::OutOfBounds {
                    buffer: buf.name.clone(),
                    index: bidx,
                    shape: buf.shape.dims().to_vec(),
                });
            }
            let prev = buf.get(&bidx);
            let summed = add.combine(&vec![prev], &vec![tuple[r].clone()])?;
            buf.set(&bidx, &summed[0])?;
        }
    }
    Ok(())
}

/// Whether the fast accumulator oracle applies: no `ps` dimension, and all
/// `pw` dimensions share one combine function (by name).
pub fn direct_applicable(prog: &DslProgram) -> bool {
    let mut pw_name: Option<&str> = None;
    for op in &prog.md_hom.combine_ops {
        match op {
            CombineOp::Cc => {}
            CombineOp::Ps(_) | CombineOp::Rbi(_) => return false,
            CombineOp::Pw(f) => match pw_name {
                None => pw_name = Some(&f.name),
                Some(n) => {
                    if n != f.name {
                        return false;
                    }
                }
            },
        }
    }
    true
}

/// Accumulator-based evaluation (oracle for larger sizes). Requires
/// [`direct_applicable`]; falls back to an error otherwise.
pub fn evaluate_direct(prog: &DslProgram, inputs: &[Buffer]) -> Result<Vec<Buffer>> {
    prog.validate()?;
    check_inputs(prog, inputs)?;
    if !direct_applicable(prog) {
        return Err(MdhError::Eval(
            "evaluate_direct requires a single pw combine function and no ps dims; \
             use evaluate_recursive"
                .into(),
        ));
    }
    let range = prog.md_hom.full_range();
    let preserved = prog.md_hom.preserved_dims();
    let acc_shape = Shape::new(
        preserved
            .iter()
            .map(|&d| prog.md_hom.sizes[d])
            .collect::<Vec<_>>(),
    );
    let mut acc: Vec<Option<Tuple>> = vec![None; acc_shape.len().max(1)];
    let pw = prog.md_hom.combine_ops.iter().find_map(|op| match op {
        CombineOp::Pw(f) => Some(f.clone()),
        _ => None,
    });
    for idx in range.iter() {
        let tuple = apply_sf_at(prog, inputs, &idx)?;
        let key: Vec<usize> = preserved.iter().map(|&d| idx[d]).collect();
        let slot = &mut acc[acc_shape.linearize(&key)];
        *slot = Some(match slot.take() {
            None => tuple,
            Some(prev) => pw
                .as_ref()
                .ok_or_else(|| MdhError::Eval("duplicate write without pw op".into()))?
                .combine(&prev, &tuple)?,
        });
    }
    let mut outputs = alloc_outputs(prog)?;
    for key in acc_shape.iter() {
        let Some(tuple) = &acc[acc_shape.linearize(&key)] else {
            continue;
        };
        let mut idx = vec![0usize; prog.rank()];
        for (kd, &d) in preserved.iter().enumerate() {
            idx[d] = key[kd];
        }
        for (r, a) in prog.out_view.accesses.iter().enumerate() {
            let bidx = a
                .index_fn
                .eval(&idx)
                .ok_or_else(|| MdhError::Eval("negative output index".into()))?;
            outputs[a.buffer].set(&bidx, &tuple[r])?;
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::DslBuilder;
    use crate::expr::ScalarFunction;
    use crate::index_fn::{AffineExpr, IndexFn};
    use crate::types::{BasicType, ScalarKind};

    fn matvec_prog(i: usize, k: usize) -> DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    fn matvec_inputs(i: usize, k: usize) -> Vec<Buffer> {
        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![i, k]));
        m.fill_with(|f| (f % 7) as f64 - 3.0);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![k]));
        v.fill_with(|f| (f % 5) as f64 * 0.5);
        vec![m, v]
    }

    fn matvec_expected(inputs: &[Buffer], i: usize, k: usize) -> Vec<f32> {
        let m = inputs[0].as_f32().unwrap();
        let v = inputs[1].as_f32().unwrap();
        (0..i)
            .map(|ii| (0..k).map(|kk| m[ii * k + kk] * v[kk]).sum())
            .collect()
    }

    #[test]
    fn recursive_matches_handwritten_matvec() {
        let (i, k) = (5, 7);
        let prog = matvec_prog(i, k);
        let inputs = matvec_inputs(i, k);
        let out = evaluate_recursive(&prog, &inputs).unwrap();
        assert_eq!(
            out[0].as_f32().unwrap(),
            &matvec_expected(&inputs, i, k)[..]
        );
    }

    #[test]
    fn direct_matches_recursive_matvec() {
        let (i, k) = (6, 4);
        let prog = matvec_prog(i, k);
        let inputs = matvec_inputs(i, k);
        let a = evaluate_recursive(&prog, &inputs).unwrap();
        let b = evaluate_direct(&prog, &inputs).unwrap();
        assert!(a[0].approx_eq(&b[0], 1e-6));
    }

    #[test]
    fn dot_product_pure_reduction() {
        let n = 9;
        let prog = DslBuilder::new("dot", vec![n])
            .out_buffer("res", BasicType::F32)
            .out_access("res", IndexFn::affine(vec![AffineExpr::constant(1, 0)]))
            .inp_buffer("x", BasicType::F32)
            .inp_access("x", IndexFn::identity(1, 1))
            .inp_buffer("y", BasicType::F32)
            .inp_access("y", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::pw_add()])
            .build()
            .unwrap();
        let mut x = Buffer::zeros("x", BasicType::F32, Shape::new(vec![n]));
        x.fill_with(|f| f as f64);
        let mut y = Buffer::zeros("y", BasicType::F32, Shape::new(vec![n]));
        y.fill_with(|_| 2.0);
        let out = evaluate_recursive(&prog, &[x, y]).unwrap();
        let expect: f32 = (0..n).map(|f| f as f32 * 2.0).sum();
        assert_eq!(out[0].as_f32().unwrap(), &[expect]);
    }

    #[test]
    fn prefix_sum_scan_semantics() {
        // MBBS-like 1D prefix sum: out[i] = sum_{j<=i} x[j]
        let n = 8;
        let prog = DslBuilder::new("psum", vec![n])
            .out_buffer("out", BasicType::F64)
            .out_access("out", IndexFn::identity(1, 1))
            .inp_buffer("x", BasicType::F64)
            .inp_access("x", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
            .combine_ops(vec![CombineOp::ps_add()])
            .build()
            .unwrap();
        let mut x = Buffer::zeros("x", BasicType::F64, Shape::new(vec![n]));
        x.fill_with(|f| f as f64 + 1.0);
        let out = evaluate_recursive(&prog, &[x]).unwrap();
        let got = out[0].as_f64().unwrap();
        let mut expect = vec![0.0; n];
        let mut s = 0.0;
        for i in 0..n {
            s += i as f64 + 1.0;
            expect[i] = s;
        }
        assert_eq!(got, &expect[..]);
    }

    #[test]
    fn direct_rejects_ps() {
        let prog = DslBuilder::new("psum", vec![4])
            .out_buffer("out", BasicType::F64)
            .out_access("out", IndexFn::identity(1, 1))
            .inp_buffer("x", BasicType::F64)
            .inp_access("x", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
            .combine_ops(vec![CombineOp::ps_add()])
            .build()
            .unwrap();
        assert!(!direct_applicable(&prog));
        let x = Buffer::zeros("x", BasicType::F64, Shape::new(vec![4]));
        assert!(evaluate_direct(&prog, &[x]).is_err());
    }

    #[test]
    fn combine_along_cc_stacks() {
        let lhs = Intermediate {
            extents: vec![1],
            elems: vec![vec![Value::I64(1)]],
        };
        let rhs = Intermediate {
            extents: vec![2],
            elems: vec![vec![Value::I64(2)], vec![Value::I64(3)]],
        };
        let out = Intermediate::combine_along(0, &CombineOp::cc(), &lhs, &rhs).unwrap();
        assert_eq!(out.extents, vec![3]);
        assert_eq!(out.elems[2], vec![Value::I64(3)]);
    }

    #[test]
    fn combine_along_ps_offsets_q_part() {
        // scan of [1,2] and scan of [3,4] combine to scan of [1,2,3,4]
        let lhs = Intermediate {
            extents: vec![2],
            elems: vec![vec![Value::I64(1)], vec![Value::I64(3)]],
        };
        let rhs = Intermediate {
            extents: vec![2],
            elems: vec![vec![Value::I64(3)], vec![Value::I64(7)]],
        };
        let out = Intermediate::combine_along(0, &CombineOp::ps_add(), &lhs, &rhs).unwrap();
        assert_eq!(
            out.elems,
            vec![
                vec![Value::I64(1)],
                vec![Value::I64(3)],
                vec![Value::I64(6)],
                vec![Value::I64(10)]
            ]
        );
    }

    #[test]
    fn rbi_histogram_scatter() {
        // hist[key[i]] += w[i]; keys are captured by the output index fn
        let n = 10;
        let keys: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % 4).collect();
        let captured = keys.clone();
        let prog = DslBuilder::new("hist", vec![n])
            .out_buffer_with_shape("hist", BasicType::F64, vec![4])
            .out_access(
                "hist",
                IndexFn::General {
                    out_rank: 1,
                    f: std::sync::Arc::new(move |idx: &[usize]| vec![captured[idx[0]]]),
                    label: "key".into(),
                },
            )
            .inp_buffer("w", BasicType::F64)
            .inp_access("w", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
            .combine_ops(vec![CombineOp::rbi_add()])
            .build()
            .unwrap();
        let mut w = Buffer::zeros("w", BasicType::F64, Shape::new(vec![n]));
        w.fill_with(|i| i as f64 + 1.0);
        let out = evaluate_recursive(&prog, &[w]).unwrap();
        let mut expect = [0.0f64; 4];
        for (i, &k) in keys.iter().enumerate() {
            expect[k] += i as f64 + 1.0;
        }
        assert_eq!(out[0].as_f64().unwrap(), &expect[..]);
    }

    #[test]
    fn rbi_validation_rules() {
        let build = |op: CombineOp, declared: bool| {
            let mut b = DslBuilder::new("h", vec![4, 3]);
            b = if declared {
                b.out_buffer_with_shape("o", BasicType::F64, vec![4])
            } else {
                b.out_buffer("o", BasicType::F64)
            };
            b.out_access("o", IndexFn::select(2, &[0]))
                .inp_buffer("x", BasicType::F64)
                .inp_access("x", IndexFn::identity(2, 2))
                .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
                .combine_ops(vec![CombineOp::rbi_add(), op])
                .build()
        };
        // rbi + pw(add) with declared shapes is fine
        assert!(build(CombineOp::pw_add(), true).is_ok());
        // mixing rbi with ps or non-add reductions is rejected
        assert!(build(CombineOp::ps_add(), true).is_err());
        assert!(build(CombineOp::pw_max(), true).is_err());
        // undeclared output shape is rejected
        assert!(build(CombineOp::pw_add(), false).is_err());
    }

    #[test]
    fn out_of_bounds_access_reported() {
        let (i, k) = (3, 3);
        let prog = matvec_prog(i, k);
        let mut inputs = matvec_inputs(i, k);
        // shrink v so accesses go out of bounds
        inputs[1] = Buffer::zeros("v", BasicType::F32, Shape::new(vec![k - 1]));
        let err = evaluate_recursive(&prog, &inputs).unwrap_err();
        assert!(matches!(
            err,
            MdhError::Validation(_) | MdhError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn strided_output_view() {
        // out[i*2] = x[i] (stride-2 scatter, Listing 6 discussion)
        let n = 4;
        let prog = DslBuilder::new("strided", vec![n])
            .out_buffer_with_shape("out", BasicType::F64, vec![2 * n])
            .out_access("out", IndexFn::affine(vec![AffineExpr::new(vec![2], 0)]))
            .inp_buffer("x", BasicType::F64)
            .inp_access("x", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
            .combine_ops(vec![CombineOp::cc()])
            .build()
            .unwrap();
        let mut x = Buffer::zeros("x", BasicType::F64, Shape::new(vec![n]));
        x.fill_with(|f| f as f64 + 1.0);
        let out = evaluate_recursive(&prog, &[x]).unwrap();
        assert_eq!(
            out[0].as_f64().unwrap(),
            &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]
        );
    }
}
