//! Multi-dimensional buffers.
//!
//! Buffers hold the inputs and outputs declared in the directive's
//! `inp(...)` / `out(...)` clauses. Primitive buffers store their elements
//! contiguously; record buffers (as used by PRL) are stored column-wise
//! (structure-of-arrays), which is both what a real code generator would
//! emit for GPU-friendly layouts and what our register-VM backend loads
//! from.

use crate::error::MdhError;
use crate::shape::Shape;
use crate::types::{BasicType, FieldType, RecordType, ScalarKind, Value};
use std::sync::Arc;

/// Typed storage for the elements of a buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferData {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
    Char(Vec<u8>),
    /// Column-wise record storage: one column per field; array fields store
    /// `lanes` consecutive primitive values per element.
    Record(RecordStorage),
}

/// Structure-of-arrays storage for record buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordStorage {
    pub record: Arc<RecordType>,
    pub columns: Vec<Column>,
}

/// One field column of a record buffer. Length = `n_elems * field.lanes()`.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
    Char(Vec<u8>),
}

impl Column {
    fn zeros(kind: ScalarKind, n: usize) -> Column {
        match kind {
            ScalarKind::F32 => Column::F32(vec![0.0; n]),
            ScalarKind::F64 => Column::F64(vec![0.0; n]),
            ScalarKind::I32 => Column::I32(vec![0; n]),
            ScalarKind::I64 => Column::I64(vec![0; n]),
            ScalarKind::Bool => Column::Bool(vec![false; n]),
            ScalarKind::Char => Column::Char(vec![0; n]),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::F32(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::I32(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Char(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::F32(v) => Value::F32(v[i]),
            Column::F64(v) => Value::F64(v[i]),
            Column::I32(v) => Value::I32(v[i]),
            Column::I64(v) => Value::I64(v[i]),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Char(v) => Value::Char(v[i]),
        }
    }

    pub fn set(&mut self, i: usize, val: &Value) -> Result<(), MdhError> {
        match (self, val) {
            (Column::F32(v), Value::F32(x)) => v[i] = *x,
            (Column::F64(v), Value::F64(x)) => v[i] = *x,
            (Column::I32(v), Value::I32(x)) => v[i] = *x,
            (Column::I64(v), Value::I64(x)) => v[i] = *x,
            (Column::Bool(v), Value::Bool(x)) => v[i] = *x,
            (Column::Char(v), Value::Char(x)) => v[i] = *x,
            (col, val) => {
                // allow numeric coercion
                let kind = match col {
                    Column::F32(_) => ScalarKind::F32,
                    Column::F64(_) => ScalarKind::F64,
                    Column::I32(_) => ScalarKind::I32,
                    Column::I64(_) => ScalarKind::I64,
                    Column::Bool(_) => ScalarKind::Bool,
                    Column::Char(_) => ScalarKind::Char,
                };
                let coerced = val.cast(kind).ok_or_else(|| {
                    MdhError::Type(format!(
                        "cannot store {} into {kind} column",
                        val.kind_name()
                    ))
                })?;
                return col.set(i, &coerced);
            }
        }
        Ok(())
    }

    /// Read i64 without allocation (integral columns).
    pub fn get_i64(&self, i: usize) -> i64 {
        match self {
            Column::F32(v) => v[i] as i64,
            Column::F64(v) => v[i] as i64,
            Column::I32(v) => v[i] as i64,
            Column::I64(v) => v[i],
            Column::Bool(v) => v[i] as i64,
            Column::Char(v) => v[i] as i64,
        }
    }

    /// Read f64 without allocation.
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            Column::F32(v) => v[i] as f64,
            Column::F64(v) => v[i],
            Column::I32(v) => v[i] as f64,
            Column::I64(v) => v[i] as f64,
            Column::Bool(v) => v[i] as i64 as f64,
            Column::Char(v) => v[i] as f64,
        }
    }

    pub fn set_f64(&mut self, i: usize, x: f64) {
        match self {
            Column::F32(v) => v[i] = x as f32,
            Column::F64(v) => v[i] = x,
            Column::I32(v) => v[i] = x as i32,
            Column::I64(v) => v[i] = x as i64,
            Column::Bool(v) => v[i] = x != 0.0,
            Column::Char(v) => v[i] = x as u8,
        }
    }

    pub fn set_i64(&mut self, i: usize, x: i64) {
        match self {
            Column::F32(v) => v[i] = x as f32,
            Column::F64(v) => v[i] = x as f64,
            Column::I32(v) => v[i] = x as i32,
            Column::I64(v) => v[i] = x,
            Column::Bool(v) => v[i] = x != 0,
            Column::Char(v) => v[i] = x as u8,
        }
    }
}

/// A multi-dimensional buffer with a basic element type.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer {
    pub name: String,
    pub ty: BasicType,
    pub shape: Shape,
    pub data: BufferData,
}

impl Buffer {
    /// Allocate a zero-initialised buffer.
    pub fn zeros(name: impl Into<String>, ty: BasicType, shape: Shape) -> Buffer {
        let n = shape.len();
        let data = match &ty {
            BasicType::Scalar(ScalarKind::F32) => BufferData::F32(vec![0.0; n]),
            BasicType::Scalar(ScalarKind::F64) => BufferData::F64(vec![0.0; n]),
            BasicType::Scalar(ScalarKind::I32) => BufferData::I32(vec![0; n]),
            BasicType::Scalar(ScalarKind::I64) => BufferData::I64(vec![0; n]),
            BasicType::Scalar(ScalarKind::Bool) => BufferData::Bool(vec![false; n]),
            BasicType::Scalar(ScalarKind::Char) => BufferData::Char(vec![0; n]),
            BasicType::Record(rec) => BufferData::Record(RecordStorage {
                record: rec.clone(),
                columns: rec
                    .fields
                    .iter()
                    .map(|(_, ft)| Column::zeros(ft.kind(), n * ft.lanes()))
                    .collect(),
            }),
        };
        Buffer {
            name: name.into(),
            ty,
            shape,
            data,
        }
    }

    /// Build an f32 buffer from existing data.
    pub fn from_f32(name: impl Into<String>, shape: Shape, data: Vec<f32>) -> Buffer {
        assert_eq!(shape.len(), data.len(), "shape/data length mismatch");
        Buffer {
            name: name.into(),
            ty: BasicType::F32,
            shape,
            data: BufferData::F32(data),
        }
    }

    /// Build an f64 buffer from existing data.
    pub fn from_f64(name: impl Into<String>, shape: Shape, data: Vec<f64>) -> Buffer {
        assert_eq!(shape.len(), data.len(), "shape/data length mismatch");
        Buffer {
            name: name.into(),
            ty: BasicType::F64,
            shape,
            data: BufferData::F64(data),
        }
    }

    /// Build an i64 buffer from existing data.
    pub fn from_i64(name: impl Into<String>, shape: Shape, data: Vec<i64>) -> Buffer {
        assert_eq!(shape.len(), data.len(), "shape/data length mismatch");
        Buffer {
            name: name.into(),
            ty: BasicType::I64,
            shape,
            data: BufferData::I64(data),
        }
    }

    pub fn len(&self) -> usize {
        self.shape.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn size_bytes(&self) -> usize {
        self.len() * self.ty.size_bytes()
    }

    /// Read element at a multi-index as a dynamic value.
    pub fn get(&self, idx: &[usize]) -> Value {
        let flat = self.shape.linearize(idx);
        self.get_flat(flat)
    }

    /// Read element at a flat index.
    pub fn get_flat(&self, flat: usize) -> Value {
        match &self.data {
            BufferData::F32(v) => Value::F32(v[flat]),
            BufferData::F64(v) => Value::F64(v[flat]),
            BufferData::I32(v) => Value::I32(v[flat]),
            BufferData::I64(v) => Value::I64(v[flat]),
            BufferData::Bool(v) => Value::Bool(v[flat]),
            BufferData::Char(v) => Value::Char(v[flat]),
            BufferData::Record(rs) => Value::Record(
                rs.record
                    .fields
                    .iter()
                    .zip(&rs.columns)
                    .map(|((_, ft), col)| match ft {
                        FieldType::Scalar(_) => col.get(flat),
                        FieldType::Array(_, lanes) => {
                            Value::Array((0..*lanes).map(|l| col.get(flat * lanes + l)).collect())
                        }
                    })
                    .collect(),
            ),
        }
    }

    /// Write element at a multi-index.
    pub fn set(&mut self, idx: &[usize], val: &Value) -> Result<(), MdhError> {
        let flat = self.shape.linearize(idx);
        self.set_flat(flat, val)
    }

    /// Write element at a flat index.
    pub fn set_flat(&mut self, flat: usize, val: &Value) -> Result<(), MdhError> {
        match (&mut self.data, val) {
            (BufferData::F32(v), Value::F32(x)) => v[flat] = *x,
            (BufferData::F64(v), Value::F64(x)) => v[flat] = *x,
            (BufferData::I32(v), Value::I32(x)) => v[flat] = *x,
            (BufferData::I64(v), Value::I64(x)) => v[flat] = *x,
            (BufferData::Bool(v), Value::Bool(x)) => v[flat] = *x,
            (BufferData::Char(v), Value::Char(x)) => v[flat] = *x,
            (BufferData::Record(rs), Value::Record(fields)) => {
                if fields.len() != rs.columns.len() {
                    return Err(MdhError::Type(format!(
                        "record value with {} fields stored into record type {} with {} fields",
                        fields.len(),
                        rs.record.name,
                        rs.columns.len()
                    )));
                }
                let field_types: Vec<FieldType> =
                    rs.record.fields.iter().map(|(_, ft)| *ft).collect();
                for ((col, fval), ft) in rs.columns.iter_mut().zip(fields).zip(field_types) {
                    match (ft, fval) {
                        (FieldType::Scalar(_), v) => col.set(flat, v)?,
                        (FieldType::Array(_, lanes), Value::Array(items)) => {
                            if items.len() != lanes {
                                return Err(MdhError::Type("array field length mismatch".into()));
                            }
                            for (l, item) in items.iter().enumerate() {
                                col.set(flat * lanes + l, item)?;
                            }
                        }
                        (FieldType::Array(..), other) => {
                            return Err(MdhError::Type(format!(
                                "expected array for array field, got {}",
                                other.kind_name()
                            )))
                        }
                    }
                }
            }
            (_, val) => {
                // numeric coercion for scalar buffers
                if let BasicType::Scalar(kind) = self.ty.clone() {
                    let coerced = val.cast(kind).ok_or_else(|| {
                        MdhError::Type(format!(
                            "cannot store {} into {kind} buffer '{}'",
                            val.kind_name(),
                            self.name
                        ))
                    })?;
                    return self.set_flat(flat, &coerced);
                }
                return Err(MdhError::Type(format!(
                    "cannot store {} into buffer '{}' of type {}",
                    val.kind_name(),
                    self.name,
                    self.ty
                )));
            }
        }
        Ok(())
    }

    /// Fill a scalar buffer from an `f64`-producing function of the flat index.
    pub fn fill_with(&mut self, f: impl Fn(usize) -> f64) {
        match &mut self.data {
            BufferData::F32(v) => v.iter_mut().enumerate().for_each(|(i, x)| *x = f(i) as f32),
            BufferData::F64(v) => v.iter_mut().enumerate().for_each(|(i, x)| *x = f(i)),
            BufferData::I32(v) => v.iter_mut().enumerate().for_each(|(i, x)| *x = f(i) as i32),
            BufferData::I64(v) => v.iter_mut().enumerate().for_each(|(i, x)| *x = f(i) as i64),
            BufferData::Bool(v) => v.iter_mut().enumerate().for_each(|(i, x)| *x = f(i) != 0.0),
            BufferData::Char(v) => v.iter_mut().enumerate().for_each(|(i, x)| *x = f(i) as u8),
            BufferData::Record(_) => panic!("fill_with is only defined for scalar buffers"),
        }
    }

    pub fn as_f32(&self) -> Option<&[f32]> {
        match &self.data {
            BufferData::F32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f32_mut(&mut self) -> Option<&mut [f32]> {
        match &mut self.data {
            BufferData::F32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<&[f64]> {
        match &self.data {
            BufferData::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<&[i64]> {
        match &self.data {
            BufferData::I64(v) => Some(v),
            _ => None,
        }
    }

    pub fn record_storage(&self) -> Option<&RecordStorage> {
        match &self.data {
            BufferData::Record(rs) => Some(rs),
            _ => None,
        }
    }

    pub fn record_storage_mut(&mut self) -> Option<&mut RecordStorage> {
        match &mut self.data {
            BufferData::Record(rs) => Some(rs),
            _ => None,
        }
    }

    /// Approximate element-wise equality (testing helper).
    pub fn approx_eq(&self, other: &Buffer, rel_tol: f64) -> bool {
        if self.shape != other.shape || self.ty != other.ty {
            return false;
        }
        (0..self.len()).all(|i| self.get_flat(i).approx_eq(&other.get_flat(i), rel_tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RecordType;

    #[test]
    fn scalar_roundtrip() {
        let mut b = Buffer::zeros("w", BasicType::F32, Shape::new(vec![2, 3]));
        b.set(&[1, 2], &Value::F32(4.5)).unwrap();
        assert_eq!(b.get(&[1, 2]), Value::F32(4.5));
        assert_eq!(b.get(&[0, 0]), Value::F32(0.0));
    }

    #[test]
    fn numeric_coercion_on_store() {
        let mut b = Buffer::zeros("x", BasicType::I64, Shape::new(vec![2]));
        b.set(&[0], &Value::I32(7)).unwrap();
        assert_eq!(b.get(&[0]), Value::I64(7));
    }

    #[test]
    fn record_roundtrip_soa() {
        let rec = RecordType::new(
            "db",
            vec![
                ("id".into(), FieldType::Scalar(ScalarKind::I64)),
                ("values".into(), FieldType::Array(ScalarKind::F64, 3)),
            ],
        );
        let mut b = Buffer::zeros("probM", BasicType::Record(rec.clone()), Shape::new(vec![4]));
        let v = Value::Record(vec![
            Value::I64(42),
            Value::Array(vec![Value::F64(1.0), Value::F64(2.0), Value::F64(3.0)]),
        ]);
        b.set(&[2], &v).unwrap();
        assert_eq!(b.get(&[2]), v);
        assert_eq!(b.get(&[0]), rec.zero());
        // verify columnar layout
        let rs = b.record_storage().unwrap();
        assert_eq!(rs.columns[0].len(), 4);
        assert_eq!(rs.columns[1].len(), 12);
        assert_eq!(rs.columns[1].get_f64(2 * 3 + 1), 2.0);
    }

    #[test]
    fn record_store_wrong_arity_fails() {
        let rec = RecordType::new("r", vec![("a".into(), FieldType::Scalar(ScalarKind::F32))]);
        let mut b = Buffer::zeros("b", BasicType::Record(rec), Shape::new(vec![1]));
        let err = b.set(&[0], &Value::Record(vec![Value::F32(1.0), Value::F32(2.0)]));
        assert!(err.is_err());
    }

    #[test]
    fn fill_with_and_slices() {
        let mut b = Buffer::zeros("m", BasicType::F32, Shape::new(vec![4]));
        b.fill_with(|i| i as f64 * 2.0);
        assert_eq!(b.as_f32().unwrap(), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn approx_eq_buffers() {
        let mut a = Buffer::zeros("a", BasicType::F32, Shape::new(vec![3]));
        let mut b = Buffer::zeros("b", BasicType::F32, Shape::new(vec![3]));
        a.fill_with(|i| i as f64);
        b.fill_with(|i| i as f64 + 1e-9);
        // names differ but shape/type/content match approximately
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn size_bytes() {
        let b = Buffer::zeros("m", BasicType::F64, Shape::new(vec![10, 10]));
        assert_eq!(b.size_bytes(), 800);
    }
}
