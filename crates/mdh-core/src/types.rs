//! Scalar and record types of the MDH formalism.
//!
//! The paper's directive declares buffers with a *basic type* `BSC_TYP`
//! (Listing 14): either a primitive scalar such as `fp32`, or a record type
//! such as PRL's `db18 = { 'values': fp64[8] }` (Listing 11). This module
//! defines those types plus the dynamically-typed [`Value`] used by the
//! reference evaluator.

use std::fmt;
use std::sync::Arc;

/// Primitive scalar kinds supported by the directive (`fp32`, `fp64`,
/// `int32`, `int64`, `bool`, `char` in the paper's listings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    F32,
    F64,
    I32,
    I64,
    Bool,
    Char,
}

impl ScalarKind {
    /// Size of one element in bytes (used by footprint/cost analyses).
    pub fn size_bytes(self) -> usize {
        match self {
            ScalarKind::F32 | ScalarKind::I32 => 4,
            ScalarKind::F64 | ScalarKind::I64 => 8,
            ScalarKind::Bool | ScalarKind::Char => 1,
        }
    }

    /// Whether the kind is a floating-point kind.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarKind::F32 | ScalarKind::F64)
    }

    /// Whether the kind is an integral kind (including `char`/`bool`).
    pub fn is_integral(self) -> bool {
        !self.is_float()
    }

    /// The neutral "zero" value of this kind.
    pub fn zero(self) -> Value {
        match self {
            ScalarKind::F32 => Value::F32(0.0),
            ScalarKind::F64 => Value::F64(0.0),
            ScalarKind::I32 => Value::I32(0),
            ScalarKind::I64 => Value::I64(0),
            ScalarKind::Bool => Value::Bool(false),
            ScalarKind::Char => Value::Char(0),
        }
    }
}

impl fmt::Display for ScalarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarKind::F32 => "fp32",
            ScalarKind::F64 => "fp64",
            ScalarKind::I32 => "int32",
            ScalarKind::I64 => "int64",
            ScalarKind::Bool => "bool",
            ScalarKind::Char => "char",
        };
        f.write_str(s)
    }
}

/// Type of a record field: a plain scalar or a fixed-length array of scalars
/// (e.g. `fp64[8]` or `char[46]` in the PRL case study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    Scalar(ScalarKind),
    Array(ScalarKind, usize),
}

impl FieldType {
    pub fn kind(self) -> ScalarKind {
        match self {
            FieldType::Scalar(k) | FieldType::Array(k, _) => k,
        }
    }

    /// Number of primitive lanes in the field (1 for scalars).
    pub fn lanes(self) -> usize {
        match self {
            FieldType::Scalar(_) => 1,
            FieldType::Array(_, n) => n,
        }
    }

    pub fn size_bytes(self) -> usize {
        self.kind().size_bytes() * self.lanes()
    }
}

/// A flat (non-nested) record type, as used for PRL's probabilistic-record
/// buffers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecordType {
    pub name: String,
    pub fields: Vec<(String, FieldType)>,
}

impl RecordType {
    pub fn new(name: impl Into<String>, fields: Vec<(String, FieldType)>) -> Arc<Self> {
        Arc::new(RecordType {
            name: name.into(),
            fields,
        })
    }

    /// Index of a field by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }

    pub fn field_type(&self, name: &str) -> Option<FieldType> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
    }

    pub fn size_bytes(&self) -> usize {
        self.fields.iter().map(|(_, t)| t.size_bytes()).sum()
    }

    /// A zero-initialised record value.
    pub fn zero(&self) -> Value {
        Value::Record(
            self.fields
                .iter()
                .map(|(_, t)| match t {
                    FieldType::Scalar(k) => k.zero(),
                    FieldType::Array(k, n) => Value::Array(vec![k.zero(); *n]),
                })
                .collect(),
        )
    }
}

/// Basic type of a buffer element: a primitive scalar or a record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BasicType {
    Scalar(ScalarKind),
    Record(Arc<RecordType>),
}

impl BasicType {
    pub const F32: BasicType = BasicType::Scalar(ScalarKind::F32);
    pub const F64: BasicType = BasicType::Scalar(ScalarKind::F64);
    pub const I32: BasicType = BasicType::Scalar(ScalarKind::I32);
    pub const I64: BasicType = BasicType::Scalar(ScalarKind::I64);
    pub const BOOL: BasicType = BasicType::Scalar(ScalarKind::Bool);
    pub const CHAR: BasicType = BasicType::Scalar(ScalarKind::Char);

    pub fn size_bytes(&self) -> usize {
        match self {
            BasicType::Scalar(k) => k.size_bytes(),
            BasicType::Record(r) => r.size_bytes(),
        }
    }

    pub fn zero(&self) -> Value {
        match self {
            BasicType::Scalar(k) => k.zero(),
            BasicType::Record(r) => r.zero(),
        }
    }

    pub fn as_scalar(&self) -> Option<ScalarKind> {
        match self {
            BasicType::Scalar(k) => Some(*k),
            BasicType::Record(_) => None,
        }
    }
}

impl fmt::Display for BasicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicType::Scalar(k) => write!(f, "{k}"),
            BasicType::Record(r) => write!(f, "{}", r.name),
        }
    }
}

impl From<ScalarKind> for BasicType {
    fn from(k: ScalarKind) -> Self {
        BasicType::Scalar(k)
    }
}

/// A dynamically-typed value. The reference evaluator and the custom
/// combine-operator interpreter operate on `Value`s; the performance
/// backends compile to primitive register banks instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    F32(f32),
    F64(f64),
    I32(i32),
    I64(i64),
    Bool(bool),
    Char(u8),
    /// Record value: one entry per field, in declaration order.
    Record(Vec<Value>),
    /// Fixed-length array (record field of array type).
    Array(Vec<Value>),
}

impl Value {
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::F32(_) => "fp32",
            Value::F64(_) => "fp64",
            Value::I32(_) => "int32",
            Value::I64(_) => "int64",
            Value::Bool(_) => "bool",
            Value::Char(_) => "char",
            Value::Record(_) => "record",
            Value::Array(_) => "array",
        }
    }

    /// Numeric cast to f64 (records/arrays are not numeric).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self {
            Value::F32(v) => *v as f64,
            Value::F64(v) => *v,
            Value::I32(v) => *v as f64,
            Value::I64(v) => *v as f64,
            Value::Bool(v) => *v as i64 as f64,
            Value::Char(v) => *v as f64,
            _ => return None,
        })
    }

    /// Numeric cast to i64.
    pub fn as_i64(&self) -> Option<i64> {
        Some(match self {
            Value::F32(v) => *v as i64,
            Value::F64(v) => *v as i64,
            Value::I32(v) => *v as i64,
            Value::I64(v) => *v,
            Value::Bool(v) => *v as i64,
            Value::Char(v) => *v as i64,
            _ => return None,
        })
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::I32(v) => Some(*v != 0),
            Value::I64(v) => Some(*v != 0),
            _ => None,
        }
    }

    pub fn is_float(&self) -> bool {
        matches!(self, Value::F32(_) | Value::F64(_))
    }

    /// Convert a numeric f64 into a value of the given scalar kind.
    pub fn from_f64(kind: ScalarKind, v: f64) -> Value {
        match kind {
            ScalarKind::F32 => Value::F32(v as f32),
            ScalarKind::F64 => Value::F64(v),
            ScalarKind::I32 => Value::I32(v as i32),
            ScalarKind::I64 => Value::I64(v as i64),
            ScalarKind::Bool => Value::Bool(v != 0.0),
            ScalarKind::Char => Value::Char(v as u8),
        }
    }

    /// Convert a numeric i64 into a value of the given scalar kind.
    pub fn from_i64(kind: ScalarKind, v: i64) -> Value {
        match kind {
            ScalarKind::F32 => Value::F32(v as f32),
            ScalarKind::F64 => Value::F64(v as f64),
            ScalarKind::I32 => Value::I32(v as i32),
            ScalarKind::I64 => Value::I64(v),
            ScalarKind::Bool => Value::Bool(v != 0),
            ScalarKind::Char => Value::Char(v as u8),
        }
    }

    /// Cast this value to the given scalar kind (numeric values only).
    pub fn cast(&self, kind: ScalarKind) -> Option<Value> {
        if self.is_float() {
            self.as_f64().map(|v| Value::from_f64(kind, v))
        } else {
            self.as_i64().map(|v| Value::from_i64(kind, v))
        }
    }

    /// Approximate equality for testing: floats compared with a relative
    /// tolerance, everything else exactly; records/arrays element-wise.
    pub fn approx_eq(&self, other: &Value, rel_tol: f64) -> bool {
        match (self, other) {
            (Value::F32(a), Value::F32(b)) => approx(*a as f64, *b as f64, rel_tol),
            (Value::F64(a), Value::F64(b)) => approx(*a, *b, rel_tol),
            (Value::Record(a), Value::Record(b)) | (Value::Array(a), Value::Array(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(y, rel_tol))
            }
            (a, b) => a == b,
        }
    }
}

fn approx(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    // mixed absolute/relative comparison: absolute near zero, relative
    // for large magnitudes
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel_tol * scale
}

/// A tuple of values, one per output access of a scalar function. Combine
/// operators (e.g. PRL's `prl_max`) operate on whole tuples, which is how
/// the paper expresses reductions that jointly update several output
/// buffers (Listing 11).
pub type Tuple = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(ScalarKind::F32.size_bytes(), 4);
        assert_eq!(ScalarKind::F64.size_bytes(), 8);
        assert_eq!(ScalarKind::Char.size_bytes(), 1);
    }

    #[test]
    fn record_type_lookup() {
        let r = RecordType::new(
            "db18",
            vec![
                ("values".into(), FieldType::Array(ScalarKind::F64, 8)),
                ("id".into(), FieldType::Scalar(ScalarKind::I64)),
            ],
        );
        assert_eq!(r.field_index("id"), Some(1));
        assert_eq!(
            r.field_type("values"),
            Some(FieldType::Array(ScalarKind::F64, 8))
        );
        assert_eq!(r.size_bytes(), 8 * 8 + 8);
    }

    #[test]
    fn record_zero_shape() {
        let r = RecordType::new(
            "rec",
            vec![
                ("a".into(), FieldType::Scalar(ScalarKind::F32)),
                ("b".into(), FieldType::Array(ScalarKind::Char, 3)),
            ],
        );
        match r.zero() {
            Value::Record(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0], Value::F32(0.0));
                assert_eq!(fields[1], Value::Array(vec![Value::Char(0); 3]));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn value_casts() {
        assert_eq!(Value::F64(3.7).as_i64(), Some(3));
        assert_eq!(Value::I32(5).as_f64(), Some(5.0));
        assert_eq!(Value::I64(7).cast(ScalarKind::F32), Some(Value::F32(7.0)));
        assert_eq!(Value::Record(vec![]).as_f64(), None);
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(Value::F32(1.0).approx_eq(&Value::F32(1.0 + 1e-7), 1e-5));
        assert!(!Value::F32(1.0).approx_eq(&Value::F32(1.1), 1e-5));
        assert!(Value::F64(f64::NAN).approx_eq(&Value::F64(f64::NAN), 1e-5));
        assert!(
            Value::Record(vec![Value::I32(1)]).approx_eq(&Value::Record(vec![Value::I32(1)]), 0.0)
        );
    }

    #[test]
    fn display_types() {
        assert_eq!(BasicType::F32.to_string(), "fp32");
        let r = RecordType::new("db18", vec![]);
        assert_eq!(BasicType::Record(r).to_string(), "db18");
    }
}
