//! Index functions: mappings from iteration-space indices to buffer indices.
//!
//! In the MDH DSL these are the lambdas of `inp_view`/`out_view`
//! (e.g. `lambda i,k: (i,k)` for the matrix and `lambda i,k: (k)` for the
//! vector of MatVec, Listing 6). Almost all index functions occurring in
//! practice — including strided outputs `(i*s)` and stencil accesses
//! `(2*p)+r-1` — are *affine*, which enables the footprint and injectivity
//! analyses that the lowering and the GPU cost model rely on.

use crate::shape::MdRange;
use std::fmt;
use std::sync::Arc;

/// One affine coordinate expression `sum_d coeff[d] * i_d + constant`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// One coefficient per iteration-space dimension.
    pub coeffs: Vec<i64>,
    pub constant: i64,
}

impl AffineExpr {
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        AffineExpr { coeffs, constant }
    }

    /// The expression selecting iteration variable `d` (out of `rank`).
    pub fn var(rank: usize, d: usize) -> Self {
        let mut coeffs = vec![0; rank];
        coeffs[d] = 1;
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    /// A constant expression.
    pub fn constant(rank: usize, c: i64) -> Self {
        AffineExpr {
            coeffs: vec![0; rank],
            constant: c,
        }
    }

    /// Evaluate at an iteration point.
    pub fn eval(&self, idx: &[usize]) -> i64 {
        debug_assert_eq!(idx.len(), self.coeffs.len());
        let mut v = self.constant;
        for (c, &i) in self.coeffs.iter().zip(idx) {
            v += c * i as i64;
        }
        v
    }

    /// Whether the expression depends on iteration dimension `d`.
    pub fn depends_on(&self, d: usize) -> bool {
        self.coeffs.get(d).copied().unwrap_or(0) != 0
    }

    /// Inclusive (min, max) of the expression over a rectangular range.
    pub fn bounds_over(&self, range: &MdRange) -> (i64, i64) {
        let mut lo = self.constant;
        let mut hi = self.constant;
        for (d, &c) in self.coeffs.iter().enumerate() {
            if range.extent(d) == 0 {
                continue;
            }
            let a = c * range.lo[d] as i64;
            let b = c * (range.hi[d] as i64 - 1);
            lo += a.min(b);
            hi += a.max(b);
        }
        (lo, hi)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (d, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            if c == 1 {
                write!(f, "i{d}")?;
            } else {
                write!(f, "{c}*i{d}")?;
            }
            first = false;
        }
        if self.constant != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// A general (non-affine) index function, available as an escape hatch.
pub type GeneralIndexFn = Arc<dyn Fn(&[usize]) -> Vec<usize> + Send + Sync>;

/// Index function mapping an iteration point to a buffer multi-index.
#[derive(Clone)]
pub enum IndexFn {
    /// One affine expression per buffer dimension.
    Affine(Vec<AffineExpr>),
    /// Arbitrary mapping (excluded from static analyses).
    General {
        out_rank: usize,
        f: GeneralIndexFn,
        label: String,
    },
}

impl fmt::Debug for IndexFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexFn::Affine(exprs) => {
                let parts: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                write!(f, "({})", parts.join(", "))
            }
            IndexFn::General { label, .. } => write!(f, "general<{label}>"),
        }
    }
}

impl PartialEq for IndexFn {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (IndexFn::Affine(a), IndexFn::Affine(b)) => a == b,
            (IndexFn::General { label: a, .. }, IndexFn::General { label: b, .. }) => a == b,
            _ => false,
        }
    }
}

impl IndexFn {
    /// The identity access for the leading `out_rank` iteration dimensions
    /// (e.g. `(i,k) -> (i,k)`).
    pub fn identity(rank: usize, out_rank: usize) -> Self {
        IndexFn::Affine((0..out_rank).map(|d| AffineExpr::var(rank, d)).collect())
    }

    /// An access selecting a subset of iteration variables, e.g.
    /// `IndexFn::select(2, &[1])` is `(i,k) -> (k)`.
    pub fn select(rank: usize, dims: &[usize]) -> Self {
        IndexFn::Affine(dims.iter().map(|&d| AffineExpr::var(rank, d)).collect())
    }

    pub fn affine(exprs: Vec<AffineExpr>) -> Self {
        IndexFn::Affine(exprs)
    }

    /// Rank of the produced buffer index.
    pub fn out_rank(&self) -> usize {
        match self {
            IndexFn::Affine(exprs) => exprs.len(),
            IndexFn::General { out_rank, .. } => *out_rank,
        }
    }

    /// Evaluate the index function at an iteration point. Negative
    /// coordinates (possible with affine offsets at boundaries) are reported
    /// as `None`.
    pub fn eval(&self, idx: &[usize]) -> Option<Vec<usize>> {
        match self {
            IndexFn::Affine(exprs) => {
                let mut out = Vec::with_capacity(exprs.len());
                for e in exprs {
                    let v = e.eval(idx);
                    if v < 0 {
                        return None;
                    }
                    out.push(v as usize);
                }
                Some(out)
            }
            IndexFn::General { f, .. } => Some(f(idx)),
        }
    }

    pub fn as_affine(&self) -> Option<&[AffineExpr]> {
        match self {
            IndexFn::Affine(e) => Some(e),
            IndexFn::General { .. } => None,
        }
    }

    /// Whether any coordinate depends on iteration dimension `d`.
    /// General index functions conservatively report `true`.
    pub fn depends_on(&self, d: usize) -> bool {
        match self {
            IndexFn::Affine(exprs) => exprs.iter().any(|e| e.depends_on(d)),
            IndexFn::General { .. } => true,
        }
    }

    /// Minimal buffer shape (per dimension) needed to hold all accesses over
    /// the given iteration range — the "inferred buffer size" of footnote 7.
    pub fn inferred_extents(&self, range: &MdRange) -> Option<Vec<usize>> {
        match self {
            IndexFn::Affine(exprs) => Some(
                exprs
                    .iter()
                    .map(|e| {
                        let (_, hi) = e.bounds_over(range);
                        (hi.max(0) as usize) + 1
                    })
                    .collect(),
            ),
            IndexFn::General { .. } => None,
        }
    }

    /// Footprint of the access over a rectangular iteration sub-range: the
    /// per-buffer-dimension extents of the accessed region (used by the
    /// tiling/locality cost analyses).
    pub fn footprint(&self, range: &MdRange) -> Option<Vec<usize>> {
        match self {
            IndexFn::Affine(exprs) => Some(
                exprs
                    .iter()
                    .map(|e| {
                        let (lo, hi) = e.bounds_over(range);
                        (hi - lo + 1).max(0) as usize
                    })
                    .collect(),
            ),
            IndexFn::General { .. } => None,
        }
    }

    /// Exhaustive injectivity check over an iteration range (used to fill
    /// Fig. 3's "Data Acc." column and by legality checks on output views).
    /// Only feasible for modest range sizes; returns `None` for general
    /// index functions over ranges that are too large to enumerate.
    pub fn is_injective_over(&self, range: &MdRange, limit: usize) -> Option<bool> {
        if range.len() > limit {
            // Fast negative for affine maps: if some iteration dimension
            // with extent > 1 influences no output coordinate, distinct
            // points along it collide — the map is many-to-one.
            if let IndexFn::Affine(exprs) = self {
                let rank = exprs.first().map(|e| e.coeffs.len()).unwrap_or(0);
                for d in 0..rank {
                    if range.extent(d) > 1 && !exprs.iter().any(|e| e.depends_on(d)) {
                        return Some(false);
                    }
                }
            }
            // Fast positive for affine maps: injective if the coefficient
            // matrix maps distinct unit steps to distinct, non-overlapping
            // strides.
            if let IndexFn::Affine(exprs) = self {
                // A sufficient condition: every iteration dim appears with a
                // nonzero coefficient in exactly one output coordinate and
                // each output coordinate is a single-variable expression
                // with |coeff| >= 1 and distinct dims.
                let rank = exprs.first().map(|e| e.coeffs.len()).unwrap_or(0);
                let mut used = vec![false; rank];
                let mut simple = true;
                for e in exprs {
                    let nz: Vec<usize> = (0..rank).filter(|&d| e.coeffs[d] != 0).collect();
                    match nz.len() {
                        0 => {}
                        1 => {
                            if used[nz[0]] {
                                simple = false;
                                break;
                            }
                            used[nz[0]] = true;
                        }
                        _ => {
                            simple = false;
                            break;
                        }
                    }
                }
                if simple && (0..rank).all(|d| used[d] || range.extent(d) <= 1) {
                    return Some(true);
                }
            }
            return None;
        }
        let mut seen = std::collections::HashSet::new();
        for idx in range.iter() {
            let out = self.eval(&idx)?;
            if !seen.insert(out) {
                return Some(false);
            }
        }
        Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_eval() {
        // (i,k) -> (2*i + k + 1)
        let e = AffineExpr::new(vec![2, 1], 1);
        assert_eq!(e.eval(&[3, 4]), 11);
        assert!(e.depends_on(0));
        assert!(e.depends_on(1));
    }

    #[test]
    fn identity_and_select() {
        let id = IndexFn::identity(2, 2);
        assert_eq!(id.eval(&[5, 7]), Some(vec![5, 7]));
        let sel = IndexFn::select(2, &[1]);
        assert_eq!(sel.eval(&[5, 7]), Some(vec![7]));
        assert!(!sel.depends_on(0));
        assert!(sel.depends_on(1));
    }

    #[test]
    fn bounds_and_footprint() {
        // stencil access (2*p) + r over p in [0,4), r in [0,3)
        let e = AffineExpr::new(vec![2, 1], 0);
        let range = MdRange::full(&[4, 3]);
        assert_eq!(e.bounds_over(&range), (0, 8));
        let f = IndexFn::affine(vec![e]);
        assert_eq!(f.footprint(&range), Some(vec![9]));
        assert_eq!(f.inferred_extents(&range), Some(vec![9]));
    }

    #[test]
    fn negative_index_rejected() {
        let e = AffineExpr::new(vec![1], -1);
        let f = IndexFn::affine(vec![e]);
        assert_eq!(f.eval(&[0]), None);
        assert_eq!(f.eval(&[3]), Some(vec![2]));
    }

    #[test]
    fn injectivity_exhaustive() {
        let range = MdRange::full(&[4, 4]);
        let inj = IndexFn::identity(2, 2);
        assert_eq!(inj.is_injective_over(&range, 1000), Some(true));
        let non_inj = IndexFn::select(2, &[1]); // (i,k)->(k)
        assert_eq!(non_inj.is_injective_over(&range, 1000), Some(false));
    }

    #[test]
    fn injectivity_fast_path() {
        let range = MdRange::full(&[1 << 12, 1 << 12]);
        let inj = IndexFn::identity(2, 2);
        // too big to enumerate with the tiny limit, but structurally simple
        assert_eq!(inj.is_injective_over(&range, 10), Some(true));
        // strided output (i*4, k) is simple-injective too
        let strided = IndexFn::affine(vec![
            AffineExpr::new(vec![4, 0], 0),
            AffineExpr::new(vec![0, 1], 0),
        ]);
        assert_eq!(strided.is_injective_over(&range, 10), Some(true));
    }

    #[test]
    fn general_index_fn() {
        let g = IndexFn::General {
            out_rank: 1,
            f: Arc::new(|idx: &[usize]| vec![idx[0] * idx[0]]),
            label: "square".into(),
        };
        assert_eq!(g.eval(&[3]), Some(vec![9]));
        assert_eq!(g.footprint(&MdRange::full(&[4])), None);
        assert_eq!(g.is_injective_over(&MdRange::full(&[4]), 100), Some(true));
    }

    #[test]
    fn display_affine() {
        let e = AffineExpr::new(vec![2, 1], 1);
        assert_eq!(e.to_string(), "2*i0 + i1 + 1");
        assert_eq!(AffineExpr::constant(2, 0).to_string(), "0");
    }
}
