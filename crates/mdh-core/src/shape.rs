//! Multi-dimensional shapes, row-major strides, and iteration ranges.

use std::fmt;

/// Shape of a multi-dimensional buffer or iteration space (row-major).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    pub fn rank(&self) -> usize {
        self.0.len()
    }

    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides (innermost dimension has stride 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.rank()];
        for d in (0..self.rank().saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.0[d + 1];
        }
        s
    }

    /// Linearize a multi-index (must be in bounds).
    pub fn linearize(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank());
        let mut flat = 0;
        for (d, &i) in idx.iter().enumerate() {
            debug_assert!(
                i < self.0[d],
                "index {i} out of bounds for dim {d} of size {}",
                self.0[d]
            );
            flat = flat * self.0[d] + i;
        }
        flat
    }

    /// Inverse of [`Shape::linearize`].
    pub fn delinearize(&self, mut flat: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.rank()];
        for d in (0..self.rank()).rev() {
            idx[d] = flat % self.0[d];
            flat /= self.0[d];
        }
        idx
    }

    /// Whether a multi-index lies within the shape.
    pub fn contains(&self, idx: &[usize]) -> bool {
        idx.len() == self.rank() && idx.iter().zip(&self.0).all(|(&i, &n)| i < n)
    }

    /// Iterate all multi-indices in row-major order.
    pub fn iter(&self) -> MultiIndexIter {
        MultiIndexIter::new(self.0.iter().map(|&n| 0..n).collect())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

/// A rectangular sub-range of a multi-dimensional iteration space:
/// per-dimension half-open intervals `[lo, hi)`. Sub-ranges are the unit of
/// (de)composition in the MDH lowering: tiles, thread chunks, and the `P`/`Q`
/// operands of combine operators are all `Range`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MdRange {
    pub lo: Vec<usize>,
    pub hi: Vec<usize>,
}

impl MdRange {
    pub fn new(lo: Vec<usize>, hi: Vec<usize>) -> Self {
        assert_eq!(lo.len(), hi.len());
        debug_assert!(lo.iter().zip(&hi).all(|(l, h)| l <= h));
        MdRange { lo, hi }
    }

    /// The full range of an iteration space with the given sizes.
    pub fn full(sizes: &[usize]) -> Self {
        MdRange {
            lo: vec![0; sizes.len()],
            hi: sizes.to_vec(),
        }
    }

    pub fn rank(&self) -> usize {
        self.lo.len()
    }

    /// Extent per dimension.
    pub fn extents(&self) -> Vec<usize> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).collect()
    }

    pub fn extent(&self, d: usize) -> usize {
        self.hi[d] - self.lo[d]
    }

    /// Number of points in the range.
    pub fn len(&self) -> usize {
        self.extents().iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split this range along dimension `d` at absolute coordinate `at`
    /// (must satisfy `lo[d] <= at <= hi[d]`), yielding the `P` (lower) and
    /// `Q` (upper) parts of the MDH decomposition.
    pub fn split_at(&self, d: usize, at: usize) -> (MdRange, MdRange) {
        assert!(
            self.lo[d] <= at && at <= self.hi[d],
            "split point out of range"
        );
        let mut p = self.clone();
        let mut q = self.clone();
        p.hi[d] = at;
        q.lo[d] = at;
        (p, q)
    }

    /// Partition dimension `d` into chunks of at most `tile` points.
    pub fn tile_dim(&self, d: usize, tile: usize) -> Vec<MdRange> {
        assert!(tile > 0);
        let mut out = Vec::new();
        let mut lo = self.lo[d];
        while lo < self.hi[d] {
            let hi = (lo + tile).min(self.hi[d]);
            let mut r = self.clone();
            r.lo[d] = lo;
            r.hi[d] = hi;
            out.push(r);
            lo = hi;
        }
        if out.is_empty() {
            out.push(self.clone());
        }
        out
    }

    /// Iterate all multi-indices in the range (row-major).
    pub fn iter(&self) -> MultiIndexIter {
        MultiIndexIter::new(self.lo.iter().zip(&self.hi).map(|(&l, &h)| l..h).collect())
    }

    pub fn contains(&self, idx: &[usize]) -> bool {
        idx.len() == self.rank()
            && idx
                .iter()
                .enumerate()
                .all(|(d, &i)| self.lo[d] <= i && i < self.hi[d])
    }
}

impl fmt::Display for MdRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| format!("[{l},{h})"))
            .collect();
        write!(f, "{}", parts.join("x"))
    }
}

/// Row-major iterator over a product of `usize` ranges.
pub struct MultiIndexIter {
    ranges: Vec<std::ops::Range<usize>>,
    current: Option<Vec<usize>>,
}

impl MultiIndexIter {
    fn new(ranges: Vec<std::ops::Range<usize>>) -> Self {
        let current = if ranges.iter().all(|r| !r.is_empty()) {
            Some(ranges.iter().map(|r| r.start).collect())
        } else {
            None
        };
        MultiIndexIter { ranges, current }
    }
}

impl Iterator for MultiIndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.current.clone()?;
        // advance
        let next = {
            let mut n = cur.clone();
            let mut d = n.len();
            loop {
                if d == 0 {
                    break None;
                }
                d -= 1;
                n[d] += 1;
                if n[d] < self.ranges[d].end {
                    break Some(n);
                }
                n[d] = self.ranges[d].start;
            }
        };
        self.current = next;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_roundtrip() {
        let s = Shape::new(vec![3, 4, 5]);
        for flat in 0..s.len() {
            let idx = s.delinearize(flat);
            assert_eq!(s.linearize(&idx), flat);
        }
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.linearize(&[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    fn iter_covers_all_points_in_order() {
        let s = Shape::new(vec![2, 3]);
        let pts: Vec<Vec<usize>> = s.iter().collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn empty_shape_iter() {
        let s = Shape::new(vec![2, 0, 3]);
        assert_eq!(s.iter().count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(Vec::<usize>::new());
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn range_split() {
        let r = MdRange::full(&[4, 6]);
        let (p, q) = r.split_at(1, 2);
        assert_eq!(p.extents(), vec![4, 2]);
        assert_eq!(q.extents(), vec![4, 4]);
        assert_eq!(p.len() + q.len(), r.len());
    }

    #[test]
    fn range_tiling_covers_with_remainder() {
        let r = MdRange::full(&[10]);
        let tiles = r.tile_dim(0, 4);
        assert_eq!(tiles.len(), 3);
        assert_eq!(tiles.iter().map(|t| t.len()).sum::<usize>(), 10);
        assert_eq!(tiles[2].extent(0), 2);
    }

    #[test]
    fn range_iter_matches_contains() {
        let r = MdRange::new(vec![1, 2], vec![3, 5]);
        let pts: Vec<_> = r.iter().collect();
        assert_eq!(pts.len(), r.len());
        for p in &pts {
            assert!(r.contains(p));
        }
        assert!(!r.contains(&[0, 2]));
        assert!(!r.contains(&[1, 5]));
    }
}
