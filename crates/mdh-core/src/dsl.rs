//! The MDH DSL: high-level program representation.
//!
//! A [`DslProgram`] is the Rust analogue of Listing 7:
//!
//! ```text
//! out_view[BSC_TYP,...]( IDF = [IDX_FNC,...], ... ),
//! md_hom[SIZE,...]( SF, (CO,...,CO) ),
//! inp_view[BSC_TYP,...]( IDF = [IDX_FNC,...], ... )
//! ```
//!
//! The directive front end (`mdh-directive`) *produces* these programs; the
//! lowering (`mdh-lowering`) and the backends (`mdh-backend`) consume them.

use crate::combine::{CombineOp, DimBehavior};
use crate::error::{MdhError, Result};
use crate::expr::ScalarFunction;
use crate::index_fn::IndexFn;
use crate::shape::MdRange;
use crate::types::BasicType;
use crate::views::{Access, BufferDecl, View};
use std::sync::Arc;

/// The `md_hom` higher-order function: iteration-space sizes, the scalar
/// function, and one combine operator per dimension.
#[derive(Debug, Clone)]
pub struct MdHom {
    pub sizes: Vec<usize>,
    pub sf: Arc<ScalarFunction>,
    pub combine_ops: Vec<CombineOp>,
}

impl MdHom {
    pub fn new(sizes: Vec<usize>, sf: ScalarFunction, combine_ops: Vec<CombineOp>) -> Self {
        MdHom {
            sizes,
            sf: Arc::new(sf),
            combine_ops,
        }
    }

    /// Dimensionality `D` of the iteration space.
    pub fn rank(&self) -> usize {
        self.sizes.len()
    }

    /// Indices of reduction dimensions (`pw` or `ps`).
    pub fn reduction_dims(&self) -> Vec<usize> {
        self.combine_ops
            .iter()
            .enumerate()
            .filter(|(_, co)| co.is_reduction())
            .map(|(d, _)| d)
            .collect()
    }

    /// Indices of concatenation (`cc`) dimensions.
    pub fn cc_dims(&self) -> Vec<usize> {
        self.combine_ops
            .iter()
            .enumerate()
            .filter(|(_, co)| !co.is_reduction())
            .map(|(d, _)| d)
            .collect()
    }

    /// Indices of dimensions that survive into the output (cc and ps).
    pub fn preserved_dims(&self) -> Vec<usize> {
        self.combine_ops
            .iter()
            .enumerate()
            .filter(|(_, co)| co.behavior() == DimBehavior::Preserve)
            .map(|(d, _)| d)
            .collect()
    }

    /// Indices of collapsed (pw) dimensions.
    pub fn collapsed_dims(&self) -> Vec<usize> {
        self.combine_ops
            .iter()
            .enumerate()
            .filter(|(_, co)| co.behavior() == DimBehavior::Collapse)
            .map(|(d, _)| d)
            .collect()
    }

    /// Indices of indexed-reduction (`rbi`) dimensions.
    pub fn rbi_dims(&self) -> Vec<usize> {
        self.combine_ops
            .iter()
            .enumerate()
            .filter(|(_, co)| co.is_indexed_reduction())
            .map(|(d, _)| d)
            .collect()
    }

    /// Whether any dimension is an indexed reduction (`rbi`).
    pub fn has_rbi(&self) -> bool {
        self.combine_ops.iter().any(|co| co.is_indexed_reduction())
    }

    /// The full iteration range.
    pub fn full_range(&self) -> MdRange {
        MdRange::full(&self.sizes)
    }

    /// Total number of iteration points.
    pub fn points(&self) -> usize {
        self.sizes.iter().product()
    }
}

/// A complete MDH DSL program (Listing 7).
#[derive(Debug, Clone)]
pub struct DslProgram {
    pub name: String,
    pub out_view: View,
    pub md_hom: MdHom,
    pub inp_view: View,
}

impl DslProgram {
    pub fn new(name: impl Into<String>, out_view: View, md_hom: MdHom, inp_view: View) -> Self {
        DslProgram {
            name: name.into(),
            out_view,
            md_hom,
            inp_view,
        }
    }

    pub fn rank(&self) -> usize {
        self.md_hom.rank()
    }

    /// Validate all structural invariants of the program.
    pub fn validate(&self) -> Result<()> {
        let d = self.md_hom.rank();
        if self.md_hom.combine_ops.len() != d {
            return Err(MdhError::Validation(format!(
                "program '{}': {} combine operators for {d} dimensions",
                self.name,
                self.md_hom.combine_ops.len()
            )));
        }
        if self.md_hom.sf.params.len() != self.inp_view.accesses.len() {
            return Err(MdhError::Validation(format!(
                "program '{}': scalar function takes {} params but inp_view has {} accesses",
                self.name,
                self.md_hom.sf.params.len(),
                self.inp_view.accesses.len()
            )));
        }
        if self.md_hom.sf.results.len() != self.out_view.accesses.len() {
            return Err(MdhError::Validation(format!(
                "program '{}': scalar function returns {} results but out_view has {} accesses",
                self.name,
                self.md_hom.sf.results.len(),
                self.out_view.accesses.len()
            )));
        }
        self.md_hom.sf.validate()?;
        // the iteration-space volume must be representable: absurd sizes
        // (e.g. an i64::MAX loop bound fed through a front end) must be a
        // graceful error here, not an arithmetic overflow in points() or
        // a doomed allocation later
        if self
            .md_hom
            .sizes
            .iter()
            .try_fold(1usize, |acc, &s| acc.checked_mul(s))
            .is_none()
        {
            return Err(MdhError::Validation(format!(
                "program '{}': iteration-space volume overflows ({:?})",
                self.name, self.md_hom.sizes
            )));
        }
        // access buffer indices in range
        for a in &self.inp_view.accesses {
            if a.buffer >= self.inp_view.buffers.len() {
                return Err(MdhError::Validation(format!(
                    "program '{}': input access refers to buffer #{} of {}",
                    self.name,
                    a.buffer,
                    self.inp_view.buffers.len()
                )));
            }
        }
        for a in &self.out_view.accesses {
            if a.buffer >= self.out_view.buffers.len() {
                return Err(MdhError::Validation(format!(
                    "program '{}': output access refers to buffer #{} of {}",
                    self.name,
                    a.buffer,
                    self.out_view.buffers.len()
                )));
            }
        }
        // every output buffer must be written by at least one access
        for (b, decl) in self.out_view.buffers.iter().enumerate() {
            if self.out_view.accesses_of(b).next().is_none() {
                return Err(MdhError::Validation(format!(
                    "program '{}': output buffer '{}' is never written",
                    self.name, decl.name
                )));
            }
        }
        // output index functions must not depend on pw-collapsed dimensions
        // — a pw-reduced dimension has no coordinate in the output. An rbi
        // dimension is the exception: its whole point is that the output
        // access scatters along it.
        for (ai, a) in self.out_view.accesses.iter().enumerate() {
            for dim in self.md_hom.collapsed_dims() {
                if self.md_hom.combine_ops[dim].is_indexed_reduction() {
                    continue;
                }
                if a.index_fn.depends_on(dim) {
                    return Err(MdhError::Validation(format!(
                        "program '{}': output access #{ai} depends on dimension {dim}, \
                         which is collapsed by {}",
                        self.name, self.md_hom.combine_ops[dim]
                    )));
                }
            }
        }
        // rbi programs: the scatter evaluator folds every colliding
        // contribution with one `add`, so every reduction dimension must be
        // a builtin add (no pw(max)/ps mixtures whose elementwise meaning
        // would be ambiguous), and output shapes cannot be inferred from a
        // data-dependent scatter access — they must be declared
        if self.md_hom.has_rbi() {
            for (dim, co) in self.md_hom.combine_ops.iter().enumerate() {
                if !co.is_reduction() {
                    continue;
                }
                if matches!(co, CombineOp::Ps(_)) {
                    return Err(MdhError::Validation(format!(
                        "program '{}': dim {dim} is {co}, but ps dimensions cannot \
                         be mixed with rbi",
                        self.name
                    )));
                }
                let is_add = co
                    .pw_func()
                    .and_then(|f| f.as_builtin())
                    .map(|b| b == crate::combine::BuiltinReduce::Add)
                    .unwrap_or(false);
                if !is_add {
                    return Err(MdhError::Validation(format!(
                        "program '{}': dim {dim} combines with {co}, but every \
                         reduction dimension of an rbi program must be a builtin add",
                        self.name
                    )));
                }
            }
            for decl in &self.out_view.buffers {
                if decl.declared_shape.is_none() {
                    return Err(MdhError::Validation(format!(
                        "program '{}': output buffer '{}' of an rbi program needs a \
                         declared shape (scatter targets are data-dependent)",
                        self.name, decl.name
                    )));
                }
            }
        }
        // custom combine functions must match the output tuple width
        let width = self.out_view.accesses.len();
        for (dim, co) in self.md_hom.combine_ops.iter().enumerate() {
            if let Some(f) = co.pw_func() {
                if let Some(w) = f.tuple_width() {
                    if w != width {
                        return Err(MdhError::Validation(format!(
                            "program '{}': combine operator {} on dim {dim} combines \
                             {w}-tuples but the program has {width} output accesses",
                            self.name, co
                        )));
                    }
                }
            }
        }
        // param/result types line up with buffer element types
        for (p, a) in self.inp_view.accesses.iter().enumerate() {
            let pty = &self.md_hom.sf.params[p].1;
            let bty = &self.inp_view.buffers[a.buffer].ty;
            if pty != bty {
                return Err(MdhError::Validation(format!(
                    "program '{}': param {p} has type {pty} but reads buffer '{}' of type {bty}",
                    self.name, self.inp_view.buffers[a.buffer].name
                )));
            }
        }
        for (r, a) in self.out_view.accesses.iter().enumerate() {
            let rty = &self.md_hom.sf.results[r].1;
            let bty = &self.out_view.buffers[a.buffer].ty;
            if rty != bty {
                return Err(MdhError::Validation(format!(
                    "program '{}': result {r} has type {rty} but writes buffer '{}' of type {bty}",
                    self.name, self.out_view.buffers[a.buffer].name
                )));
            }
        }
        Ok(())
    }

    /// Shapes of the output buffers (declared or inferred over the full
    /// iteration range).
    pub fn output_shapes(&self) -> Result<Vec<Vec<usize>>> {
        let range = self.md_hom.full_range();
        (0..self.out_view.buffers.len())
            .map(|b| {
                self.out_view.effective_shape(b, &range).ok_or_else(|| {
                    MdhError::Validation(format!(
                        "cannot infer shape of output buffer '{}'",
                        self.out_view.buffers[b].name
                    ))
                })
            })
            .collect()
    }

    /// Shapes of the input buffers (declared or inferred).
    pub fn input_shapes(&self) -> Result<Vec<Vec<usize>>> {
        let range = self.md_hom.full_range();
        (0..self.inp_view.buffers.len())
            .map(|b| {
                self.inp_view.effective_shape(b, &range).ok_or_else(|| {
                    MdhError::Validation(format!(
                        "cannot infer shape of input buffer '{}'",
                        self.inp_view.buffers[b].name
                    ))
                })
            })
            .collect()
    }

    /// Summary statistics used by Fig. 3 and by the cost models.
    pub fn stats(&self) -> ProgramStats {
        let range = self.md_hom.full_range();
        let limit = 1 << 16;
        let mut injective = Some(true);
        // a buffer read through several index functions (a stencil) is
        // accessed non-injectively even if each individual access is
        // injective — this matches Fig. 3's classification
        for b in 0..self.inp_view.buffers.len() {
            if self.inp_view.accesses_of(b).count() > 1 {
                injective = Some(false);
            }
        }
        if injective == Some(true) {
            // Fig. 3 classifies *input* data accesses
            for a in self.inp_view.accesses.iter() {
                match a.index_fn.is_injective_over(&range, limit) {
                    Some(true) => {}
                    Some(false) => {
                        injective = Some(false);
                        break;
                    }
                    None => injective = None,
                }
            }
        }
        let bytes_in: usize = (0..self.inp_view.buffers.len())
            .filter_map(|b| self.inp_view.footprint_bytes(b, &range))
            .sum();
        let bytes_out: usize = (0..self.out_view.buffers.len())
            .filter_map(|b| self.out_view.footprint_bytes(b, &range))
            .sum();
        ProgramStats {
            rank: self.md_hom.rank(),
            reduction_dims: self.md_hom.reduction_dims().len(),
            points: self.md_hom.points(),
            flops: self.md_hom.points() * self.md_hom.sf.flops_estimate(),
            injective_accesses: injective,
            bytes_in,
            bytes_out,
            n_inputs: self.inp_view.buffers.len(),
            n_outputs: self.out_view.buffers.len(),
        }
    }
}

/// Static characteristics of a DSL program (Fig. 3's left columns).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramStats {
    pub rank: usize,
    pub reduction_dims: usize,
    pub points: usize,
    pub flops: usize,
    /// `Some(true)` if all accesses are injective, `Some(false)` if any is
    /// provably non-injective, `None` if undecidable within budget.
    pub injective_accesses: Option<bool>,
    pub bytes_in: usize,
    pub bytes_out: usize,
    pub n_inputs: usize,
    pub n_outputs: usize,
}

/// Fluent builder mirroring the DSL surface of Listing 7.
///
/// ```
/// use mdh_core::prelude::*;
///
/// // MatVec (Listing 6): w[i] = sum_k M[i,k] * v[k]
/// let (i, k) = (4, 5);
/// let prog = DslBuilder::new("matvec", vec![i, k])
///     .out_buffer("w", BasicType::F32)
///     .out_access("w", IndexFn::select(2, &[0]))
///     .inp_buffer("M", BasicType::F32)
///     .inp_access("M", IndexFn::identity(2, 2))
///     .inp_buffer("v", BasicType::F32)
///     .inp_access("v", IndexFn::select(2, &[1]))
///     .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
///     .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
///     .build()
///     .unwrap();
/// assert_eq!(prog.md_hom.reduction_dims(), vec![1]);
/// ```
pub struct DslBuilder {
    name: String,
    sizes: Vec<usize>,
    out_view: View,
    inp_view: View,
    sf: Option<ScalarFunction>,
    combine_ops: Vec<CombineOp>,
}

impl DslBuilder {
    pub fn new(name: impl Into<String>, sizes: Vec<usize>) -> Self {
        DslBuilder {
            name: name.into(),
            sizes,
            out_view: View::empty(),
            inp_view: View::empty(),
            sf: None,
            combine_ops: Vec::new(),
        }
    }

    pub fn out_buffer(mut self, name: &str, ty: BasicType) -> Self {
        self.out_view.buffers.push(BufferDecl::new(name, ty));
        self
    }

    pub fn out_buffer_with_shape(mut self, name: &str, ty: BasicType, shape: Vec<usize>) -> Self {
        self.out_view
            .buffers
            .push(BufferDecl::with_shape(name, ty, shape));
        self
    }

    pub fn out_access(mut self, buffer: &str, f: IndexFn) -> Self {
        let b = self
            .out_view
            .buffer_index(buffer)
            .unwrap_or_else(|| panic!("unknown output buffer '{buffer}'"));
        self.out_view.accesses.push(Access::new(b, f));
        self
    }

    pub fn inp_buffer(mut self, name: &str, ty: BasicType) -> Self {
        self.inp_view.buffers.push(BufferDecl::new(name, ty));
        self
    }

    pub fn inp_buffer_with_shape(mut self, name: &str, ty: BasicType, shape: Vec<usize>) -> Self {
        self.inp_view
            .buffers
            .push(BufferDecl::with_shape(name, ty, shape));
        self
    }

    pub fn inp_access(mut self, buffer: &str, f: IndexFn) -> Self {
        let b = self
            .inp_view
            .buffer_index(buffer)
            .unwrap_or_else(|| panic!("unknown input buffer '{buffer}'"));
        self.inp_view.accesses.push(Access::new(b, f));
        self
    }

    pub fn scalar_function(mut self, sf: ScalarFunction) -> Self {
        self.sf = Some(sf);
        self
    }

    pub fn combine_ops(mut self, ops: Vec<CombineOp>) -> Self {
        self.combine_ops = ops;
        self
    }

    pub fn build(self) -> Result<DslProgram> {
        let sf = self
            .sf
            .ok_or_else(|| MdhError::Validation("no scalar function set".into()))?;
        let prog = DslProgram::new(
            self.name,
            self.out_view,
            MdHom::new(self.sizes, sf, self.combine_ops),
            self.inp_view,
        );
        prog.validate()?;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ScalarKind;

    fn matvec(i: usize, k: usize) -> DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    #[test]
    fn matvec_builds_and_validates() {
        let p = matvec(4, 5);
        assert_eq!(p.rank(), 2);
        assert_eq!(p.md_hom.reduction_dims(), vec![1]);
        assert_eq!(p.md_hom.preserved_dims(), vec![0]);
        assert_eq!(p.output_shapes().unwrap(), vec![vec![4]]);
        assert_eq!(p.input_shapes().unwrap(), vec![vec![4, 5], vec![5]]);
    }

    #[test]
    fn stats_matvec() {
        let p = matvec(4, 5);
        let s = p.stats();
        assert_eq!(s.rank, 2);
        assert_eq!(s.reduction_dims, 1);
        assert_eq!(s.points, 20);
        assert_eq!(s.flops, 20);
        assert_eq!(s.injective_accesses, Some(false)); // v access is non-injective
        assert_eq!(s.n_inputs, 2);
        assert_eq!(s.n_outputs, 1);
    }

    #[test]
    fn rejects_output_depending_on_collapsed_dim() {
        let r = DslBuilder::new("bad", vec![4, 5])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[1])) // depends on reduced k!
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn rejects_wrong_combine_op_count() {
        let r = DslBuilder::new("bad", vec![4, 5])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc()])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn rejects_param_type_mismatch() {
        let r = DslBuilder::new("bad", vec![4, 5])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F64) // f64 buffer, f32 param
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let r = DslBuilder::new("bad", vec![4, 5])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            // only one access, but mul2 takes two params
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn rejects_unwritten_output() {
        let r = DslBuilder::new("bad", vec![4])
            .out_buffer("w", BasicType::F32)
            .out_buffer("z", BasicType::F32) // never accessed
            .out_access("w", IndexFn::identity(1, 1))
            .inp_buffer("x", BasicType::F32)
            .inp_access("x", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc()])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn mcc_declared_shape() {
        // enlarged img buffer as in Listing 12 (tiny sizes)
        let (n, p, q, k, r, s, c) = (1, 2, 2, 2, 3, 3, 2);
        let rank = 7;
        use crate::index_fn::AffineExpr;
        let img_access = IndexFn::affine(vec![
            AffineExpr::var(rank, 0),
            AffineExpr::new(vec![0, 2, 0, 0, 1, 0, 0], 0), // 2p + r
            AffineExpr::new(vec![0, 0, 2, 0, 0, 1, 0], 0), // 2q + s
            AffineExpr::var(rank, 6),
        ]);
        let prog = DslBuilder::new("mcc", vec![n, p, q, k, r, s, c])
            .out_buffer("res", BasicType::F32)
            .out_access("res", IndexFn::select(rank, &[0, 1, 2, 3]))
            .inp_buffer_with_shape(
                "img",
                BasicType::F32,
                vec![n, 2 * p + r - 1, 2 * q + s - 1, c],
            )
            .inp_access("img", img_access)
            .inp_buffer("flt", BasicType::F32)
            .inp_access("flt", IndexFn::select(rank, &[3, 4, 5, 6]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![
                CombineOp::cc(),
                CombineOp::cc(),
                CombineOp::cc(),
                CombineOp::cc(),
                CombineOp::pw_add(),
                CombineOp::pw_add(),
                CombineOp::pw_add(),
            ])
            .build()
            .unwrap();
        assert_eq!(
            prog.input_shapes().unwrap()[0],
            vec![1, 2 * 2 + 3 - 1, 2 * 2 + 3 - 1, 2]
        );
        assert_eq!(prog.md_hom.reduction_dims(), vec![4, 5, 6]);
    }
}
