//! Homomorphism laws.
//!
//! The MDH formalism rests on the defining property of multi-dimensional
//! homomorphisms: evaluating a program on a concatenation of index-set
//! parts equals combining the parts' evaluations with the dimension's
//! combine operator,
//!
//! ```text
//! h( P ++_d Q ) = h(P)  ⊗_d  h(Q)
//! ```
//!
//! This property is exactly what makes the lowering's (de)composition —
//! tiling, thread partitioning, parallel reduction trees — *correct*. The
//! checks in this module are the hooks for the property-based test suite
//! and are also run by backends in debug builds.

use crate::buffer::Buffer;
use crate::dsl::DslProgram;
use crate::error::Result;
use crate::eval::{eval_range, Intermediate};

/// Check the homomorphism law on dimension `d` at split point `at`
/// (absolute coordinate within `[0, sizes[d]]`): evaluates both sides and
/// compares with relative tolerance `rel_tol`.
pub fn check_split_law(
    prog: &DslProgram,
    inputs: &[Buffer],
    d: usize,
    at: usize,
    rel_tol: f64,
) -> Result<bool> {
    let full = prog.md_hom.full_range();
    let (p, q) = full.split_at(d, at);
    let whole = eval_range(prog, inputs, &full)?;
    let lhs = eval_range(prog, inputs, &p)?;
    let rhs = eval_range(prog, inputs, &q)?;
    let combined = if p.is_empty() {
        rhs
    } else if q.is_empty() {
        lhs
    } else {
        Intermediate::combine_along(d, &prog.md_hom.combine_ops[d], &lhs, &rhs)?
    };
    Ok(intermediate_approx_eq(&whole, &combined, rel_tol))
}

/// Check the law on every dimension at its midpoint.
pub fn check_all_dims_midpoint(prog: &DslProgram, inputs: &[Buffer], rel_tol: f64) -> Result<bool> {
    for d in 0..prog.rank() {
        let at = prog.md_hom.sizes[d] / 2;
        if !check_split_law(prog, inputs, d, at, rel_tol)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Check a full recursive decomposition: recursively split dimension `d`
/// into tiles of size `tile` and recombine — the exact shape of the
/// lowering's tiling — then compare to the direct evaluation.
pub fn check_tiled_decomposition(
    prog: &DslProgram,
    inputs: &[Buffer],
    d: usize,
    tile: usize,
    rel_tol: f64,
) -> Result<bool> {
    let full = prog.md_hom.full_range();
    let whole = eval_range(prog, inputs, &full)?;
    let tiles = full.tile_dim(d, tile);
    let mut acc: Option<Intermediate> = None;
    for t in &tiles {
        if t.is_empty() {
            continue;
        }
        let part = eval_range(prog, inputs, t)?;
        acc = Some(match acc {
            None => part,
            Some(prev) => {
                Intermediate::combine_along(d, &prog.md_hom.combine_ops[d], &prev, &part)?
            }
        });
    }
    let combined = acc.unwrap_or(whole.clone());
    Ok(intermediate_approx_eq(&whole, &combined, rel_tol))
}

/// Tree-shaped recombination: combine tile results pairwise (the parallel
/// reduction-tree order used by the CPU/GPU backends) instead of the
/// sequential left fold, verifying that associativity of the combine
/// operator makes the tree order legal.
pub fn check_tree_recombination(
    prog: &DslProgram,
    inputs: &[Buffer],
    d: usize,
    tile: usize,
    rel_tol: f64,
) -> Result<bool> {
    let full = prog.md_hom.full_range();
    let whole = eval_range(prog, inputs, &full)?;
    let tiles = full.tile_dim(d, tile);
    let mut parts: Vec<Intermediate> = tiles
        .iter()
        .filter(|t| !t.is_empty())
        .map(|t| eval_range(prog, inputs, t))
        .collect::<Result<_>>()?;
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(Intermediate::combine_along(
                    d,
                    &prog.md_hom.combine_ops[d],
                    &a,
                    &b,
                )?),
                None => next.push(a),
            }
        }
        parts = next;
    }
    let combined = parts.pop().unwrap_or(whole.clone());
    Ok(intermediate_approx_eq(&whole, &combined, rel_tol))
}

fn intermediate_approx_eq(a: &Intermediate, b: &Intermediate, rel_tol: f64) -> bool {
    a.extents == b.extents
        && a.elems.len() == b.elems.len()
        && a.elems.iter().zip(&b.elems).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| u.approx_eq(v, rel_tol))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::CombineOp;
    use crate::dsl::DslBuilder;
    use crate::expr::ScalarFunction;
    use crate::index_fn::IndexFn;
    use crate::shape::Shape;
    use crate::types::{BasicType, ScalarKind};

    fn matmul_prog(i: usize, j: usize, k: usize) -> DslProgram {
        DslBuilder::new("matmul", vec![i, j, k])
            .out_buffer("C", BasicType::F64)
            .out_access("C", IndexFn::select(3, &[0, 1]))
            .inp_buffer("A", BasicType::F64)
            .inp_access("A", IndexFn::select(3, &[0, 2]))
            .inp_buffer("B", BasicType::F64)
            .inp_access("B", IndexFn::select(3, &[2, 1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F64))
            .combine_ops(vec![CombineOp::cc(), CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    fn matmul_inputs(i: usize, j: usize, k: usize) -> Vec<Buffer> {
        let mut a = Buffer::zeros("A", BasicType::F64, Shape::new(vec![i, k]));
        a.fill_with(|f| ((f * 37) % 11) as f64 - 5.0);
        let mut b = Buffer::zeros("B", BasicType::F64, Shape::new(vec![k, j]));
        b.fill_with(|f| ((f * 23) % 7) as f64 * 0.25);
        vec![a, b]
    }

    #[test]
    fn matmul_split_law_all_dims() {
        let prog = matmul_prog(4, 3, 5);
        let inputs = matmul_inputs(4, 3, 5);
        assert!(check_all_dims_midpoint(&prog, &inputs, 1e-9).unwrap());
    }

    #[test]
    fn matmul_split_law_edge_splits() {
        let prog = matmul_prog(4, 3, 5);
        let inputs = matmul_inputs(4, 3, 5);
        for d in 0..3 {
            let n = prog.md_hom.sizes[d];
            assert!(check_split_law(&prog, &inputs, d, 0, 1e-9).unwrap());
            assert!(check_split_law(&prog, &inputs, d, n, 1e-9).unwrap());
            assert!(check_split_law(&prog, &inputs, d, 1, 1e-9).unwrap());
        }
    }

    #[test]
    fn matmul_tiled_decomposition() {
        let prog = matmul_prog(6, 4, 8);
        let inputs = matmul_inputs(6, 4, 8);
        for d in 0..3 {
            for tile in [1, 2, 3, 5, 100] {
                assert!(
                    check_tiled_decomposition(&prog, &inputs, d, tile, 1e-9).unwrap(),
                    "tiled decomposition failed on dim {d} tile {tile}"
                );
            }
        }
    }

    #[test]
    fn matmul_tree_recombination() {
        let prog = matmul_prog(6, 4, 8);
        let inputs = matmul_inputs(6, 4, 8);
        for d in 0..3 {
            assert!(check_tree_recombination(&prog, &inputs, d, 2, 1e-9).unwrap());
        }
    }

    #[test]
    fn prefix_sum_split_law() {
        let n = 9;
        let prog = DslBuilder::new("psum", vec![n])
            .out_buffer("out", BasicType::I64)
            .out_access("out", IndexFn::identity(1, 1))
            .inp_buffer("x", BasicType::I64)
            .inp_access("x", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::I64))
            .combine_ops(vec![CombineOp::ps_add()])
            .build()
            .unwrap();
        let x = Buffer::from_i64("x", Shape::new(vec![n]), (1..=n as i64).collect());
        for at in 0..=n {
            assert!(
                check_split_law(&prog, std::slice::from_ref(&x), 0, at, 0.0).unwrap(),
                "ps split law failed at {at}"
            );
        }
        assert!(check_tree_recombination(&prog, &[x], 0, 2, 0.0).unwrap());
    }
}
