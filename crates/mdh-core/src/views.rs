//! Input and output views.
//!
//! Views are the MDH DSL's higher-order functions `inp_view` / `out_view`
//! (Listing 7): they declare the program's buffers and, for each buffer, the
//! list of *accesses* — index functions from the iteration space into the
//! buffer. A buffer may be accessed several times per iteration point
//! (`#ACC_b` in the paper), as in a 3-point stencil reading `in[2i]`,
//! `in[2i+1]`, `in[2i+2]`.

use crate::index_fn::IndexFn;
use crate::shape::MdRange;
use crate::types::BasicType;

/// Declaration of one buffer (name, element type, optionally an explicit
/// shape — required when the buffer is larger than the accessed region, as
/// for MCC's enlarged `img` buffer in Listing 12; otherwise the shape is
/// inferred per footnote 7).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferDecl {
    pub name: String,
    pub ty: BasicType,
    pub declared_shape: Option<Vec<usize>>,
}

impl BufferDecl {
    pub fn new(name: impl Into<String>, ty: BasicType) -> Self {
        BufferDecl {
            name: name.into(),
            ty,
            declared_shape: None,
        }
    }

    pub fn with_shape(name: impl Into<String>, ty: BasicType, shape: Vec<usize>) -> Self {
        BufferDecl {
            name: name.into(),
            ty,
            declared_shape: Some(shape),
        }
    }
}

/// One access: which buffer, through which index function.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Index into the view's buffer declarations.
    pub buffer: usize,
    pub index_fn: IndexFn,
}

impl Access {
    pub fn new(buffer: usize, index_fn: IndexFn) -> Self {
        Access { buffer, index_fn }
    }
}

/// A view: buffer declarations plus an ordered access list. The access
/// order defines the parameter order (for `inp_view`) or result order (for
/// `out_view`) of the scalar function.
#[derive(Debug, Clone, PartialEq)]
pub struct View {
    pub buffers: Vec<BufferDecl>,
    pub accesses: Vec<Access>,
}

impl View {
    pub fn new(buffers: Vec<BufferDecl>, accesses: Vec<Access>) -> Self {
        View { buffers, accesses }
    }

    pub fn empty() -> Self {
        View {
            buffers: Vec::new(),
            accesses: Vec::new(),
        }
    }

    pub fn buffer_index(&self, name: &str) -> Option<usize> {
        self.buffers.iter().position(|b| b.name == name)
    }

    /// Accesses referring to buffer `b`.
    pub fn accesses_of(&self, b: usize) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(move |a| a.buffer == b)
    }

    /// Effective shape of buffer `b`: the declared shape if present, else
    /// the smallest shape covering all accesses over `range` (footnote 7).
    /// Returns `None` if inference is impossible (general index function
    /// and no declaration).
    pub fn effective_shape(&self, b: usize, range: &MdRange) -> Option<Vec<usize>> {
        if let Some(s) = &self.buffers[b].declared_shape {
            return Some(s.clone());
        }
        let mut shape: Option<Vec<usize>> = None;
        for a in self.accesses_of(b) {
            let ext = a.index_fn.inferred_extents(range)?;
            shape = Some(match shape {
                None => ext,
                Some(prev) => {
                    if prev.len() != ext.len() {
                        return None;
                    }
                    prev.iter().zip(&ext).map(|(&a, &b)| a.max(b)).collect()
                }
            });
        }
        shape
    }

    /// Total bytes accessed (footprint) in buffer `b` over an iteration
    /// sub-range — the quantity the tiling cost model charges per tile.
    pub fn footprint_bytes(&self, b: usize, range: &MdRange) -> Option<usize> {
        let elem = self.buffers[b].ty.size_bytes();
        // Union-of-boxes approximated by the bounding box of each access,
        // deduplicated by taking the max single bounding box when all
        // accesses are shifted copies (the common stencil case), else the
        // sum of boxes.
        let mut boxes: Vec<Vec<usize>> = Vec::new();
        for a in self.accesses_of(b) {
            boxes.push(a.index_fn.footprint(range)?);
        }
        if boxes.is_empty() {
            return Some(0);
        }
        // bounding box over all accesses: conservative union for shifted
        // stencil accesses
        let rank = boxes[0].len();
        if boxes.iter().any(|bx| bx.len() != rank) {
            return None;
        }
        let mut hull = vec![0usize; rank];
        for bx in &boxes {
            for d in 0..rank {
                hull[d] = hull[d].max(bx[d]);
            }
        }
        // shifted accesses widen the hull by at most their shift; we
        // approximate the union as the max box extents + (n_boxes - 1) in
        // the innermost dim, capped by a plain sum of boxes.
        let sum: usize = boxes
            .iter()
            .map(|bx| bx.iter().product::<usize>())
            .sum::<usize>();
        let hull_elems: usize = hull.iter().product();
        Some(hull_elems.min(sum).max(1) * elem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_fn::{AffineExpr, IndexFn};
    use crate::types::BasicType;

    /// MatVec input view: M accessed as (i,k)->(i,k), v as (i,k)->(k).
    fn matvec_inp() -> View {
        View::new(
            vec![
                BufferDecl::new("M", BasicType::F32),
                BufferDecl::new("v", BasicType::F32),
            ],
            vec![
                Access::new(0, IndexFn::identity(2, 2)),
                Access::new(1, IndexFn::select(2, &[1])),
            ],
        )
    }

    #[test]
    fn shape_inference_matvec() {
        let v = matvec_inp();
        let range = MdRange::full(&[4, 7]);
        assert_eq!(v.effective_shape(0, &range), Some(vec![4, 7]));
        assert_eq!(v.effective_shape(1, &range), Some(vec![7]));
    }

    #[test]
    fn declared_shape_wins() {
        let mut v = matvec_inp();
        v.buffers[0].declared_shape = Some(vec![10, 10]);
        let range = MdRange::full(&[4, 7]);
        assert_eq!(v.effective_shape(0, &range), Some(vec![10, 10]));
    }

    #[test]
    fn stencil_multi_access_shape() {
        // 3-point stencil: in[i], in[i+1], in[i+2]
        let v = View::new(
            vec![BufferDecl::new("x", BasicType::F32)],
            vec![
                Access::new(0, IndexFn::affine(vec![AffineExpr::new(vec![1], 0)])),
                Access::new(0, IndexFn::affine(vec![AffineExpr::new(vec![1], 1)])),
                Access::new(0, IndexFn::affine(vec![AffineExpr::new(vec![1], 2)])),
            ],
        );
        let range = MdRange::full(&[8]);
        assert_eq!(v.effective_shape(0, &range), Some(vec![10]));
    }

    #[test]
    fn footprint_bytes_matvec_tile() {
        let v = matvec_inp();
        // a 2x3 tile of the iteration space touches 2x3 of M and 3 of v
        let tile = MdRange::new(vec![2, 4], vec![4, 7]);
        assert_eq!(v.footprint_bytes(0, &tile), Some(6 * 4));
        assert_eq!(v.footprint_bytes(1, &tile), Some(3 * 4));
    }

    #[test]
    fn buffer_lookup() {
        let v = matvec_inp();
        assert_eq!(v.buffer_index("v"), Some(1));
        assert_eq!(v.buffer_index("nope"), None);
        assert_eq!(v.accesses_of(0).count(), 1);
    }
}
