//! # mdh-core
//!
//! The algebraic core of the MDH (Multi-Dimensional Homomorphisms)
//! formalism, as used by the paper *Reduction-Aware Directive-Based
//! Programming via Multi-Dimensional Homomorphisms* (SC Workshops '25).
//!
//! A data-parallel computation in the MDH sense is an expression
//!
//! ```text
//! ⊗_1 ... ⊗_D  f( a[i_1, ..., i_D] )
//! ```
//!
//! for an arbitrary scalar function `f` and per-dimension *combine
//! operators* `⊗_d` (footnote 2 of the paper). This crate provides:
//!
//! * [`types`] — scalar and record element types plus dynamic [`types::Value`]s,
//! * [`shape`] — shapes, strides, and rectangular iteration ranges,
//! * [`buffer`] — typed multi-dimensional buffers (record buffers stored
//!   column-wise),
//! * [`index_fn`] — affine index functions with footprint/injectivity
//!   analyses,
//! * [`expr`] — the scalar-function IR (the directive's loop body),
//! * [`combine`] — combine operators `cc`, `pw(f)`, `ps(f)` (Appendix A),
//! * [`views`] — `inp_view` / `out_view`,
//! * [`dsl`] — the high-level program representation `md_hom` (Listing 7)
//!   and a fluent [`dsl::DslBuilder`],
//! * [`eval`] — the reference evaluators defining the semantics,
//! * [`laws`] — homomorphism-law checks underpinning the correctness of
//!   all (de)composition-based optimisations.
//!
//! Higher layers build on this crate: `mdh-directive` (the paper's
//! contribution — the directive front end), `mdh-lowering` (schedules),
//! `mdh-backend` (CPU/GPU execution), `mdh-tuner` (auto-tuning), and
//! `mdh-baselines` (comparison systems).

// Dimension-indexed loops (`for d in 0..rank`) are the idiom of this
// codebase — indices name iteration-space dimensions across several
// parallel arrays, which iterator adapters would obscure.
#![allow(clippy::needless_range_loop)]
pub mod buffer;
pub mod combine;
pub mod dsl;
pub mod error;
pub mod eval;
pub mod expr;
pub mod index_fn;
pub mod laws;
pub mod shape;
pub mod types;
pub mod views;

/// Commonly-used items, re-exported for convenience.
pub mod prelude {
    pub use crate::buffer::{Buffer, BufferData};
    pub use crate::combine::{
        Associativity, BuiltinReduce, CombineOp, DimBehavior, PwFunc, PwKind,
    };
    pub use crate::dsl::{DslBuilder, DslProgram, MdHom, ProgramStats};
    pub use crate::error::MdhError;
    pub use crate::eval::{evaluate_direct, evaluate_recursive};
    pub use crate::expr::{BinOp, Expr, MathFn, ScalarFunction, SfPattern, Stmt, UnOp};
    pub use crate::index_fn::{AffineExpr, IndexFn};
    pub use crate::shape::{MdRange, Shape};
    pub use crate::types::{BasicType, FieldType, RecordType, ScalarKind, Tuple, Value};
    pub use crate::views::{Access, BufferDecl, View};
}
