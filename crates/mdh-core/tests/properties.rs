//! Property-based tests of the core data structures: shapes, ranges,
//! affine index functions, buffers, combine operators, and the scalar
//! expression evaluator.

use mdh_core::buffer::Buffer;
use mdh_core::combine::{BuiltinReduce, PwFunc};
use mdh_core::index_fn::{AffineExpr, IndexFn};
use mdh_core::shape::{MdRange, Shape};
use mdh_core::types::{BasicType, ScalarKind, Value};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1usize..7, 1..5).prop_map(Shape::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Shape ----------------------------------------------------------

    #[test]
    fn linearize_delinearize_roundtrip(shape in arb_shape(), flat_frac in 0.0f64..1.0) {
        let n = shape.len();
        prop_assume!(n > 0);
        let flat = ((n as f64) * flat_frac) as usize % n;
        let idx = shape.delinearize(flat);
        prop_assert!(shape.contains(&idx));
        prop_assert_eq!(shape.linearize(&idx), flat);
    }

    #[test]
    fn strides_are_consistent_with_linearize(shape in arb_shape()) {
        let strides = shape.strides();
        for (d, s) in strides.iter().enumerate() {
            // moving one step in dim d moves the flat index by the stride
            let mut idx = vec![0usize; shape.rank()];
            if shape.dims()[d] > 1 {
                let base = shape.linearize(&idx);
                idx[d] = 1;
                prop_assert_eq!(shape.linearize(&idx) - base, *s);
            }
        }
    }

    #[test]
    fn shape_iter_is_exhaustive_ordered_and_unique(shape in arb_shape()) {
        let pts: Vec<Vec<usize>> = shape.iter().collect();
        prop_assert_eq!(pts.len(), shape.len());
        for w in pts.windows(2) {
            prop_assert!(shape.linearize(&w[0]) < shape.linearize(&w[1]));
        }
    }

    // ---- MdRange ---------------------------------------------------------

    #[test]
    fn tiling_partitions_a_range(
        sizes in prop::collection::vec(1usize..20, 1..4),
        dim_frac in 0.0f64..1.0,
        tile in 1usize..8,
    ) {
        let r = MdRange::full(&sizes);
        let d = ((sizes.len() as f64) * dim_frac) as usize % sizes.len();
        let tiles = r.tile_dim(d, tile);
        // total points preserved
        prop_assert_eq!(tiles.iter().map(|t| t.len()).sum::<usize>(), r.len());
        // tiles are disjoint and ordered along d
        for w in tiles.windows(2) {
            prop_assert_eq!(w[0].hi[d], w[1].lo[d]);
        }
        // every tile is within the parent
        for t in &tiles {
            for dd in 0..sizes.len() {
                prop_assert!(t.lo[dd] >= r.lo[dd] && t.hi[dd] <= r.hi[dd]);
            }
        }
    }

    #[test]
    fn split_at_partitions(
        sizes in prop::collection::vec(1usize..16, 1..4),
        dim_frac in 0.0f64..1.0,
        at_frac in 0.0f64..=1.0,
    ) {
        let r = MdRange::full(&sizes);
        let d = ((sizes.len() as f64) * dim_frac) as usize % sizes.len();
        let at = ((sizes[d] as f64) * at_frac).round() as usize;
        let (p, q) = r.split_at(d, at.min(sizes[d]));
        prop_assert_eq!(p.len() + q.len(), r.len());
        for idx in r.iter() {
            prop_assert!(p.contains(&idx) != q.contains(&idx));
        }
    }

    // ---- AffineExpr / IndexFn ---------------------------------------------

    #[test]
    fn affine_bounds_contain_all_values(
        coeffs in prop::collection::vec(-4i64..5, 1..4),
        constant in -10i64..10,
        sizes in prop::collection::vec(1usize..6, 1..4),
    ) {
        prop_assume!(coeffs.len() == sizes.len());
        let e = AffineExpr::new(coeffs, constant);
        let r = MdRange::full(&sizes);
        let (lo, hi) = e.bounds_over(&r);
        for idx in r.iter() {
            let v = e.eval(&idx);
            prop_assert!(v >= lo && v <= hi, "{v} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn footprint_covers_accessed_extents(
        c in 1i64..4,
        off in 0i64..5,
        n in 1usize..10,
    ) {
        let f = IndexFn::affine(vec![AffineExpr::new(vec![c], off)]);
        let r = MdRange::full(&[n]);
        let fp = f.footprint(&r).unwrap();
        let touched: std::collections::HashSet<usize> = r
            .iter()
            .map(|idx| f.eval(&idx).unwrap()[0])
            .collect();
        let span = touched.iter().max().unwrap() - touched.iter().min().unwrap() + 1;
        prop_assert!(fp[0] >= span);
    }

    #[test]
    fn exhaustive_injectivity_is_ground_truth(
        coeffs in prop::collection::vec(0i64..3, 2),
        sizes in prop::collection::vec(1usize..5, 2),
    ) {
        let f = IndexFn::affine(vec![AffineExpr::new(coeffs, 0)]);
        let r = MdRange::full(&sizes);
        if let Some(claim) = f.is_injective_over(&r, 10_000) {
            // recompute by brute force
            let mut seen = std::collections::HashSet::new();
            let mut truth = true;
            for idx in r.iter() {
                if !seen.insert(f.eval(&idx).unwrap()) {
                    truth = false;
                    break;
                }
            }
            prop_assert_eq!(claim, truth);
        }
    }

    // ---- Buffer ------------------------------------------------------------

    #[test]
    fn buffer_set_get_roundtrip(
        shape in arb_shape(),
        vals in prop::collection::vec(-100.0f64..100.0, 1..8),
    ) {
        let mut b = Buffer::zeros("b", BasicType::F64, shape.clone());
        for (i, &v) in vals.iter().enumerate() {
            let flat = i % shape.len().max(1);
            let idx = shape.delinearize(flat);
            b.set(&idx, &Value::F64(v)).unwrap();
            prop_assert_eq!(b.get(&idx), Value::F64(v));
        }
    }

    #[test]
    fn fill_with_matches_get_flat(shape in arb_shape()) {
        let mut b = Buffer::zeros("b", BasicType::F32, shape.clone());
        b.fill_with(|i| (i as f64) * 0.5);
        for i in 0..shape.len() {
            prop_assert_eq!(b.get_flat(i), Value::F32(i as f32 * 0.5));
        }
    }

    // ---- Combine operators ---------------------------------------------------

    #[test]
    fn builtin_reduces_are_associative_and_commutative(
        op in prop_oneof![
            Just(BuiltinReduce::Add),
            Just(BuiltinReduce::Mul),
            Just(BuiltinReduce::Max),
            Just(BuiltinReduce::Min),
        ],
        vals in prop::collection::vec(-16i64..16, 3..6),
    ) {
        let f = PwFunc::builtin(op);
        let samples: Vec<Vec<Value>> = vals.iter().map(|&v| vec![Value::I64(v)]).collect();
        prop_assert!(f.check_associative(&samples, 0.0).unwrap());
        prop_assert!(f.check_commutative(&samples, 0.0).unwrap());
    }

    #[test]
    fn identity_elements_are_neutral(
        op in prop_oneof![
            Just(BuiltinReduce::Add),
            Just(BuiltinReduce::Mul),
            Just(BuiltinReduce::Max),
            Just(BuiltinReduce::Min),
        ],
        v in -1000i64..1000,
    ) {
        let f = PwFunc::builtin(op);
        let id = op.identity(ScalarKind::I64);
        let combined = f.combine(&vec![id], &vec![Value::I64(v)]).unwrap();
        prop_assert_eq!(combined, vec![Value::I64(v)]);
    }

    // ---- Value semantics ------------------------------------------------------

    #[test]
    fn value_cast_is_idempotent(v in -1e6f64..1e6) {
        for kind in [ScalarKind::F32, ScalarKind::F64, ScalarKind::I32, ScalarKind::I64] {
            let once = Value::F64(v).cast(kind).unwrap();
            let twice = once.cast(kind).unwrap();
            prop_assert_eq!(once, twice);
        }
    }

    #[test]
    fn approx_eq_is_reflexive_and_symmetric(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let (x, y) = (Value::F64(a), Value::F64(b));
        prop_assert!(x.approx_eq(&x, 0.0));
        prop_assert_eq!(x.approx_eq(&y, 1e-9), y.approx_eq(&x, 1e-9));
    }
}
