//! Schedule search spaces and tuning drivers.
//!
//! Maps the MDH lowering's schedule knobs onto an ATF parameter space with
//! the real interdependence constraints (grid limits, 1024 threads per
//! block, sequential reductions forbidding split reduction dims), and
//! provides the two cost functions of the paper's setup: measured wall
//! time on the CPU executor and simulated time on the GPU model.

use crate::search::{Budget, Technique, Tuner, TuningResult};
use crate::space::{pow2_candidates, Config, SearchSpace, TunableParam};
use mdh_backend::cpu::CpuExecutor;
use mdh_backend::gpu::GpuSim;
use mdh_core::buffer::Buffer;
use mdh_core::dsl::DslProgram;
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::heuristics::{default_loop_order, mdh_default_schedule};
use mdh_lowering::schedule::{ReductionStrategy, Schedule};

/// A tuning space for one (program, device) pair.
pub struct ScheduleSpace {
    pub device: DeviceKind,
    pub rank: usize,
    pub space: SearchSpace,
    reduction_dims: Vec<usize>,
    loop_order: Vec<usize>,
}

impl ScheduleSpace {
    /// Build the space. `max_parallel` bounds the top-level grid (threads
    /// on CPU, blocks on GPU).
    pub fn build(prog: &DslProgram, device: DeviceKind, max_parallel: usize) -> ScheduleSpace {
        let rank = prog.rank();
        let sizes = prog.md_hom.sizes.clone();
        let reduction_dims = prog.md_hom.reduction_dims();
        let mut space = SearchSpace::new();

        // par_chunks per dim, cumulative product bounded by max_parallel
        for d in 0..rank {
            let cands = pow2_candidates(sizes[d].clamp(1, max_parallel));
            let cap = max_parallel as i64;
            space.add(TunableParam::constrained(
                format!("par{d}"),
                cands,
                move |prefix, v| {
                    let so_far: i64 = prefix.iter().take(d).product::<i64>().max(1);
                    so_far * v <= cap
                },
            ));
        }
        // GPU: threads per block per dim, product <= 1024
        if device == DeviceKind::Gpu {
            for d in 0..rank {
                let cands = pow2_candidates(sizes[d].clamp(1, 1024));
                space.add(TunableParam::constrained(
                    format!("tpb{d}"),
                    cands,
                    move |prefix, v| {
                        let so_far: i64 = prefix[rank..rank + d].iter().product::<i64>().max(1);
                        so_far * v <= 1024
                    },
                ));
            }
        }
        // staging strip / cache tiles per dim (1 = whole block tile)
        for d in 0..rank {
            let cands = pow2_candidates(sizes[d].clamp(1, 128));
            space.add(TunableParam::new(format!("tile{d}"), cands));
        }
        // reduction strategy: 0 = Sequential, 1 = Tree. Sequential is only
        // valid when no reduction dim is split.
        let red = reduction_dims.clone();
        let gpu = device == DeviceKind::Gpu;
        space.add(TunableParam::constrained(
            "reduction",
            vec![0, 1],
            move |prefix, v| {
                if v == 1 {
                    return true;
                }
                let splits = red
                    .iter()
                    .any(|&d| prefix[d] > 1 || (gpu && prefix[rank + d] > 1));
                !splits
            },
        ));
        // staging on/off
        space.add(TunableParam::new("stage", vec![0, 1]));

        ScheduleSpace {
            device,
            rank,
            space,
            reduction_dims,
            loop_order: default_loop_order(prog),
        }
    }

    /// Materialise a schedule from a configuration.
    pub fn to_schedule(&self, config: &Config) -> Schedule {
        let rank = self.rank;
        let par_chunks: Vec<usize> = config[..rank].iter().map(|&v| v as usize).collect();
        let (block_threads, inner_tiles, rest): (Vec<usize>, Vec<usize>, &[i64]) =
            if self.device == DeviceKind::Gpu {
                (
                    config[rank..2 * rank].iter().map(|&v| v as usize).collect(),
                    config[2 * rank..3 * rank]
                        .iter()
                        .map(|&v| v as usize)
                        .collect(),
                    &config[3 * rank..],
                )
            } else {
                (
                    vec![1; rank],
                    config[rank..2 * rank].iter().map(|&v| v as usize).collect(),
                    &config[2 * rank..],
                )
            };
        Schedule {
            device: self.device,
            par_chunks,
            block_threads,
            inner_tiles,
            reduction: if rest[0] == 1 {
                ReductionStrategy::Tree
            } else {
                ReductionStrategy::Sequential
            },
            stage_inputs: rest[1] == 1,
            loop_order: self.loop_order.clone(),
        }
    }

    pub fn reduction_dims(&self) -> &[usize] {
        &self.reduction_dims
    }
}

/// Outcome of schedule tuning.
pub struct TunedSchedule {
    pub schedule: Schedule,
    /// Cost of the chosen schedule (seconds on CPU, ms on GPU-sim).
    pub cost: f64,
    pub result: TuningResult,
}

/// Tune a CPU schedule by measuring real executions.
pub fn tune_cpu(
    exec: &CpuExecutor,
    prog: &DslProgram,
    inputs: &[Buffer],
    technique: Technique,
    budget: Budget,
) -> TunedSchedule {
    let ss = ScheduleSpace::build(prog, DeviceKind::Cpu, exec.threads * 8);
    let tuner = Tuner::new(ss.space.clone(), technique, budget);
    let result = tuner.tune(|cfg| {
        let s = ss.to_schedule(cfg);
        if s.validate(prog, 1 << 24).is_err() {
            return None;
        }
        exec.run_timed(prog, &s, inputs)
            .ok()
            .map(|(_, d)| d.as_secs_f64())
    });
    // always compare against the heuristic default
    let default = mdh_default_schedule(prog, DeviceKind::Cpu, exec.threads);
    let default_cost = exec
        .run_timed(prog, &default, inputs)
        .map(|(_, d)| d.as_secs_f64())
        .unwrap_or(f64::INFINITY);
    match &result.best {
        Some((cfg, c)) if *c < default_cost => TunedSchedule {
            schedule: ss.to_schedule(cfg),
            cost: *c,
            result,
        },
        _ => TunedSchedule {
            schedule: default,
            cost: default_cost,
            result,
        },
    }
}

/// Deterministic seed schedules: the structured tiled/staged candidates
/// an experienced ATF run converges on (heuristic default plus classic
/// square-tiled variants at several strip sizes, with and without split
/// reductions). Seeding keeps short tuning runs representative of the
/// paper's 12-hour budget.
pub fn seed_schedules(prog: &DslProgram, max_parallel: usize) -> Vec<Schedule> {
    let rank = prog.rank();
    let sizes = &prog.md_hom.sizes;
    let mut seeds = vec![mdh_default_schedule(prog, DeviceKind::Gpu, max_parallel)];
    let preserved = prog.md_hom.preserved_dims();
    let reductions = prog.md_hom.reduction_dims();
    for tile in [4usize, 8, 16, 32, 64, 128] {
        for split_red in [false, true] {
            let mut s = Schedule::sequential(rank, DeviceKind::Gpu);
            s.stage_inputs = true;
            // blocks tile the preserved dims; two largest get threads
            let mut tpb = 1usize;
            let mut pres_sorted: Vec<usize> = preserved.clone();
            pres_sorted.sort_by_key(|&d| std::cmp::Reverse(sizes[d]));
            for (pos, &d) in pres_sorted.iter().enumerate() {
                let t = tile.min(sizes[d]).max(1);
                s.par_chunks[d] = sizes[d].div_ceil(t);
                s.inner_tiles[d] = t;
                if pos < 2 {
                    let th = t.min(32).min(1024 / tpb).max(1);
                    s.block_threads[d] = th;
                    tpb *= th;
                }
            }
            for &d in &reductions {
                s.inner_tiles[d] = tile.min(sizes[d]).max(1);
                if split_red {
                    s.par_chunks[d] = (sizes[d] / (tile * 8).max(1)).clamp(1, 256);
                }
            }
            if split_red && s.splits_reduction(prog) {
                s.reduction = ReductionStrategy::Tree;
            }
            // reduction-only programs: cover the reduction with the grid
            if preserved.is_empty() || preserved.iter().all(|&d| sizes[d] == 1) {
                if let Some(&d) = reductions.first() {
                    s.block_threads[d] = 256.min(sizes[d]).max(1);
                    s.par_chunks[d] = (sizes[d] / (256 * 32)).clamp(1, 864);
                    if s.par_chunks[d] > 1 || s.block_threads[d] > 1 {
                        s.reduction = ReductionStrategy::Tree;
                    }
                }
            }
            seeds.push(s);
        }
    }
    // device-filling reduction split: when the preserved space is too
    // small to occupy the machine, split the largest reduction dimension
    // until the grid fills (the reduction-aware move no baseline has)
    let preserved_points: usize = preserved
        .iter()
        .map(|&d| sizes[d])
        .product::<usize>()
        .max(1);
    let device_threads = 108 * 2048;
    if preserved_points < device_threads * 2 {
        if let Some(&rd) = reductions.iter().max_by_key(|&&d| sizes[d]) {
            for tile in [16usize, 32, 64] {
                let mut s = Schedule::sequential(rank, DeviceKind::Gpu);
                s.stage_inputs = true;
                let mut tpb = 1usize;
                let mut pres_sorted: Vec<usize> = preserved.clone();
                pres_sorted.sort_by_key(|&d| std::cmp::Reverse(sizes[d]));
                for (pos, &d) in pres_sorted.iter().enumerate() {
                    let t = tile.min(sizes[d]).max(1);
                    s.par_chunks[d] = sizes[d].div_ceil(t);
                    s.inner_tiles[d] = t;
                    if pos < 2 {
                        let th = t.min(32).min(1024 / tpb).max(1);
                        s.block_threads[d] = th;
                        tpb *= th;
                    }
                }
                for &d in &reductions {
                    s.inner_tiles[d] = tile.min(sizes[d]).max(1);
                }
                let want = (device_threads * 2).div_ceil(preserved_points.max(1));
                s.par_chunks[rd] = want.next_power_of_two().min(sizes[rd].max(1)).min(512);
                if s.splits_reduction(prog) {
                    s.reduction = ReductionStrategy::Tree;
                }
                seeds.push(s);
            }
        }
    }
    seeds
}

/// Tune a GPU schedule against the simulator's cost model.
pub fn tune_gpu(
    sim: &GpuSim,
    prog: &DslProgram,
    technique: Technique,
    budget: Budget,
) -> TunedSchedule {
    let max_blocks = sim.params.num_sms * 64;
    let ss = ScheduleSpace::build(prog, DeviceKind::Gpu, max_blocks);
    let tuner = Tuner::new(ss.space.clone(), technique, budget);
    let result = tuner.tune(|cfg| {
        let s = ss.to_schedule(cfg);
        sim.estimate(prog, &s).ok().map(|r| r.time_ms)
    });
    // deterministic seeds compete with the search result
    let mut best_seed: Option<(Schedule, f64)> = None;
    for s in seed_schedules(prog, max_blocks) {
        if s.validate(prog, usize::MAX / 2).is_err() {
            continue;
        }
        if let Ok(r) = sim.estimate(prog, &s) {
            if best_seed
                .as_ref()
                .map(|(_, c)| r.time_ms < *c)
                .unwrap_or(true)
            {
                best_seed = Some((s, r.time_ms));
            }
        }
    }
    let searched = result
        .best
        .as_ref()
        .map(|(cfg, c)| (ss.to_schedule(cfg), *c));
    let chosen = match (searched, best_seed) {
        (Some(a), Some(b)) => Some(if a.1 <= b.1 { a } else { b }),
        (a, b) => a.or(b),
    };
    match chosen {
        Some((schedule, cost)) => TunedSchedule {
            schedule,
            cost,
            result,
        },
        None => {
            let default = mdh_default_schedule(prog, DeviceKind::Gpu, max_blocks);
            let cost = sim
                .estimate(prog, &default)
                .map(|r| r.time_ms)
                .unwrap_or(f64::INFINITY);
            TunedSchedule {
                schedule: default,
                cost,
                result,
            }
        }
    }
}

/// Deterministic CPU seed schedules (thread-parallel, vectorised, cache
/// tiled — what ATF converges on given the paper's budget).
pub fn cpu_seed_schedules(prog: &DslProgram, cores: usize) -> Vec<Schedule> {
    let rank = prog.rank();
    let sizes = &prog.md_hom.sizes;
    let mut seeds = vec![mdh_default_schedule(prog, DeviceKind::Cpu, cores)];
    let reductions = prog.md_hom.reduction_dims();
    for tile in [4usize, 8, 16, 32, 64, 128] {
        for split_red in [false, true] {
            let mut s = mdh_default_schedule(prog, DeviceKind::Cpu, cores);
            for d in 0..rank {
                s.inner_tiles[d] = tile.min(sizes[d]).max(1);
            }
            if split_red {
                if let Some(&rd) = reductions.iter().max_by_key(|&&d| sizes[d]) {
                    s.par_chunks[rd] = cores.min(sizes[rd]).max(1);
                }
            }
            if s.splits_reduction(prog) {
                s.reduction = ReductionStrategy::Tree;
            }
            seeds.push(s);
        }
    }
    seeds
}

/// Tune a CPU schedule against the analytic Xeon model (used by the
/// Figure 4 harness; see `mdh_backend::cpu_model` for why).
pub fn tune_cpu_model(
    prog: &DslProgram,
    params: &mdh_backend::cpu_model::CpuParams,
    technique: Technique,
    budget: Budget,
) -> TunedSchedule {
    let cores = params.cores;
    let ss = ScheduleSpace::build(prog, DeviceKind::Cpu, cores * 4);
    let tuner = Tuner::new(ss.space.clone(), technique, budget);
    let vectorise = |mut s: Schedule| -> Schedule {
        // MDH's generated code vectorises a suitable loop regardless of
        // the combine operator; pick the dim with the most usable lanes
        let sizes = &prog.md_hom.sizes;
        let d = (0..prog.rank())
            .rev()
            .max_by_key(|&d| sizes[d].min(16))
            .unwrap_or(prog.rank() - 1);
        s.block_threads[d] = 16.min(sizes[d]).max(1);
        if s.block_threads[d] > 1 && prog.md_hom.reduction_dims().contains(&d) {
            s.reduction = ReductionStrategy::Tree;
        }
        s
    };
    let result = tuner.tune(|cfg| {
        let s = vectorise(ss.to_schedule(cfg));
        mdh_backend::cpu_model::estimate_cpu(prog, &s, params)
            .ok()
            .map(|r| r.time_ms)
    });
    let mut best: Option<(Schedule, f64)> = result
        .best
        .as_ref()
        .map(|(cfg, c)| (vectorise(ss.to_schedule(cfg)), *c));
    for s in cpu_seed_schedules(prog, cores) {
        if s.validate(prog, 1 << 24).is_err() {
            continue;
        }
        if let Ok(r) = mdh_backend::cpu_model::estimate_cpu(prog, &s, params) {
            if best.as_ref().map(|(_, c)| r.time_ms < *c).unwrap_or(true) {
                best = Some((s, r.time_ms));
            }
        }
    }
    match best {
        Some((schedule, cost)) => TunedSchedule {
            schedule,
            cost,
            result,
        },
        None => {
            let schedule = mdh_default_schedule(prog, DeviceKind::Cpu, cores);
            TunedSchedule {
                schedule,
                cost: f64::INFINITY,
                result,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::IndexFn;
    use mdh_core::shape::Shape;
    use mdh_core::types::{BasicType, ScalarKind};

    fn matvec(i: usize, k: usize) -> DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    #[test]
    fn space_configs_yield_valid_schedules() {
        let p = matvec(256, 256);
        let ss = ScheduleSpace::build(&p, DeviceKind::Gpu, 1024);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..64 {
            let cfg = ss.space.sample(&mut rng, 16).unwrap();
            let s = ss.to_schedule(&cfg);
            s.validate(&p, usize::MAX / 2).unwrap();
        }
    }

    #[test]
    fn sequential_reduction_constraint_enforced() {
        let p = matvec(64, 64);
        let ss = ScheduleSpace::build(&p, DeviceKind::Cpu, 64);
        // par1 (the reduction dim) > 1 with reduction=0 must be invalid
        let bad = vec![1, 4, 1, 1, 0, 0];
        assert!(!ss.space.is_valid(&bad));
        let good = vec![1, 4, 1, 1, 1, 0];
        assert!(ss.space.is_valid(&good));
    }

    #[test]
    fn gpu_tuning_beats_sequential_baseline() {
        let p = matvec(4096, 4096);
        let sim = GpuSim::a100(2).unwrap();
        let tuned = tune_gpu(&sim, &p, Technique::Random, Budget::evals(60));
        let seq = Schedule::sequential(2, DeviceKind::Gpu);
        let seq_cost = sim.estimate(&p, &seq).unwrap().time_ms;
        assert!(
            tuned.cost < seq_cost / 10.0,
            "tuned {:.4} ms vs sequential {:.4} ms",
            tuned.cost,
            seq_cost
        );
    }

    #[test]
    fn cpu_tuning_returns_valid_runnable_schedule() {
        let p = matvec(128, 64);
        let mut m = Buffer::zeros("M", BasicType::F32, Shape::new(vec![128, 64]));
        m.fill_with(|f| (f % 7) as f64);
        let mut v = Buffer::zeros("v", BasicType::F32, Shape::new(vec![64]));
        v.fill_with(|f| (f % 3) as f64);
        let inputs = vec![m, v];
        let exec = CpuExecutor::new(2).unwrap();
        let tuned = tune_cpu(&exec, &p, &inputs, Technique::Random, Budget::evals(8));
        tuned.schedule.validate(&p, 1 << 24).unwrap();
        assert!(tuned.cost.is_finite());
        let expect = mdh_core::eval::evaluate_recursive(&p, &inputs).unwrap();
        let got = exec.run(&p, &tuned.schedule, &inputs).unwrap();
        assert!(got[0].approx_eq(&expect[0], 1e-4));
    }
}
