//! Persistent tuning cache.
//!
//! Real MDH deployments amortise the paper's 12-hour tuning runs by
//! caching the winning schedule per (program, device, size) signature —
//! the same reuse argument the paper makes for deep-learning kernels.
//! The cache serialises to a simple line-oriented text format (no
//! external dependencies) and round-trips schedules exactly.

use mdh_core::dsl::DslProgram;
use mdh_lowering::asm::DeviceKind;
use mdh_lowering::schedule::{ReductionStrategy, Schedule};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// A stable signature for one tuning problem.
pub fn program_signature(prog: &DslProgram, device: DeviceKind) -> String {
    let sizes: Vec<String> = prog.md_hom.sizes.iter().map(|s| s.to_string()).collect();
    let ops: Vec<String> = prog
        .md_hom
        .combine_ops
        .iter()
        .map(|o| o.to_string())
        .collect();
    format!(
        "{}|{}|{}|{}",
        prog.name,
        device,
        sizes.join("x"),
        ops.join(",")
    )
}

/// A cached schedule with its tuned cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    pub schedule: Schedule,
    pub cost: f64,
}

/// The cache: signature → best-known schedule.
#[derive(Debug, Clone, Default)]
pub struct TuningCache {
    entries: HashMap<String, CacheEntry>,
}

impl TuningCache {
    pub fn new() -> TuningCache {
        TuningCache::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn lookup(&self, prog: &DslProgram, device: DeviceKind) -> Option<&CacheEntry> {
        self.entries.get(&program_signature(prog, device))
    }

    /// Insert if better than any existing entry; returns true on update.
    pub fn record(
        &mut self,
        prog: &DslProgram,
        device: DeviceKind,
        schedule: Schedule,
        cost: f64,
    ) -> bool {
        let key = program_signature(prog, device);
        match self.entries.get(&key) {
            Some(e) if e.cost <= cost => false,
            _ => {
                self.entries.insert(key, CacheEntry { schedule, cost });
                true
            }
        }
    }

    // -- serialisation -----------------------------------------------------

    /// Serialise to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# mdh tuning cache v1\n");
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        for key in keys {
            let e = &self.entries[key];
            let s = &e.schedule;
            let join = |v: &[usize]| {
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = writeln!(
                out,
                "entry\t{key}\t{cost}\t{device}\tpar={par}\ttpb={tpb}\ttiles={tiles}\tred={red}\tstage={stage}\torder={order}",
                cost = e.cost,
                device = match s.device {
                    DeviceKind::Cpu => "cpu",
                    DeviceKind::Gpu => "gpu",
                },
                par = join(&s.par_chunks),
                tpb = join(&s.block_threads),
                tiles = join(&s.inner_tiles),
                red = match s.reduction {
                    ReductionStrategy::Sequential => "seq",
                    ReductionStrategy::Tree => "tree",
                },
                stage = s.stage_inputs,
                order = join(&s.loop_order),
            );
        }
        out
    }

    /// Parse the text format (ignores unknown lines; returns an error on
    /// malformed entries).
    pub fn from_text(text: &str) -> Result<TuningCache, String> {
        let mut cache = TuningCache::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split('\t');
            if fields.next() != Some("entry") {
                continue;
            }
            let err = |m: &str| format!("line {}: {m}", ln + 1);
            let key = fields.next().ok_or_else(|| err("missing key"))?.to_string();
            let cost: f64 = fields
                .next()
                .ok_or_else(|| err("missing cost"))?
                .parse()
                .map_err(|_| err("bad cost"))?;
            let device = match fields.next() {
                Some("cpu") => DeviceKind::Cpu,
                Some("gpu") => DeviceKind::Gpu,
                _ => return Err(err("bad device")),
            };
            let mut par = Vec::new();
            let mut tpb = Vec::new();
            let mut tiles = Vec::new();
            let mut red = ReductionStrategy::Sequential;
            let mut stage = false;
            let mut order = Vec::new();
            for f in fields {
                let (k, v) = f.split_once('=').ok_or_else(|| err("bad field"))?;
                let list = |v: &str| -> Result<Vec<usize>, String> {
                    if v.is_empty() {
                        return Ok(Vec::new());
                    }
                    v.split(',')
                        .map(|x| x.parse().map_err(|_| err("bad number")))
                        .collect()
                };
                match k {
                    "par" => par = list(v)?,
                    "tpb" => tpb = list(v)?,
                    "tiles" => tiles = list(v)?,
                    "red" => {
                        red = match v {
                            "tree" => ReductionStrategy::Tree,
                            "seq" => ReductionStrategy::Sequential,
                            _ => return Err(err("bad reduction strategy")),
                        }
                    }
                    "stage" => stage = v == "true",
                    "order" => order = list(v)?,
                    _ => {} // forward compatibility
                }
            }
            let schedule = Schedule {
                device,
                par_chunks: par,
                block_threads: tpb,
                inner_tiles: tiles,
                reduction: red,
                stage_inputs: stage,
                loop_order: order,
            };
            cache.entries.insert(key, CacheEntry { schedule, cost });
        }
        Ok(cache)
    }

    /// Parse the text format, salvaging what it can: malformed entry
    /// lines are skipped instead of failing the whole file. Returns the
    /// cache plus a description of each skipped line.
    pub fn from_text_lossy(text: &str) -> (TuningCache, Vec<String>) {
        let mut cache = TuningCache::new();
        let mut skipped = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || !trimmed.starts_with("entry\t") {
                continue;
            }
            match TuningCache::from_text(line) {
                Ok(one) => cache.entries.extend(one.entries),
                Err(e) => skipped.push(format!(
                    "line {}: {}",
                    ln + 1,
                    e.trim_start_matches("line 1: ")
                )),
            }
        }
        (cache, skipped)
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    pub fn load(path: &Path) -> std::io::Result<TuningCache> {
        let text = std::fs::read_to_string(path)?;
        TuningCache::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Load a cache file, treating corruption as a miss rather than an
    /// error: a missing or unreadable file yields an empty cache, and a
    /// corrupt or truncated file yields whatever valid entries it still
    /// contains (skipped lines are logged to stderr). Never panics —
    /// long-lived runtimes must survive a half-written cache from a
    /// crashed tuner. Lost entries are simply re-tuned and the file
    /// rewritten on the next `save`.
    pub fn load_or_rebuild(path: &Path) -> TuningCache {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return TuningCache::new(),
            Err(e) => {
                eprintln!(
                    "mdh-tuner: cannot read tuning cache {}: {e}; starting empty",
                    path.display()
                );
                return TuningCache::new();
            }
        };
        let (cache, skipped) = TuningCache::from_text_lossy(&text);
        if !skipped.is_empty() {
            eprintln!(
                "mdh-tuner: tuning cache {} is corrupt ({} bad line(s), {} salvaged); \
                 dropped entries will be re-tuned",
                path.display(),
                skipped.len(),
                cache.len()
            );
            for s in &skipped {
                eprintln!("mdh-tuner:   {s}");
            }
        }
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::IndexFn;
    use mdh_core::types::{BasicType, ScalarKind};

    fn prog(i: usize, k: usize) -> DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    fn sched() -> Schedule {
        let mut s = Schedule::sequential(2, DeviceKind::Gpu);
        s.par_chunks = vec![16, 4];
        s.block_threads = vec![32, 8];
        s.inner_tiles = vec![64, 32];
        s.reduction = ReductionStrategy::Tree;
        s.stage_inputs = true;
        s
    }

    #[test]
    fn signature_distinguishes_sizes_and_devices() {
        let a = program_signature(&prog(64, 64), DeviceKind::Gpu);
        let b = program_signature(&prog(64, 128), DeviceKind::Gpu);
        let c = program_signature(&prog(64, 64), DeviceKind::Cpu);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn record_keeps_best() {
        let p = prog(64, 64);
        let mut cache = TuningCache::new();
        assert!(cache.record(&p, DeviceKind::Gpu, sched(), 2.0));
        assert!(!cache.record(&p, DeviceKind::Gpu, sched(), 3.0), "worse");
        assert!(cache.record(&p, DeviceKind::Gpu, sched(), 1.0), "better");
        assert_eq!(cache.lookup(&p, DeviceKind::Gpu).unwrap().cost, 1.0);
    }

    #[test]
    fn text_roundtrip_exact() {
        let p = prog(128, 256);
        let mut cache = TuningCache::new();
        cache.record(&p, DeviceKind::Gpu, sched(), 0.125);
        let mut s2 = Schedule::sequential(2, DeviceKind::Cpu);
        s2.par_chunks = vec![18, 1];
        s2.block_threads = vec![1, 16];
        cache.record(&prog(64, 64), DeviceKind::Cpu, s2, 3.5);

        let text = cache.to_text();
        let back = TuningCache::from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.lookup(&p, DeviceKind::Gpu).unwrap(),
            cache.lookup(&p, DeviceKind::Gpu).unwrap()
        );
        assert_eq!(
            back.lookup(&prog(64, 64), DeviceKind::Cpu).unwrap(),
            cache.lookup(&prog(64, 64), DeviceKind::Cpu).unwrap()
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mdh_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        let p = prog(32, 32);
        let mut cache = TuningCache::new();
        cache.record(&p, DeviceKind::Gpu, sched(), 9.0);
        cache.save(&path).unwrap();
        let back = TuningCache::load(&path).unwrap();
        assert_eq!(back.lookup(&p, DeviceKind::Gpu).unwrap().cost, 9.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_entries_rejected_gracefully() {
        assert!(TuningCache::from_text("entry\tk\tnotanumber\tgpu").is_err());
        assert!(TuningCache::from_text("# just a comment\n\n")
            .unwrap()
            .is_empty());
        assert!(TuningCache::from_text("garbage line\n").unwrap().is_empty());
    }

    #[test]
    fn lossy_parse_salvages_valid_entries() {
        let p = prog(48, 48);
        let mut cache = TuningCache::new();
        cache.record(&p, DeviceKind::Gpu, sched(), 0.5);
        let good = cache.to_text();
        // sandwich the good entry between assorted corruption
        let text = format!(
            "entry\tk\tnotanumber\tgpu\n{good}entry\ttruncated\nentry\tk2\t1.0\tmars\n\
             \u{0}binary\u{1}garbage\n"
        );
        let (back, skipped) = TuningCache::from_text_lossy(&text);
        assert_eq!(back.len(), 1, "the intact entry survives");
        assert_eq!(back.lookup(&p, DeviceKind::Gpu).unwrap().cost, 0.5);
        assert_eq!(skipped.len(), 3, "three corrupt entry lines reported");
    }

    #[test]
    fn load_or_rebuild_never_fails_on_garbage_files() {
        let dir = std::env::temp_dir().join("mdh_cache_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();

        // missing file → empty cache
        let missing = dir.join("does-not-exist.txt");
        assert!(TuningCache::load_or_rebuild(&missing).is_empty());

        // pure garbage (including invalid UTF-8 handled as read error) → empty
        let garbage = dir.join("garbage.txt");
        std::fs::write(&garbage, b"entry\t\xff\xfe\x00broken\nentry\tx\n").unwrap();
        assert!(TuningCache::load_or_rebuild(&garbage).is_empty());

        // truncated mid-entry (a crashed writer) → valid prefix salvaged
        let p = prog(80, 80);
        let mut cache = TuningCache::new();
        cache.record(&p, DeviceKind::Cpu, sched(), 2.25);
        let truncated = dir.join("truncated.txt");
        let full = cache.to_text();
        std::fs::write(&truncated, format!("{full}entry\thalf-written\t3.")).unwrap();
        let back = TuningCache::load_or_rebuild(&truncated);
        assert_eq!(back.len(), 1);
        assert_eq!(back.lookup(&p, DeviceKind::Cpu).unwrap().cost, 2.25);

        // strict load of the same file still errors (the lossy path is opt-in)
        assert!(TuningCache::load(&truncated).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
