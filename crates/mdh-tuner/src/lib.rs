//! # mdh-tuner
//!
//! An ATF-style auto-tuning framework [Rasch et al., TACO 2021; pyATF,
//! CC 2025]: constraint-based spaces of *interdependent* tuning
//! parameters ([`space`]), generic search techniques ([`search`]), and
//! the schedule-tuning drivers used by the MDH pipeline ([`schedule_space`]) —
//! measured wall time on CPUs, simulated time on the GPU model.

#![allow(clippy::needless_range_loop)]
pub mod cache;
pub mod schedule_space;
pub mod search;
pub mod space;

pub use cache::{program_signature, CacheEntry, TuningCache};
pub use schedule_space::{
    cpu_seed_schedules, seed_schedules, tune_cpu, tune_cpu_model, tune_gpu, ScheduleSpace,
    TunedSchedule,
};
pub use search::{Budget, Sample, Technique, Tuner, TuningResult};
pub use space::{pow2_candidates, Config, SearchSpace, TunableParam};
