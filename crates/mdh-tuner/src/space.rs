//! Constraint-based tuning-parameter spaces (the ATF model).
//!
//! ATF [Rasch et al., TACO 2021; pyATF, CC 2025] represents search spaces
//! of *interdependent* tuning parameters: each parameter declares its
//! value range plus an optional constraint over previously-declared
//! parameters. Valid configurations form a "chain of trees", which this
//! module enumerates, counts, and samples without materialising the full
//! cross product.

use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Constraint over a prefix of parameter values: receives the values of
/// all parameters declared before this one plus the candidate value.
pub type Constraint = Arc<dyn Fn(&[i64], i64) -> bool + Send + Sync>;

/// One tunable parameter.
#[derive(Clone)]
pub struct TunableParam {
    pub name: String,
    pub values: Vec<i64>,
    pub constraint: Option<Constraint>,
}

impl fmt::Debug for TunableParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TunableParam({}, {} values{})",
            self.name,
            self.values.len(),
            if self.constraint.is_some() {
                ", constrained"
            } else {
                ""
            }
        )
    }
}

impl TunableParam {
    pub fn new(name: impl Into<String>, values: Vec<i64>) -> Self {
        TunableParam {
            name: name.into(),
            values,
            constraint: None,
        }
    }

    /// Attach an interdependence constraint (`prefix` = values of earlier
    /// parameters, `candidate` = this parameter's candidate value).
    pub fn constrained(
        name: impl Into<String>,
        values: Vec<i64>,
        c: impl Fn(&[i64], i64) -> bool + Send + Sync + 'static,
    ) -> Self {
        TunableParam {
            name: name.into(),
            values,
            constraint: Some(Arc::new(c)),
        }
    }
}

/// A complete configuration: one value per parameter, in declaration order.
pub type Config = Vec<i64>;

/// An ordered, constraint-linked parameter space.
#[derive(Debug, Clone, Default)]
pub struct SearchSpace {
    pub params: Vec<TunableParam>,
}

impl SearchSpace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, p: TunableParam) -> &mut Self {
        self.params.push(p);
        self
    }

    pub fn len_params(&self) -> usize {
        self.params.len()
    }

    fn candidate_ok(&self, d: usize, prefix: &[i64], v: i64) -> bool {
        match &self.params[d].constraint {
            Some(c) => c(prefix, v),
            None => true,
        }
    }

    /// Values of parameter `d` valid under the given prefix.
    pub fn valid_values(&self, d: usize, prefix: &[i64]) -> Vec<i64> {
        self.params[d]
            .values
            .iter()
            .copied()
            .filter(|&v| self.candidate_ok(d, prefix, v))
            .collect()
    }

    /// Whether a full configuration satisfies every constraint.
    pub fn is_valid(&self, config: &[i64]) -> bool {
        if config.len() != self.params.len() {
            return false;
        }
        for d in 0..config.len() {
            if !self.params[d].values.contains(&config[d]) {
                return false;
            }
            if !self.candidate_ok(d, &config[..d], config[d]) {
                return false;
            }
        }
        true
    }

    /// Count all valid configurations (chain-of-trees walk).
    pub fn count(&self) -> usize {
        fn rec(space: &SearchSpace, d: usize, prefix: &mut Vec<i64>) -> usize {
            if d == space.params.len() {
                return 1;
            }
            let mut n = 0;
            for v in space.valid_values(d, prefix) {
                prefix.push(v);
                n += rec(space, d + 1, prefix);
                prefix.pop();
            }
            n
        }
        rec(self, 0, &mut Vec::new())
    }

    /// Enumerate valid configurations up to `limit`.
    pub fn enumerate(&self, limit: usize) -> Vec<Config> {
        fn rec(
            space: &SearchSpace,
            d: usize,
            prefix: &mut Vec<i64>,
            out: &mut Vec<Config>,
            limit: usize,
        ) {
            if out.len() >= limit {
                return;
            }
            if d == space.params.len() {
                out.push(prefix.clone());
                return;
            }
            for v in space.valid_values(d, prefix) {
                prefix.push(v);
                rec(space, d + 1, prefix, out, limit);
                prefix.pop();
                if out.len() >= limit {
                    return;
                }
            }
        }
        let mut out = Vec::new();
        rec(self, 0, &mut Vec::new(), &mut out, limit);
        out
    }

    /// Sample one valid configuration uniformly-ish (random descent;
    /// returns `None` if a dead end is hit repeatedly).
    pub fn sample(&self, rng: &mut impl Rng, retries: usize) -> Option<Config> {
        'outer: for _ in 0..retries.max(1) {
            let mut cfg = Vec::with_capacity(self.params.len());
            for d in 0..self.params.len() {
                let vals = self.valid_values(d, &cfg);
                if vals.is_empty() {
                    continue 'outer;
                }
                cfg.push(vals[rng.gen_range(0..vals.len())]);
            }
            return Some(cfg);
        }
        None
    }

    /// Neighbours of a configuration: change one parameter to an adjacent
    /// valid value (local-search move set).
    pub fn neighbors(&self, config: &[i64]) -> Vec<Config> {
        let mut out = Vec::new();
        for d in 0..self.params.len() {
            let vals = self.valid_values(d, &config[..d]);
            let Some(pos) = vals.iter().position(|&v| v == config[d]) else {
                continue;
            };
            for np in [pos.wrapping_sub(1), pos + 1] {
                if let Some(&v) = vals.get(np) {
                    let mut c = config.to_vec();
                    c[d] = v;
                    // later params may become invalid: repair greedily
                    if self.repair(&mut c, d + 1) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Repair params from `from` onward to the nearest valid value.
    fn repair(&self, config: &mut Config, from: usize) -> bool {
        for d in from..self.params.len() {
            if self.candidate_ok(d, &config[..d], config[d]) {
                continue;
            }
            let vals = self.valid_values(d, &config[..d]);
            match vals.iter().min_by_key(|&&v| (v - config[d]).unsigned_abs()) {
                Some(&v) => config[d] = v,
                None => return false,
            }
        }
        true
    }

    /// Named view of a configuration.
    pub fn describe(&self, config: &[i64]) -> String {
        self.params
            .iter()
            .zip(config)
            .map(|(p, v)| format!("{}={v}", p.name))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Powers of two in `[1, max]` — the standard tile-size candidate set.
pub fn pow2_candidates(max: usize) -> Vec<i64> {
    let mut v = Vec::new();
    let mut x = 1usize;
    while x <= max {
        v.push(x as i64);
        x *= 2;
    }
    if v.is_empty() {
        v.push(1);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// The canonical ATF example: tile sizes where tile2 divides tile1.
    fn divides_space(n: i64) -> SearchSpace {
        let mut s = SearchSpace::new();
        s.add(TunableParam::constrained(
            "tile1",
            (1..=n).collect(),
            move |_, v| n % v == 0,
        ));
        s.add(TunableParam::constrained(
            "tile2",
            (1..=n).collect(),
            |prefix, v| prefix[0] % v == 0,
        ));
        s
    }

    #[test]
    fn count_matches_enumeration() {
        let s = divides_space(12);
        let all = s.enumerate(usize::MAX);
        assert_eq!(s.count(), all.len());
        // divisors of 12: 1,2,3,4,6,12 -> sum of d(t1) over t1|12:
        // d(1)+d(2)+d(3)+d(4)+d(6)+d(12) = 1+2+2+3+4+6 = 18
        assert_eq!(all.len(), 18);
        for c in &all {
            assert!(s.is_valid(c));
            assert_eq!(12 % c[0], 0);
            assert_eq!(c[0] % c[1], 0);
        }
    }

    #[test]
    fn invalid_configs_detected() {
        let s = divides_space(12);
        assert!(!s.is_valid(&[5, 1])); // 5 does not divide 12
        assert!(!s.is_valid(&[4, 3])); // 3 does not divide 4
        assert!(s.is_valid(&[4, 2]));
        assert!(!s.is_valid(&[4])); // wrong arity
    }

    #[test]
    fn sampling_respects_constraints() {
        let s = divides_space(24);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let c = s.sample(&mut rng, 10).unwrap();
            assert!(s.is_valid(&c), "{c:?}");
        }
    }

    #[test]
    fn neighbors_are_valid() {
        let s = divides_space(24);
        let c = vec![12, 6];
        for n in s.neighbors(&c) {
            assert!(s.is_valid(&n), "{n:?}");
            assert_ne!(n, c);
        }
    }

    #[test]
    fn enumerate_with_limit() {
        let s = divides_space(24);
        let some = s.enumerate(5);
        assert_eq!(some.len(), 5);
    }

    #[test]
    fn pow2_candidates_shape() {
        assert_eq!(pow2_candidates(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(pow2_candidates(10), vec![1, 2, 4, 8]);
        assert_eq!(pow2_candidates(0), vec![1]);
    }

    #[test]
    fn describe_names_params() {
        let s = divides_space(4);
        assert_eq!(s.describe(&[4, 2]), "tile1=4 tile2=2");
    }
}
