//! Search techniques over constraint-based spaces.
//!
//! The paper tunes with ATF for 12 hours; we expose the same machinery
//! with evaluation-count budgets. Techniques: exhaustive enumeration,
//! random sampling, hill climbing over the one-parameter-change
//! neighbourhood, and simulated annealing.

use crate::space::{Config, SearchSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Search technique selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    Exhaustive,
    Random,
    HillClimb,
    Annealing,
}

/// Tuning budget: maximum number of cost evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    pub max_evals: usize,
}

impl Budget {
    pub fn evals(n: usize) -> Budget {
        Budget {
            max_evals: n.max(1),
        }
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub config: Config,
    /// `None` = the configuration failed (compile error, out of
    /// resources, invalid schedule); failures still consume budget, as
    /// they do in real auto-tuning.
    pub cost: Option<f64>,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningResult {
    pub best: Option<(Config, f64)>,
    pub history: Vec<Sample>,
    pub evals: usize,
}

impl TuningResult {
    pub fn best_cost(&self) -> Option<f64> {
        self.best.as_ref().map(|(_, c)| *c)
    }
}

/// The tuner: a space, a technique, and a budget.
pub struct Tuner {
    pub space: SearchSpace,
    pub technique: Technique,
    pub budget: Budget,
    pub seed: u64,
}

impl Tuner {
    pub fn new(space: SearchSpace, technique: Technique, budget: Budget) -> Tuner {
        Tuner {
            space,
            technique,
            budget,
            seed: 0x5eed,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Tuner {
        self.seed = seed;
        self
    }

    /// Run the search. `cost` returns `None` for failing configurations.
    pub fn tune(&self, mut cost: impl FnMut(&Config) -> Option<f64>) -> TuningResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut history: Vec<Sample> = Vec::new();
        let mut best: Option<(Config, f64)> = None;
        let mut evals = 0usize;

        let mut try_eval = |cfg: Config,
                            history: &mut Vec<Sample>,
                            best: &mut Option<(Config, f64)>,
                            evals: &mut usize|
         -> Option<f64> {
            if *evals >= self.budget.max_evals {
                return None;
            }
            *evals += 1;
            let c = cost(&cfg);
            history.push(Sample {
                config: cfg.clone(),
                cost: c,
            });
            if let Some(c) = c {
                if best.as_ref().map(|(_, b)| c < *b).unwrap_or(true) {
                    *best = Some((cfg, c));
                }
            }
            c
        };

        match self.technique {
            Technique::Exhaustive => {
                for cfg in self.space.enumerate(self.budget.max_evals) {
                    if evals >= self.budget.max_evals {
                        break;
                    }
                    try_eval(cfg, &mut history, &mut best, &mut evals);
                }
            }
            Technique::Random => {
                while evals < self.budget.max_evals {
                    let Some(cfg) = self.space.sample(&mut rng, 32) else {
                        break;
                    };
                    try_eval(cfg, &mut history, &mut best, &mut evals);
                }
            }
            Technique::HillClimb => {
                // random restarts around greedy descent
                while evals < self.budget.max_evals {
                    let Some(start) = self.space.sample(&mut rng, 32) else {
                        break;
                    };
                    let mut cur = start.clone();
                    let mut cur_cost = try_eval(cur.clone(), &mut history, &mut best, &mut evals);
                    loop {
                        if evals >= self.budget.max_evals {
                            break;
                        }
                        let mut improved = false;
                        for n in self.space.neighbors(&cur) {
                            if evals >= self.budget.max_evals {
                                break;
                            }
                            let c = try_eval(n.clone(), &mut history, &mut best, &mut evals);
                            if let (Some(c), Some(cc)) = (c, cur_cost) {
                                if c < cc {
                                    cur = n;
                                    cur_cost = Some(c);
                                    improved = true;
                                    break;
                                }
                            } else if c.is_some() && cur_cost.is_none() {
                                cur = n;
                                cur_cost = c;
                                improved = true;
                                break;
                            }
                        }
                        if !improved {
                            break;
                        }
                    }
                }
            }
            Technique::Annealing => {
                let Some(mut cur) = self.space.sample(&mut rng, 32) else {
                    return TuningResult {
                        best,
                        history,
                        evals,
                    };
                };
                let mut cur_cost = try_eval(cur.clone(), &mut history, &mut best, &mut evals);
                let total = self.budget.max_evals as f64;
                while evals < self.budget.max_evals {
                    let temp = 1.0 - (evals as f64 / total);
                    let cand = {
                        let ns = self.space.neighbors(&cur);
                        if ns.is_empty() || rng.gen_bool(0.15) {
                            match self.space.sample(&mut rng, 32) {
                                Some(c) => c,
                                None => break,
                            }
                        } else {
                            ns[rng.gen_range(0..ns.len())].clone()
                        }
                    };
                    let c = try_eval(cand.clone(), &mut history, &mut best, &mut evals);
                    match (c, cur_cost) {
                        (Some(c), Some(cc)) => {
                            let accept = c < cc || {
                                let delta = (c - cc) / cc.max(1e-12);
                                rng.gen_bool((-delta / temp.max(1e-3)).exp().clamp(0.0, 1.0))
                            };
                            if accept {
                                cur = cand;
                                cur_cost = Some(c);
                            }
                        }
                        (Some(_), None) => {
                            cur = cand;
                            cur_cost = c;
                        }
                        _ => {}
                    }
                }
            }
        }
        TuningResult {
            best,
            history,
            evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::TunableParam;

    /// Convex-ish test space: cost = (x-13)^2 + (y-5)^2, y <= x.
    fn space() -> SearchSpace {
        let mut s = SearchSpace::new();
        s.add(TunableParam::new("x", (1..=32).collect()));
        s.add(TunableParam::constrained(
            "y",
            (1..=32).collect(),
            |prefix, v| v <= prefix[0],
        ));
        s
    }

    fn cost(c: &Config) -> Option<f64> {
        let (x, y) = (c[0] as f64, c[1] as f64);
        Some((x - 13.0).powi(2) + (y - 5.0).powi(2))
    }

    #[test]
    fn exhaustive_finds_optimum() {
        let t = Tuner::new(space(), Technique::Exhaustive, Budget::evals(100_000));
        let r = t.tune(cost);
        assert_eq!(r.best.unwrap().0, vec![13, 5]);
    }

    #[test]
    fn exhaustive_respects_budget() {
        let t = Tuner::new(space(), Technique::Exhaustive, Budget::evals(10));
        let r = t.tune(cost);
        assert_eq!(r.evals, 10);
        assert_eq!(r.history.len(), 10);
    }

    #[test]
    fn random_improves_over_budget() {
        let t = Tuner::new(space(), Technique::Random, Budget::evals(200));
        let r = t.tune(cost);
        assert!(r.best_cost().unwrap() < 50.0);
    }

    #[test]
    fn hillclimb_reaches_near_optimum() {
        let t = Tuner::new(space(), Technique::HillClimb, Budget::evals(400));
        let r = t.tune(cost);
        assert!(r.best_cost().unwrap() <= 2.0, "{:?}", r.best);
    }

    #[test]
    fn annealing_reaches_near_optimum() {
        let t = Tuner::new(space(), Technique::Annealing, Budget::evals(600));
        let r = t.tune(cost);
        assert!(r.best_cost().unwrap() <= 4.0, "{:?}", r.best);
    }

    #[test]
    fn failures_consume_budget_but_never_win() {
        let t = Tuner::new(space(), Technique::Random, Budget::evals(100));
        let r = t.tune(|c| {
            if c[0] % 2 == 0 {
                None // "out of resources"
            } else {
                cost(c)
            }
        });
        assert_eq!(r.evals, 100);
        let (best_cfg, _) = r.best.unwrap();
        assert_eq!(best_cfg[0] % 2, 1);
        assert!(r.history.iter().any(|s| s.cost.is_none()));
    }

    #[test]
    fn all_failures_yield_no_best() {
        let t = Tuner::new(space(), Technique::Random, Budget::evals(20));
        let r = t.tune(|_| None);
        assert!(r.best.is_none());
        assert_eq!(r.evals, 20);
    }
}
