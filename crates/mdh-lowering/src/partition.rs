//! Multi-device partitioning of a program's iteration space.
//!
//! The MDH decomposition rules are device-agnostic: any contiguous split of
//! a dimension recombines correctly through that dimension's combine
//! operator. [`PartitionPlan`] applies one such split at *device*
//! granularity — it picks the outermost shardable dimension, cuts it into
//! per-device [`Shard`]s with [`split_even`], and rewrites each shard's
//! program so it runs as an ordinary single-device program over a local
//! iteration space while reading and writing the *global* buffers:
//!
//! * input accesses are translated by the shard's offset along the split
//!   dimension (`constant += coeff[d] * lo`), so a shard reads exactly its
//!   slice of the original input buffers;
//! * output accesses are translated the same way, and output buffer shapes
//!   are pinned to the global output shapes, so a `cc`/`ps` shard writes
//!   its disjoint/ordered region at globally-correct positions while a
//!   `pw` shard (whose outputs cannot depend on the split dimension)
//!   produces a full-shape *partial* output.
//!
//! Which recombination the executor owes is captured by
//! [`PartitionStrategy`]; dimensions are only eligible when their combine
//! operator reports [`mdh_core::combine::CombineOp::device_shardable`] and
//! every access touching them is affine (a general index function cannot
//! be translated). When no dimension qualifies the plan degrades to a
//! single shard running the unmodified program.

use crate::plan::split_even;
use mdh_core::combine::CombineOp;
use mdh_core::dsl::DslProgram;
use mdh_core::error::Result;
use mdh_core::index_fn::IndexFn;
use mdh_core::shape::MdRange;
use mdh_core::views::View;

/// What the partitioned dimension's combine operator obliges the executor
/// to do with per-shard results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionStrategy {
    /// `cc` dimension: shards write disjoint output regions; recombination
    /// is a gather with no combine arithmetic.
    Concat,
    /// `pw(f)` dimension: shards produce full-shape partial outputs that
    /// must be folded element-wise with `f` (any associative grouping —
    /// serial chain, binary tree, host gather — is legal).
    Reduce,
    /// `ps(f)` dimension: shards hold local scans; recombination is the
    /// ordered carry chain of Listing 17 and is inherently serial in the
    /// shard index.
    Scan,
    /// `rbi(add)` dimension: shards scatter into full-shape partial
    /// outputs; recombination folds the *entire* buffers element-wise with
    /// `add` in shard-index order (scatter targets are data-dependent, so
    /// no sub-region can be pinned).
    IndexedReduce,
}

/// Why a plan holds a single shard — or that it split. PR 2 fell back
/// to one shard silently; the typed reason lets executors and `mdhc
/// estimate` report *why* a pool was left idle instead of hiding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionOutcome {
    /// The iteration space was split across devices.
    Partitioned,
    /// A one-device pool: nothing to split.
    SingleDevice,
    /// A shardable dimension exists, but a general (non-affine) access
    /// depends on it, so the shard offset cannot be absorbed into the
    /// access constants.
    GeneralAccess,
    /// No dimension has a device-shardable combine operator with extent
    /// ≥ 2.
    NoShardableDim,
    /// The chosen dimension's extent could not be cut into more than
    /// one interval.
    IndivisibleExtent,
}

impl PartitionOutcome {
    /// Stable kebab-case label used in reports and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            PartitionOutcome::Partitioned => "partitioned",
            PartitionOutcome::SingleDevice => "single-device",
            PartitionOutcome::GeneralAccess => "general-access",
            PartitionOutcome::NoShardableDim => "no-shardable-dim",
            PartitionOutcome::IndivisibleExtent => "indivisible-extent",
        }
    }
}

impl std::fmt::Display for PartitionOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Plan-visible slice of one input operand, as a stable signature.
///
/// A device-resident copy of an input is reusable across launches exactly
/// when (a) the host operand's content/version is unchanged *and* (b) the
/// plan asks the device for the **same slice** of it. The second half is a
/// plan property, so it is computed here: the shard's global range,
/// restricted to the dimensions the operand's accesses actually depend
/// on, hashed into a `u64`.
///
/// Restricting to dependent dimensions is what makes weights-style
/// sharing work: a `MatVec` input `v` read as `select(dim 1)` has the
/// same signature on every shard (shards differ only along dim 0) and at
/// every pool width, so one resident copy serves them all — while the
/// matrix `M`, which depends on the split dimension, signs each shard's
/// row slice distinctly. General (data-dependent) accesses depend on
/// every dimension, so they conservatively sign the full shard range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandRegion {
    /// Index into the program's input-buffer declarations.
    pub input: usize,
    /// FNV-1a hash of the dependent-dimension sub-range.
    pub signature: u64,
}

/// One device's slice of the iteration space.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Position in the split (devices combine partials in this order).
    pub index: usize,
    /// The shard's slice as a *global* iteration sub-range.
    pub range: MdRange,
    /// The rewritten, self-contained program for this slice.
    pub prog: DslProgram,
}

impl Shard {
    /// Region signatures for every input operand of this shard — the
    /// plan-visible half of a residency key (see [`OperandRegion`]).
    pub fn operand_regions(&self) -> Vec<OperandRegion> {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let eat = |h: &mut u64, x: u64| {
            for b in x.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(FNV_PRIME);
            }
        };
        let rank = self.range.lo.len();
        (0..self.prog.inp_view.buffers.len())
            .map(|input| {
                let mut h = FNV_OFFSET;
                eat(&mut h, input as u64);
                eat(&mut h, rank as u64);
                for d in 0..rank {
                    let dependent = self
                        .prog
                        .inp_view
                        .accesses
                        .iter()
                        .any(|a| a.buffer == input && a.index_fn.depends_on(d));
                    if dependent {
                        eat(&mut h, d as u64);
                        eat(&mut h, self.range.lo[d] as u64);
                        eat(&mut h, self.range.hi[d] as u64);
                    }
                }
                OperandRegion {
                    input,
                    signature: h,
                }
            })
            .collect()
    }
}

/// A device-granularity split of one program.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Split dimension and its recombination obligation; `None` when the
    /// plan degraded to a single shard.
    pub partition: Option<(usize, PartitionStrategy)>,
    /// Whether (and why not) the plan split the iteration space.
    pub outcome: PartitionOutcome,
    pub shards: Vec<Shard>,
}

impl PartitionPlan {
    /// Split `prog` across up to `n_devices` devices.
    ///
    /// Dimension choice: the outermost `cc` dimension with extent ≥ 2 is
    /// preferred (disjoint outputs, zero combine arithmetic); failing
    /// that, the outermost `pw` dimension (cheap element-wise combine);
    /// failing that, the outermost `ps` dimension (serial carry chain).
    /// With no eligible dimension — or `n_devices == 1` — the plan holds
    /// one shard running `prog` unchanged.
    pub fn build(prog: &DslProgram, n_devices: usize) -> Result<PartitionPlan> {
        prog.validate()?;
        let single = |prog: &DslProgram, outcome: PartitionOutcome| PartitionPlan {
            partition: None,
            outcome,
            shards: vec![Shard {
                index: 0,
                range: prog.md_hom.full_range(),
                prog: prog.clone(),
            }],
        };
        if n_devices <= 1 {
            return Ok(single(prog, PartitionOutcome::SingleDevice));
        }
        let (chosen, blocked_by_general) = choose_dim(prog);
        let Some((dim, strategy)) = chosen else {
            let outcome = if blocked_by_general {
                PartitionOutcome::GeneralAccess
            } else {
                PartitionOutcome::NoShardableDim
            };
            return Ok(single(prog, outcome));
        };

        let intervals = split_even(prog.md_hom.sizes[dim], n_devices);
        if intervals.len() <= 1 {
            return Ok(single(prog, PartitionOutcome::IndivisibleExtent));
        }
        let out_shapes = prog.output_shapes()?;
        let mut shards = Vec::with_capacity(intervals.len());
        for (index, (lo, hi)) in intervals.into_iter().enumerate() {
            let mut range = prog.md_hom.full_range();
            range.lo[dim] = lo;
            range.hi[dim] = hi;
            let prog = rewrite_shard(prog, dim, lo, hi, &out_shapes)?;
            shards.push(Shard { index, range, prog });
        }
        Ok(PartitionPlan {
            partition: Some((dim, strategy)),
            outcome: PartitionOutcome::Partitioned,
            shards,
        })
    }

    /// Whether the plan actually splits the iteration space.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some() && self.shards.len() > 1
    }

    pub fn strategy(&self) -> Option<PartitionStrategy> {
        self.partition.map(|(_, s)| s)
    }

    pub fn dim(&self) -> Option<usize> {
        self.partition.map(|(d, _)| d)
    }
}

/// Pick the split dimension, preferring cc > pw > ps, outermost first.
/// The second return is `true` when at least one otherwise-eligible
/// dimension was rejected only because a general access depends on it —
/// the signal [`PartitionOutcome::GeneralAccess`] reports.
fn choose_dim(prog: &DslProgram) -> (Option<(usize, PartitionStrategy)>, bool) {
    let mut best: Option<(usize, PartitionStrategy)> = None;
    let mut blocked_by_general = false;
    for (d, op) in prog.md_hom.combine_ops.iter().enumerate() {
        if prog.md_hom.sizes[d] < 2 || !op.device_shardable() {
            continue;
        }
        // rbi dims are always translatable: affine accesses absorb the
        // shard offset into their constants and general (data-dependent)
        // accesses are wrapped with an index-shift shim
        if !matches!(op, CombineOp::Rbi(_)) && !dim_translatable(prog, d) {
            blocked_by_general = true;
            continue;
        }
        let strategy = match op {
            CombineOp::Cc => PartitionStrategy::Concat,
            CombineOp::Pw(_) => PartitionStrategy::Reduce,
            CombineOp::Ps(_) => PartitionStrategy::Scan,
            CombineOp::Rbi(_) => PartitionStrategy::IndexedReduce,
        };
        best = match best {
            None => Some((d, strategy)),
            Some((_, prev)) if rank_of(strategy) < rank_of(prev) => Some((d, strategy)),
            other => other,
        };
    }
    (best, blocked_by_general)
}

fn rank_of(s: PartitionStrategy) -> u8 {
    match s {
        PartitionStrategy::Concat => 0,
        PartitionStrategy::Reduce => 1,
        PartitionStrategy::IndexedReduce => 2,
        PartitionStrategy::Scan => 3,
    }
}

/// A dimension is translatable when every access that depends on it is
/// affine (constants can absorb the shard offset).
fn dim_translatable(prog: &DslProgram, d: usize) -> bool {
    let affine_or_independent = |view: &View| {
        view.accesses
            .iter()
            .all(|a| a.index_fn.as_affine().is_some() || !a.index_fn.depends_on(d))
    };
    affine_or_independent(&prog.inp_view) && affine_or_independent(&prog.out_view)
}

/// Build the self-contained program for the slice `[lo, hi)` of dim `d`.
fn rewrite_shard(
    prog: &DslProgram,
    d: usize,
    lo: usize,
    hi: usize,
    out_shapes: &[Vec<usize>],
) -> Result<DslProgram> {
    let mut shard = prog.clone();
    shard.name = format!("{}__shard{lo}_{hi}", prog.name);
    shard.md_hom.sizes[d] = hi - lo;
    translate_view(&mut shard.inp_view, d, lo)?;
    translate_view(&mut shard.out_view, d, lo)?;
    // pin global output shapes: translated writes of later shards land
    // beyond the shard-local inferred extent, and every shard must
    // allocate identically for partials to combine element-wise
    for (decl, shape) in shard.out_view.buffers.iter_mut().zip(out_shapes) {
        decl.declared_shape = Some(shape.clone());
    }
    shard.validate()?;
    Ok(shard)
}

/// Shift every access by `lo` along dimension `d`, so local iteration
/// index 0 addresses what global index `lo` addressed. Affine accesses
/// absorb the offset into their constants; general accesses — legal only
/// for `rbi`-partitioned dims, where the scatter target is data-dependent
/// by design — are wrapped with a shim that restores the global iteration
/// coordinate before calling the original closure.
fn translate_view(view: &mut View, d: usize, lo: usize) -> Result<()> {
    use std::sync::Arc;
    for a in &mut view.accesses {
        match &mut a.index_fn {
            IndexFn::Affine(exprs) => {
                for e in exprs.iter_mut() {
                    let c = e.coeffs.get(d).copied().unwrap_or(0);
                    e.constant += c * lo as i64;
                }
            }
            IndexFn::General { out_rank, f, label } => {
                let inner = Arc::clone(f);
                *a = mdh_core::views::Access::new(
                    a.buffer,
                    IndexFn::General {
                        out_rank: *out_rank,
                        f: Arc::new(move |idx: &[usize]| {
                            let mut global = idx.to_vec();
                            global[d] += lo;
                            inner(&global)
                        }),
                        label: format!("{label}[i{d}+{lo}]"),
                    },
                );
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::{AffineExpr, IndexFn};
    use mdh_core::types::{BasicType, ScalarKind};

    fn matvec(i: usize, k: usize) -> DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    fn dot(n: usize) -> DslProgram {
        DslBuilder::new("dot", vec![n])
            .out_buffer("res", BasicType::F32)
            .out_access("res", IndexFn::affine(vec![AffineExpr::constant(1, 0)]))
            .inp_buffer("x", BasicType::F32)
            .inp_access("x", IndexFn::identity(1, 1))
            .inp_buffer("y", BasicType::F32)
            .inp_access("y", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    #[test]
    fn matvec_partitions_cc_dim() {
        let p = matvec(10, 6);
        let plan = PartitionPlan::build(&p, 4).unwrap();
        assert_eq!(plan.partition, Some((0, PartitionStrategy::Concat)));
        assert_eq!(plan.shards.len(), 4);
        // even split of 10 into 4: 3,3,2,2
        let extents: Vec<usize> = plan.shards.iter().map(|s| s.range.extent(0)).collect();
        assert_eq!(extents, vec![3, 3, 2, 2]);
        // shard 1 covers global rows [3,6): its M access must be shifted
        let s1 = &plan.shards[1];
        assert_eq!(s1.range.lo[0], 3);
        assert_eq!(s1.prog.md_hom.sizes, vec![3, 6]);
        let m = s1.prog.inp_view.accesses[0].index_fn.as_affine().unwrap();
        assert_eq!(m[0].constant, 3);
        // the output access is shifted identically (writes rows 3..6)
        let w = s1.prog.out_view.accesses[0].index_fn.as_affine().unwrap();
        assert_eq!(w[0].constant, 3);
        // output shape pinned to the global one
        assert_eq!(
            s1.prog.out_view.buffers[0].declared_shape,
            Some(vec![10usize])
        );
        s1.prog.validate().unwrap();
    }

    #[test]
    fn dot_partitions_reduction_dim() {
        let p = dot(9);
        let plan = PartitionPlan::build(&p, 2).unwrap();
        assert_eq!(plan.partition, Some((0, PartitionStrategy::Reduce)));
        assert_eq!(plan.shards.len(), 2);
        let s1 = &plan.shards[1];
        assert_eq!(s1.prog.md_hom.sizes, vec![4]);
        let x = s1.prog.inp_view.accesses[0].index_fn.as_affine().unwrap();
        assert_eq!(x[0].constant, 5);
        // the scalar output access does not depend on the split dim
        let out = s1.prog.out_view.accesses[0].index_fn.as_affine().unwrap();
        assert_eq!(out[0].constant, 0);
    }

    #[test]
    fn cc_preferred_over_reduction() {
        // matvec has both a cc dim (0) and a pw dim (1); cc wins even
        // though both are shardable
        let p = matvec(8, 1 << 12);
        let plan = PartitionPlan::build(&p, 2).unwrap();
        assert_eq!(plan.dim(), Some(0));
        assert_eq!(plan.strategy(), Some(PartitionStrategy::Concat));
    }

    #[test]
    fn scan_dim_partitions_as_scan() {
        let p = DslBuilder::new("psum", vec![8])
            .out_buffer("out", BasicType::F64)
            .out_access("out", IndexFn::identity(1, 1))
            .inp_buffer("x", BasicType::F64)
            .inp_access("x", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
            .combine_ops(vec![CombineOp::ps_add()])
            .build()
            .unwrap();
        let plan = PartitionPlan::build(&p, 3).unwrap();
        assert_eq!(plan.strategy(), Some(PartitionStrategy::Scan));
        assert_eq!(plan.shards.len(), 3);
    }

    #[test]
    fn one_device_degrades_gracefully() {
        let p = matvec(4, 4);
        let plan = PartitionPlan::build(&p, 1).unwrap();
        assert!(!plan.is_partitioned());
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.shards[0].prog.name, "matvec");
        assert_eq!(plan.outcome, PartitionOutcome::SingleDevice);
    }

    #[test]
    fn tiny_extent_caps_shard_count() {
        let p = matvec(2, 64);
        let plan = PartitionPlan::build(&p, 8).unwrap();
        assert_eq!(plan.shards.len(), 2, "cannot split extent 2 eight ways");
        assert_eq!(plan.outcome, PartitionOutcome::Partitioned);
    }

    #[test]
    fn outcome_labels_are_kebab_case() {
        assert_eq!(PartitionOutcome::Partitioned.to_string(), "partitioned");
        assert_eq!(
            PartitionOutcome::GeneralAccess.to_string(),
            "general-access"
        );
        assert_eq!(
            PartitionOutcome::NoShardableDim.to_string(),
            "no-shardable-dim"
        );
    }

    #[test]
    fn general_access_degrades_to_single_shard() {
        use std::sync::Arc;
        let p = DslBuilder::new("gather", vec![6])
            .out_buffer("out", BasicType::F64)
            .out_access("out", IndexFn::identity(1, 1))
            .inp_buffer("x", BasicType::F64)
            .inp_access(
                "x",
                IndexFn::General {
                    out_rank: 1,
                    f: Arc::new(|idx: &[usize]| vec![idx[0] / 2]),
                    label: "half".into(),
                },
            )
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
            .combine_ops(vec![CombineOp::cc()])
            .build()
            .unwrap();
        let plan = PartitionPlan::build(&p, 4).unwrap();
        assert!(!plan.is_partitioned());
        assert_eq!(
            plan.outcome,
            PartitionOutcome::GeneralAccess,
            "the fallback must say *why* the pool is left idle"
        );
    }

    #[test]
    fn operand_regions_share_independent_dims_and_split_dependent_ones() {
        let p = matvec(10, 6);
        let plan = PartitionPlan::build(&p, 4).unwrap();
        let regions: Vec<Vec<OperandRegion>> =
            plan.shards.iter().map(|s| s.operand_regions()).collect();
        // input 0 is M (depends on split dim 0): distinct per shard
        let m_sigs: Vec<u64> = regions.iter().map(|r| r[0].signature).collect();
        for i in 0..m_sigs.len() {
            for j in i + 1..m_sigs.len() {
                assert_ne!(m_sigs[i], m_sigs[j], "M slices differ per shard");
            }
        }
        // input 1 is v (select dim 1, independent of the split): shared
        let v_sigs: Vec<u64> = regions.iter().map(|r| r[1].signature).collect();
        assert!(
            v_sigs.windows(2).all(|w| w[0] == w[1]),
            "v shared: {v_sigs:?}"
        );
        // ... and shared across pool widths too — the same resident copy
        // serves a 2-wide and a 4-wide plan
        let plan2 = PartitionPlan::build(&p, 2).unwrap();
        assert_eq!(
            plan2.shards[0].operand_regions()[1].signature,
            v_sigs[0],
            "v signature is width-invariant"
        );
        // distinct inputs never collide even when ranges agree
        assert_ne!(regions[0][0].signature, regions[0][1].signature);
    }

    #[test]
    fn operand_regions_conservative_for_general_access() {
        use std::sync::Arc;
        let p = DslBuilder::new("scatter", vec![8])
            .out_buffer_with_shape("out", BasicType::F64, vec![4])
            .out_access(
                "out",
                IndexFn::General {
                    out_rank: 1,
                    f: Arc::new(|idx: &[usize]| vec![idx[0] % 4]),
                    label: "mod4".into(),
                },
            )
            .inp_buffer("x", BasicType::F64)
            .inp_access(
                "x",
                IndexFn::General {
                    out_rank: 1,
                    f: Arc::new(|idx: &[usize]| vec![idx[0] / 2]),
                    label: "half".into(),
                },
            )
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F64))
            .combine_ops(vec![CombineOp::rbi_add()])
            .build()
            .unwrap();
        let plan = PartitionPlan::build(&p, 2).unwrap();
        assert!(plan.is_partitioned());
        let s0 = plan.shards[0].operand_regions();
        let s1 = plan.shards[1].operand_regions();
        // a general access depends on every dim, so shards sign distinctly
        assert_ne!(s0[0].signature, s1[0].signature);
    }

    #[test]
    fn stencil_access_translates_with_coefficient() {
        // access (2*p + r): shard at p=lo must shift the constant by 2*lo
        let p = DslBuilder::new("down", vec![4, 3])
            .out_buffer("out", BasicType::F32)
            .out_access("out", IndexFn::select(2, &[0]))
            .inp_buffer_with_shape("x", BasicType::F32, vec![2 * 4 + 3])
            .inp_access("x", IndexFn::affine(vec![AffineExpr::new(vec![2, 1], 0)]))
            .scalar_function(ScalarFunction::identity("id", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap();
        let plan = PartitionPlan::build(&p, 2).unwrap();
        let s1 = &plan.shards[1];
        assert_eq!(s1.range.lo[0], 2);
        let x = s1.prog.inp_view.accesses[0].index_fn.as_affine().unwrap();
        assert_eq!(x[0].constant, 4, "2 * lo");
    }
}
