//! # mdh-lowering
//!
//! The low-level side of the MDH pipeline: abstract system models,
//! schedules (the tuner's search space and the knobs baseline systems
//! lack), and the decomposition of scheduled programs into execution
//! plans whose correctness is guaranteed by the homomorphism laws of
//! `mdh_core::laws`.

#![allow(clippy::needless_range_loop)]
pub mod asm;
pub mod explain;
pub mod heuristics;
pub mod partition;
pub mod plan;
pub mod schedule;

pub use asm::{Asm, DeviceKind, GpuParams};
pub use explain::explain;
pub use heuristics::{default_loop_order, mdh_default_schedule};
pub use partition::{PartitionOutcome, PartitionPlan, PartitionStrategy, Shard};
pub use plan::{CombineGroup, ExecutionPlan, Task};
pub use schedule::{ReductionStrategy, Schedule};
