//! Abstract System Models (ASM).
//!
//! The MDH lowering [Rasch, TOPLAS 2024] targets an *abstract system
//! model*: a hierarchy of memory and core levels that instantiates to
//! concrete devices (a CUDA GPU: device / block / thread over DRAM /
//! shared / registers; an OpenCL CPU: machine / core / SIMD-lane over
//! DRAM / L2 / L1). Schedules are expressed against an ASM; the backends
//! interpret them on the real machine (CPU) or on the simulator (GPU).

/// Kind of device an ASM describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    Cpu,
    Gpu,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Cpu => f.write_str("CPU"),
            DeviceKind::Gpu => f.write_str("GPU"),
        }
    }
}

/// A level of the core hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreLevel {
    pub name: String,
    /// Maximum number of parallel units at this level (1 = sequential).
    pub max_units: usize,
}

/// A level of the memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryLevel {
    pub name: String,
    /// Capacity in bytes (usize::MAX for unbounded main memory).
    pub capacity: usize,
    /// Sustained bandwidth in GiB/s (for cost modelling).
    pub bandwidth_gib_s: f64,
}

/// An abstract system model: named core and memory hierarchies plus the
/// peak-compute figure the cost model normalises against.
#[derive(Debug, Clone, PartialEq)]
pub struct Asm {
    pub name: String,
    pub device: DeviceKind,
    pub core_levels: Vec<CoreLevel>,
    pub memory_levels: Vec<MemoryLevel>,
    /// Peak FP32 throughput in GFLOP/s.
    pub peak_gflops: f64,
}

impl Asm {
    /// Total parallel units (product over core levels).
    pub fn total_parallelism(&self) -> usize {
        self.core_levels.iter().map(|l| l.max_units).product()
    }

    /// An ASM resembling the paper's CPU platform (Intel Xeon Gold 6140:
    /// 18 cores / 36 threads, AVX-512).
    pub fn xeon_gold_6140(threads: usize) -> Asm {
        Asm {
            name: "Intel Xeon Gold 6140 (model)".into(),
            device: DeviceKind::Cpu,
            core_levels: vec![
                CoreLevel {
                    name: "thread".into(),
                    max_units: threads,
                },
                CoreLevel {
                    name: "simd-lane".into(),
                    max_units: 16, // AVX-512 fp32 lanes
                },
            ],
            memory_levels: vec![
                MemoryLevel {
                    name: "DRAM".into(),
                    capacity: usize::MAX,
                    bandwidth_gib_s: 100.0,
                },
                MemoryLevel {
                    name: "L2".into(),
                    capacity: 1 << 20,
                    bandwidth_gib_s: 800.0,
                },
                MemoryLevel {
                    name: "L1".into(),
                    capacity: 32 << 10,
                    bandwidth_gib_s: 2000.0,
                },
            ],
            peak_gflops: 2500.0,
        }
    }

    /// An ASM resembling the paper's GPU platform (NVIDIA A100-PCIE-40GB).
    pub fn a100() -> Asm {
        Asm {
            name: "NVIDIA A100-PCIE-40GB (model)".into(),
            device: DeviceKind::Gpu,
            core_levels: vec![
                CoreLevel {
                    name: "block".into(),
                    max_units: 108 * 32, // enough blocks to saturate 108 SMs
                },
                CoreLevel {
                    name: "thread".into(),
                    max_units: 1024,
                },
            ],
            memory_levels: vec![
                MemoryLevel {
                    name: "HBM2".into(),
                    capacity: 40 << 30,
                    bandwidth_gib_s: 1555.0,
                },
                MemoryLevel {
                    name: "shared".into(),
                    capacity: 164 << 10, // per-SM shared/L1
                    bandwidth_gib_s: 19400.0,
                },
                MemoryLevel {
                    name: "register".into(),
                    capacity: 256 << 10,
                    bandwidth_gib_s: 60000.0,
                },
            ],
            peak_gflops: 19500.0,
        }
    }
}

/// GPU hardware constants used by the simulator's cost model, split out so
/// tests and ablations can vary them.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuParams {
    pub num_sms: usize,
    pub max_threads_per_block: usize,
    pub max_threads_per_sm: usize,
    pub warp_size: usize,
    pub shared_mem_per_sm: usize,
    pub dram_bw_gib_s: f64,
    pub shared_bw_gib_s: f64,
    pub peak_gflops: f64,
    /// Fixed kernel-launch latency in microseconds.
    pub launch_overhead_us: f64,
    /// DRAM transaction granularity in bytes (coalescing unit).
    pub transaction_bytes: usize,
}

impl GpuParams {
    pub fn a100() -> GpuParams {
        GpuParams {
            num_sms: 108,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            warp_size: 32,
            shared_mem_per_sm: 164 << 10,
            dram_bw_gib_s: 1555.0,
            shared_bw_gib_s: 19400.0,
            peak_gflops: 19500.0,
            launch_overhead_us: 5.0,
            transaction_bytes: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let cpu = Asm::xeon_gold_6140(36);
        assert_eq!(cpu.device, DeviceKind::Cpu);
        assert_eq!(cpu.total_parallelism(), 36 * 16);
        let gpu = Asm::a100();
        assert_eq!(gpu.device, DeviceKind::Gpu);
        assert!(gpu.total_parallelism() > 100_000);
    }

    #[test]
    fn gpu_params_sane() {
        let p = GpuParams::a100();
        assert_eq!(p.max_threads_per_block, 1024);
        assert!(p.dram_bw_gib_s > 1000.0);
        assert_eq!(p.warp_size, 32);
    }
}
