//! Decomposition of a scheduled program into an execution plan.
//!
//! The (de)composition rules of the MDH formalism let us partition the
//! iteration space into rectangular chunks, evaluate each chunk
//! independently, and recombine partial results with the per-dimension
//! combine operators. [`ExecutionPlan`] materialises that partitioning for
//! a given [`Schedule`]: the task ranges, and which tasks' partial results
//! must be combined along which dimensions.

use crate::schedule::Schedule;
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};
use mdh_core::shape::{MdRange, Shape};

/// One parallel task: a rectangular chunk of the iteration space.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    pub id: usize,
    /// Chunk coordinate per dimension (which chunk of that dim).
    pub chunk_coord: Vec<usize>,
    pub range: MdRange,
}

/// A group of tasks whose partial results must be combined: they agree on
/// every non-split dimension's chunk and differ only along split
/// (partitioned reduction) dimensions. Task ids are ordered row-major by
/// split-dimension coordinates, which is the order scan (`ps`) combining
/// requires.
#[derive(Debug, Clone, PartialEq)]
pub struct CombineGroup {
    pub task_ids: Vec<usize>,
    /// Extents of the split-dim chunk grid within this group (row-major
    /// order of `task_ids`).
    pub grid: Vec<usize>,
}

/// The materialised plan for one (program, schedule) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    pub tasks: Vec<Task>,
    /// Reduction dimensions that are split across tasks (in ascending
    /// order). Empty when every task owns a disjoint output region.
    pub split_dims: Vec<usize>,
    /// Combine groups (one per distinct non-split chunk coordinate); empty
    /// when `split_dims` is empty.
    pub groups: Vec<CombineGroup>,
    /// Cache-tile sizes per dimension, carried over from the schedule so
    /// backends can derive their loop structure from the plan alone.
    pub inner_tiles: Vec<usize>,
    /// Sequential loop order within a task (outermost first), carried
    /// over from the schedule.
    pub loop_order: Vec<usize>,
}

/// Split `size` into `chunks` contiguous intervals as evenly as possible.
pub fn split_even(size: usize, chunks: usize) -> Vec<(usize, usize)> {
    assert!(chunks >= 1);
    let chunks = chunks.min(size.max(1));
    let base = size / chunks;
    let rem = size % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < rem);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

impl ExecutionPlan {
    /// Build the plan from a validated schedule.
    pub fn build(prog: &DslProgram, schedule: &Schedule) -> Result<ExecutionPlan> {
        let rank = prog.rank();
        if schedule.par_chunks.len() != rank {
            return Err(MdhError::Validation(
                "schedule rank does not match program".into(),
            ));
        }
        let sizes = &prog.md_hom.sizes;
        // per-dim chunk intervals
        let intervals: Vec<Vec<(usize, usize)>> = (0..rank)
            .map(|d| split_even(sizes[d], schedule.par_chunks[d]))
            .collect();
        let chunk_counts: Vec<usize> = intervals.iter().map(|iv| iv.len()).collect();
        let chunk_grid = Shape::new(chunk_counts.clone());

        let mut tasks = Vec::with_capacity(chunk_grid.len());
        for coord in chunk_grid.iter() {
            let lo: Vec<usize> = coord
                .iter()
                .enumerate()
                .map(|(d, &c)| intervals[d][c].0)
                .collect();
            let hi: Vec<usize> = coord
                .iter()
                .enumerate()
                .map(|(d, &c)| intervals[d][c].1)
                .collect();
            tasks.push(Task {
                id: tasks.len(),
                chunk_coord: coord,
                range: MdRange::new(lo, hi),
            });
        }

        // which reduction dims are split?
        let reduction_dims = prog.md_hom.reduction_dims();
        let split_dims: Vec<usize> = reduction_dims
            .into_iter()
            .filter(|&d| chunk_counts[d] > 1)
            .collect();

        let groups = if split_dims.is_empty() {
            Vec::new()
        } else {
            // group by non-split coordinates
            let key_dims: Vec<usize> = (0..rank).filter(|d| !split_dims.contains(d)).collect();
            let key_shape = Shape::new(
                key_dims
                    .iter()
                    .map(|&d| chunk_counts[d])
                    .collect::<Vec<_>>(),
            );
            let split_shape: Vec<usize> = split_dims.iter().map(|&d| chunk_counts[d]).collect();
            let split_grid = Shape::new(split_shape.clone());
            let mut groups: Vec<CombineGroup> = (0..key_shape.len())
                .map(|_| CombineGroup {
                    task_ids: vec![usize::MAX; split_grid.len()],
                    grid: split_shape.clone(),
                })
                .collect();
            for t in &tasks {
                let key: Vec<usize> = key_dims.iter().map(|&d| t.chunk_coord[d]).collect();
                let split_coord: Vec<usize> =
                    split_dims.iter().map(|&d| t.chunk_coord[d]).collect();
                let g = key_shape.linearize(&key);
                let s = split_grid.linearize(&split_coord);
                groups[g].task_ids[s] = t.id;
            }
            debug_assert!(groups
                .iter()
                .all(|g| g.task_ids.iter().all(|&t| t != usize::MAX)));
            groups
        };

        Ok(ExecutionPlan {
            tasks,
            split_dims,
            groups,
            inner_tiles: schedule.inner_tiles.clone(),
            loop_order: schedule.loop_order.clone(),
        })
    }

    /// The cache-tile size for a dimension (1 when untiled or unknown).
    pub fn tile_for(&self, d: usize) -> usize {
        self.inner_tiles.get(d).copied().unwrap_or(1).max(1)
    }

    /// Total number of iteration points covered (must equal the program's).
    pub fn covered_points(&self) -> usize {
        self.tasks.iter().map(|t| t.range.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::DeviceKind;
    use crate::schedule::ReductionStrategy;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::IndexFn;
    use mdh_core::types::{BasicType, ScalarKind};

    fn matvec(i: usize, k: usize) -> DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    #[test]
    fn split_even_covers() {
        assert_eq!(split_even(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(split_even(4, 8), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(split_even(6, 1), vec![(0, 6)]);
    }

    #[test]
    fn plan_without_reduction_split() {
        let p = matvec(16, 8);
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.par_chunks = vec![4, 1];
        let plan = ExecutionPlan::build(&p, &s).unwrap();
        assert_eq!(plan.tasks.len(), 4);
        assert!(plan.split_dims.is_empty());
        assert!(plan.groups.is_empty());
        assert_eq!(plan.covered_points(), 16 * 8);
    }

    #[test]
    fn plan_with_split_reduction() {
        let p = matvec(16, 8);
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.par_chunks = vec![2, 4];
        s.reduction = ReductionStrategy::Tree;
        let plan = ExecutionPlan::build(&p, &s).unwrap();
        assert_eq!(plan.tasks.len(), 8);
        assert_eq!(plan.split_dims, vec![1]);
        assert_eq!(plan.groups.len(), 2, "one group per i-chunk");
        for g in &plan.groups {
            assert_eq!(g.task_ids.len(), 4);
            assert_eq!(g.grid, vec![4]);
            // ordered by k-chunk: ranges must be ascending in k
            let mut last_hi = 0;
            for &tid in &g.task_ids {
                let r = &plan.tasks[tid].range;
                assert_eq!(r.lo[1], last_hi);
                last_hi = r.hi[1];
            }
        }
    }

    #[test]
    fn plan_chunks_capped_by_size() {
        let p = matvec(3, 2);
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.par_chunks = vec![3, 2];
        s.reduction = ReductionStrategy::Tree;
        let plan = ExecutionPlan::build(&p, &s).unwrap();
        assert_eq!(plan.covered_points(), 6);
        assert_eq!(plan.tasks.len(), 6);
    }

    #[test]
    fn multi_split_dims_grid() {
        // 3D program, both k-like dims reduced and split
        let p = DslBuilder::new("t3", vec![4, 6, 8])
            .out_buffer("o", BasicType::F64)
            .out_access("o", IndexFn::select(3, &[0]))
            .inp_buffer("a", BasicType::F64)
            .inp_access("a", IndexFn::identity(3, 3))
            .inp_buffer("b", BasicType::F64)
            .inp_access("b", IndexFn::select(3, &[1, 2]))
            .scalar_function(ScalarFunction::mul2("f", ScalarKind::F64))
            .combine_ops(vec![
                CombineOp::cc(),
                CombineOp::pw_add(),
                CombineOp::pw_add(),
            ])
            .build()
            .unwrap();
        let mut s = Schedule::sequential(3, DeviceKind::Cpu);
        s.par_chunks = vec![2, 3, 2];
        s.reduction = ReductionStrategy::Tree;
        let plan = ExecutionPlan::build(&p, &s).unwrap();
        assert_eq!(plan.split_dims, vec![1, 2]);
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.groups[0].grid, vec![3, 2]);
        assert_eq!(plan.groups[0].task_ids.len(), 6);
    }
}
