//! Human-readable lowering explanations.
//!
//! Renders what the (de)composition actually does to a program under a
//! schedule — which dimensions split into how many chunks, how partial
//! results recombine, what stays sequential — in the vocabulary of the
//! MDH formalism. Used by `mdhc explain` and handy in test failures.

use crate::plan::ExecutionPlan;
use crate::schedule::{ReductionStrategy, Schedule};
use mdh_core::combine::DimBehavior;
use mdh_core::dsl::DslProgram;
use mdh_core::error::Result;
use std::fmt::Write;

/// Produce a multi-line explanation of the schedule's decomposition.
pub fn explain(prog: &DslProgram, schedule: &Schedule) -> Result<String> {
    let plan = ExecutionPlan::build(prog, schedule)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program '{}' on {}: {}D iteration space {:?}",
        prog.name,
        schedule.device,
        prog.rank(),
        prog.md_hom.sizes
    );
    for (d, op) in prog.md_hom.combine_ops.iter().enumerate() {
        let size = prog.md_hom.sizes[d];
        let chunks = schedule.par_chunks[d];
        let role = match op.behavior() {
            DimBehavior::Preserve => {
                if op.is_reduction() {
                    "scan (ps)"
                } else {
                    "concatenation (cc)"
                }
            }
            DimBehavior::Collapse => "reduction (pw)",
        };
        let mut line = format!("  dim {d} [{size}] {role} ⊗ {op}: ");
        if chunks > 1 {
            let _ = write!(
                line,
                "decomposed into {chunks} chunks of ~{}",
                size.div_ceil(chunks)
            );
            if op.is_reduction() {
                let _ = write!(
                    line,
                    "; partials recombined by {}",
                    match schedule.reduction {
                        ReductionStrategy::Tree => "a parallel combine tree",
                        ReductionStrategy::Sequential => "a sequential fold",
                    }
                );
            }
        } else {
            let _ = write!(line, "kept whole per unit");
            if op.is_reduction() {
                let _ = write!(line, " (reduced sequentially in-unit)");
            }
        }
        if schedule.block_threads[d] > 1 {
            let _ = write!(
                line,
                "; {} {} per chunk",
                schedule.block_threads[d],
                match schedule.device {
                    crate::asm::DeviceKind::Gpu => "threads",
                    crate::asm::DeviceKind::Cpu => "SIMD lanes",
                }
            );
        }
        if schedule.inner_tiles[d] > 1 {
            let _ = write!(
                line,
                "; cache/staging strips of {}",
                schedule.inner_tiles[d]
            );
        }
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(
        out,
        "  ⇒ {} parallel task(s){}",
        plan.tasks.len(),
        if plan.split_dims.is_empty() {
            String::from(", each owning a disjoint output region")
        } else {
            format!(
                ", combined in {} group(s) along split reduction dim(s) {:?}",
                plan.groups.len(),
                plan.split_dims
            )
        }
    );
    if schedule.stage_inputs {
        let _ = writeln!(out, "  ⇒ input strips staged in fast memory before use");
    }
    let _ = writeln!(
        out,
        "  legality: every recombination is an application of the \
         homomorphism law h(P ++ Q) = h(P) ⊗ h(Q)"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::DeviceKind;
    use crate::heuristics::mdh_default_schedule;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::IndexFn;
    use mdh_core::types::{BasicType, ScalarKind};

    fn matvec(i: usize, k: usize) -> DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    #[test]
    fn explanation_mentions_key_decisions() {
        let p = matvec(4096, 4096);
        let s = mdh_default_schedule(&p, DeviceKind::Cpu, 16);
        let text = explain(&p, &s).unwrap();
        assert!(text.contains("concatenation (cc)"), "{text}");
        assert!(text.contains("reduction (pw)"), "{text}");
        assert!(text.contains("16 chunks"), "{text}");
        assert!(text.contains("homomorphism law"), "{text}");
    }

    #[test]
    fn split_reduction_explained() {
        use crate::schedule::Schedule;
        let p = matvec(8, 4096);
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.par_chunks = vec![2, 8];
        s.reduction = ReductionStrategy::Tree;
        let text = explain(&p, &s).unwrap();
        assert!(text.contains("parallel combine tree"), "{text}");
        assert!(text.contains("split reduction dim(s) [1]"), "{text}");
    }
}
