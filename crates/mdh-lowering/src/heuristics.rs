//! Schedule heuristics.
//!
//! The MDH pipeline auto-tunes schedules, but needs a starting point — and
//! several experiments compare against "heuristic" (untuned) variants of
//! the polyhedral baselines. This module derives sensible default
//! schedules from program structure: parallelise concatenation dimensions
//! first, split reduction dimensions only when concatenation parallelism
//! is insufficient, and pick cache-/block-friendly inner tiles.

use crate::asm::DeviceKind;
use crate::schedule::{ReductionStrategy, Schedule};
use mdh_core::dsl::DslProgram;

/// A reasonable default MDH schedule for the given device.
///
/// * CPU: spread cc dimensions over `parallel_units` threads; if the total
///   cc extent is smaller than the thread count (reduction-heavy programs
///   like Dot or PRL input 1), additionally split the largest reduction
///   dimension — the capability the baselines lack.
/// * GPU: cc dims map to blocks and threads; reduction dims are split when
///   the grid would otherwise under-fill the device.
pub fn mdh_default_schedule(
    prog: &DslProgram,
    device: DeviceKind,
    parallel_units: usize,
) -> Schedule {
    let rank = prog.rank();
    let sizes = &prog.md_hom.sizes;
    let cc_dims = prog.md_hom.cc_dims();
    let red_dims = prog.md_hom.reduction_dims();

    let mut s = Schedule::sequential(rank, device);
    s.stage_inputs = true;

    // distribute `parallel_units` over cc dims greedily (largest first)
    let mut budget = parallel_units.max(1);
    let mut order: Vec<usize> = cc_dims.clone();
    order.sort_by_key(|&d| std::cmp::Reverse(sizes[d]));
    for &d in &order {
        if budget <= 1 {
            break;
        }
        let take = budget.min(sizes[d].max(1));
        s.par_chunks[d] = take;
        budget = budget.div_ceil(take);
    }

    // if cc parallelism is insufficient, split reduction dims
    let cc_parallelism: usize = s.par_chunks.iter().product();
    if cc_parallelism * 2 <= parallel_units && !red_dims.is_empty() {
        let mut rbudget = (parallel_units / cc_parallelism.max(1)).max(1);
        let mut rorder: Vec<usize> = red_dims.clone();
        rorder.sort_by_key(|&d| std::cmp::Reverse(sizes[d]));
        for &d in &rorder {
            if rbudget <= 1 {
                break;
            }
            let take = rbudget.min(sizes[d].max(1));
            s.par_chunks[d] = take;
            rbudget = rbudget.div_ceil(take);
        }
        if s.splits_reduction(prog) {
            s.reduction = ReductionStrategy::Tree;
        }
    }

    // inner tiles: favour the innermost two dims with modest tiles so the
    // working set fits in L1/shared memory
    for d in (0..rank).rev().take(2) {
        let chunk = sizes[d] / s.par_chunks[d].max(1);
        s.inner_tiles[d] = pick_tile(chunk);
    }

    if device == DeviceKind::Gpu {
        // threads per block over the two largest preserved dims
        let mut tbudget = 256usize;
        let mut pdims = prog.md_hom.preserved_dims();
        pdims.sort_by_key(|&d| std::cmp::Reverse(sizes[d]));
        for &d in pdims.iter().take(2) {
            if tbudget <= 1 {
                break;
            }
            let per_chunk = (sizes[d] / s.par_chunks[d].max(1)).max(1);
            let take = tbudget.min(per_chunk).min(32);
            s.block_threads[d] = take.max(1);
            tbudget /= take.max(1);
        }
        // reduction-only programs: cover the reduction dim with threads
        if pdims.is_empty() || pdims.iter().all(|&d| sizes[d] == 1) {
            if let Some(&d) = red_dims.first() {
                s.block_threads[d] = 256.min(sizes[d].max(1));
                if s.block_threads[d] > 1 {
                    s.reduction = ReductionStrategy::Tree;
                }
            }
        }
    }

    if device == DeviceKind::Cpu {
        // generated OpenCL vectorises a suitable loop regardless of the
        // combine operator — MDH's codegen advantage over reduction
        // clauses (modelled through the SIMD-lane field). Pick the
        // dimension with the most usable lanes (innermost on ties).
        let d = (0..rank)
            .rev()
            .max_by_key(|&d| sizes[d].min(16))
            .unwrap_or(rank - 1);
        s.block_threads[d] = 16.min(sizes[d]).max(1);
        if s.block_threads[d] > 1 && prog.md_hom.reduction_dims().contains(&d) {
            s.reduction = ReductionStrategy::Tree;
        }
    }
    s.loop_order = default_loop_order(prog);
    s
}

/// Largest power of two ≤ 64 dividing comfortably into `extent` (≥ 1).
fn pick_tile(extent: usize) -> usize {
    let mut t = 64usize;
    while t > 1 && t > extent {
        t /= 2;
    }
    t.max(1)
}

/// Default loop order: preserved dims outermost (in index order), reduction
/// dims innermost — the order that keeps output accumulators register- or
/// cache-resident.
pub fn default_loop_order(prog: &DslProgram) -> Vec<usize> {
    let mut order = prog.md_hom.preserved_dims();
    order.extend(prog.md_hom.collapsed_dims());
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::combine::CombineOp;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::{AffineExpr, IndexFn};
    use mdh_core::types::{BasicType, ScalarKind};

    fn matvec(i: usize, k: usize) -> DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    fn dot(n: usize) -> DslProgram {
        DslBuilder::new("dot", vec![n])
            .out_buffer("res", BasicType::F32)
            .out_access("res", IndexFn::affine(vec![AffineExpr::constant(1, 0)]))
            .inp_buffer("x", BasicType::F32)
            .inp_access("x", IndexFn::identity(1, 1))
            .inp_buffer("y", BasicType::F32)
            .inp_access("y", IndexFn::identity(1, 1))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    #[test]
    fn matvec_parallelises_cc_dim() {
        let p = matvec(4096, 4096);
        let s = mdh_default_schedule(&p, DeviceKind::Cpu, 16);
        s.validate(&p, 1 << 20).unwrap();
        assert_eq!(s.par_chunks[0], 16, "cc dim takes all threads");
        assert_eq!(s.par_chunks[1], 1, "reduction stays sequential per thread");
    }

    #[test]
    fn dot_splits_reduction() {
        // a pure-reduction program *must* split the reduction dim to use
        // the machine at all — the paper's key capability argument
        let p = dot(1 << 20);
        let s = mdh_default_schedule(&p, DeviceKind::Cpu, 16);
        s.validate(&p, 1 << 20).unwrap();
        assert!(s.par_chunks[0] > 1);
        assert_eq!(s.reduction, ReductionStrategy::Tree);
    }

    #[test]
    fn small_cc_dim_triggers_reduction_split() {
        // PRL input 1 shape: small cc dim (2^10), large reduction (2^15)
        let p = matvec(8, 1 << 15);
        let s = mdh_default_schedule(&p, DeviceKind::Cpu, 32);
        s.validate(&p, 1 << 20).unwrap();
        assert!(s.par_chunks[1] > 1, "large reduction dim gets split");
        assert_eq!(s.reduction, ReductionStrategy::Tree);
    }

    #[test]
    fn gpu_schedule_within_limits() {
        let p = matvec(4096, 4096);
        let s = mdh_default_schedule(&p, DeviceKind::Gpu, 108 * 32);
        s.validate(&p, 1 << 30).unwrap();
        assert!(s.threads_per_block() <= 1024);
        assert!(s.grid_size() >= 108);
    }

    #[test]
    fn loop_order_reductions_innermost() {
        let p = matvec(8, 8);
        assert_eq!(default_loop_order(&p), vec![0, 1]);
    }
}
