//! Schedules: the low-level representation of the MDH lowering.
//!
//! A [`Schedule`] fixes, per iteration-space dimension, how the dimension
//! is (de)composed across the machine hierarchy: how many parallel chunks
//! it is split into, how threads within a GPU block cover it, the inner
//! sequential tile, and the loop order. These are exactly the knobs the
//! auto-tuner searches over and the knobs whose absence cripples the
//! baseline systems (e.g. OpenACC's lack of automatic tiling, Section 5.2).

use crate::asm::DeviceKind;
use mdh_core::combine::CombineOp;
use mdh_core::dsl::DslProgram;
use mdh_core::error::{MdhError, Result};

/// How a reduction (`pw`/`ps`) dimension is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionStrategy {
    /// Each parallel unit reduces its whole reduction range sequentially;
    /// no inter-unit combine is needed. This is all OpenMP/OpenACC can do
    /// for operators beyond their native set, and all PPCG/Pluto can do at
    /// all (carried dependence).
    Sequential,
    /// The reduction dimension is partitioned across parallel units and
    /// partial results are combined with a logarithmic tree — legal
    /// because combine operators are associative (checked by the
    /// homomorphism laws).
    Tree,
}

/// A complete schedule for one program on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    pub device: DeviceKind,
    /// Number of top-level parallel chunks per dimension (threads on CPU,
    /// blocks on GPU). Product = task/grid size.
    pub par_chunks: Vec<usize>,
    /// GPU only: threads per block per dimension (product ≤ 1024). On CPU
    /// this models the SIMD-lane level and is used by the cost estimate
    /// only.
    pub block_threads: Vec<usize>,
    /// Innermost sequential tile per dimension (cache tile on CPU,
    /// per-thread micro-tile on GPU).
    pub inner_tiles: Vec<usize>,
    /// Strategy for reduction dimensions.
    pub reduction: ReductionStrategy,
    /// Stage reused input regions in fast memory (GPU shared memory /
    /// CPU cache-resident tiles).
    pub stage_inputs: bool,
    /// Permutation of dimensions giving the sequential loop order within a
    /// task (outermost first).
    pub loop_order: Vec<usize>,
}

impl Schedule {
    /// A trivial (fully sequential, untiled) schedule.
    pub fn sequential(rank: usize, device: DeviceKind) -> Schedule {
        Schedule {
            device,
            par_chunks: vec![1; rank],
            block_threads: vec![1; rank],
            inner_tiles: vec![1; rank],
            reduction: ReductionStrategy::Sequential,
            stage_inputs: false,
            loop_order: (0..rank).collect(),
        }
    }

    /// Total number of top-level parallel tasks (CPU tasks / GPU blocks).
    pub fn grid_size(&self) -> usize {
        self.par_chunks.iter().product()
    }

    /// GPU: threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.block_threads.iter().product()
    }

    /// Whether any reduction dimension of `prog` is split across parallel
    /// chunks (requiring an inter-unit combine).
    pub fn splits_reduction(&self, prog: &DslProgram) -> bool {
        prog.md_hom
            .reduction_dims()
            .into_iter()
            .any(|d| self.par_chunks[d] > 1 || self.block_threads[d] > 1)
    }

    /// Validate the schedule against a program and device limits.
    pub fn validate(&self, prog: &DslProgram, max_parallel: usize) -> Result<()> {
        let rank = prog.rank();
        for (name, v) in [
            ("par_chunks", &self.par_chunks),
            ("block_threads", &self.block_threads),
            ("inner_tiles", &self.inner_tiles),
        ] {
            if v.len() != rank {
                return Err(MdhError::Validation(format!(
                    "schedule field {name} has {} entries for a rank-{rank} program",
                    v.len()
                )));
            }
            if v.contains(&0) {
                return Err(MdhError::Validation(format!(
                    "schedule field {name} contains a zero"
                )));
            }
        }
        for d in 0..rank {
            if self.par_chunks[d] > prog.md_hom.sizes[d].max(1) {
                return Err(MdhError::Validation(format!(
                    "dim {d}: {} parallel chunks exceed size {}",
                    self.par_chunks[d], prog.md_hom.sizes[d]
                )));
            }
        }
        if self.grid_size() > max_parallel {
            return Err(MdhError::Validation(format!(
                "grid size {} exceeds device parallelism {max_parallel}",
                self.grid_size()
            )));
        }
        if self.device == DeviceKind::Gpu && self.threads_per_block() > 1024 {
            return Err(MdhError::Validation(format!(
                "threads per block {} exceeds 1024",
                self.threads_per_block()
            )));
        }
        // loop order must be a permutation of 0..rank
        let mut seen = vec![false; rank];
        if self.loop_order.len() != rank {
            return Err(MdhError::Validation("loop_order length mismatch".into()));
        }
        for &d in &self.loop_order {
            if d >= rank || seen[d] {
                return Err(MdhError::Validation(format!(
                    "loop_order {:?} is not a permutation",
                    self.loop_order
                )));
            }
            seen[d] = true;
        }
        // sequential reduction forbids splitting reduction dims
        if self.reduction == ReductionStrategy::Sequential && self.splits_reduction(prog) {
            return Err(MdhError::Validation(
                "reduction dims are split across parallel units but the \
                 reduction strategy is Sequential"
                    .into(),
            ));
        }
        // splitting a reduction requires an associative combine operator:
        // cc dims are not reductions; pw/ps functions are associative by
        // the directive contract (validated empirically by the law tests),
        // so nothing further to check statically here.
        let _ = CombineOp::cc();
        Ok(())
    }

    /// A human-readable one-line summary (used by tuner logs).
    pub fn summary(&self) -> String {
        format!(
            "par={:?} threads={:?} tiles={:?} red={:?} stage={} order={:?}",
            self.par_chunks,
            self.block_threads,
            self.inner_tiles,
            self.reduction,
            self.stage_inputs,
            self.loop_order
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdh_core::dsl::DslBuilder;
    use mdh_core::expr::ScalarFunction;
    use mdh_core::index_fn::IndexFn;
    use mdh_core::types::{BasicType, ScalarKind};

    fn matvec(i: usize, k: usize) -> DslProgram {
        DslBuilder::new("matvec", vec![i, k])
            .out_buffer("w", BasicType::F32)
            .out_access("w", IndexFn::select(2, &[0]))
            .inp_buffer("M", BasicType::F32)
            .inp_access("M", IndexFn::identity(2, 2))
            .inp_buffer("v", BasicType::F32)
            .inp_access("v", IndexFn::select(2, &[1]))
            .scalar_function(ScalarFunction::mul2("f_mul", ScalarKind::F32))
            .combine_ops(vec![CombineOp::cc(), CombineOp::pw_add()])
            .build()
            .unwrap()
    }

    #[test]
    fn sequential_schedule_validates() {
        let p = matvec(16, 16);
        let s = Schedule::sequential(2, DeviceKind::Cpu);
        s.validate(&p, 64).unwrap();
        assert_eq!(s.grid_size(), 1);
        assert!(!s.splits_reduction(&p));
    }

    #[test]
    fn split_reduction_requires_tree() {
        let p = matvec(16, 16);
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.par_chunks = vec![2, 4]; // splits the k (reduction) dim
        assert!(s.validate(&p, 64).is_err());
        s.reduction = ReductionStrategy::Tree;
        s.validate(&p, 64).unwrap();
        assert!(s.splits_reduction(&p));
    }

    #[test]
    fn rejects_zero_and_oversize() {
        let p = matvec(16, 16);
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.inner_tiles = vec![0, 1];
        assert!(s.validate(&p, 64).is_err());
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.par_chunks = vec![32, 1]; // > size 16
        assert!(s.validate(&p, 64).is_err());
    }

    #[test]
    fn rejects_bad_loop_order() {
        let p = matvec(16, 16);
        let mut s = Schedule::sequential(2, DeviceKind::Cpu);
        s.loop_order = vec![0, 0];
        assert!(s.validate(&p, 64).is_err());
    }

    #[test]
    fn gpu_thread_limit() {
        let p = matvec(4096, 4096);
        let mut s = Schedule::sequential(2, DeviceKind::Gpu);
        s.block_threads = vec![64, 64]; // 4096 > 1024
        assert!(s.validate(&p, 1 << 20).is_err());
    }
}
