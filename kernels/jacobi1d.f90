!$mdh out(y: real[N]) inp(x: real[N + 2]) combine_ops(cc)
do i = 1, N
   y(i) = 0.333 * (x(i) + x(i + 1) + x(i + 2))
end do
