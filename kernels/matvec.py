@mdh( out( w = Buffer[fp32] ),
      inp( M = Buffer[fp32], v = Buffer[fp32] ),
      combine_ops( cc, pw(add) ) )
def matvec(w, M, v):
    for i in range(I):
        for k in range(K):
            w[i] = M[i, k] * v[k]
