// MatMul with the MDH pragma (cf. the paper's Listings 1-2)
#pragma mdh out(C: float[I][J]) inp(A: float[I][K], B: float[K][J]) \
            combine_ops(cc, cc, pw(add))
for (int i = 0; i < I; i++)
    for (int j = 0; j < J; j++)
        for (int k = 0; k < K; k++)
            C[i][j] = A[i][k] * B[k][j];
